//! Integration: the full training-and-evaluation pipeline across all four
//! models, at smoke scale (seconds, debug-build friendly).

use halk::baselines::{ConeModel, MlpMixModel, NewLookModel};
use halk::core::{evaluate_structure, train_model, HalkConfig, HalkModel, QueryModel, TrainConfig};
use halk::kg::{generate, DatasetSplit, SynthConfig};
use halk::logic::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn split() -> DatasetSplit {
    let mut rng = StdRng::seed_from_u64(11);
    let full = generate(&SynthConfig::fb237_like(), &mut rng);
    DatasetSplit::nested(&full, 0.8, 0.1, &mut rng)
}

fn smoke_train(model: &mut dyn QueryModel, split: &DatasetSplit) -> f32 {
    let tc = TrainConfig {
        steps: 60,
        batch_size: 16,
        negatives: 4,
        queries_per_structure: 40,
        ..TrainConfig::default()
    };
    train_model(model, &split.train, &Structure::training(), &tc)
        .expect("training failed")
        .tail_loss()
}

#[test]
fn every_model_trains_and_evaluates_end_to_end() {
    let split = split();
    let cfg = HalkConfig::tiny();
    let mut models: Vec<Box<dyn QueryModel + Send + Sync>> = vec![
        Box::new(HalkModel::new(&split.train, cfg.clone())),
        Box::new(ConeModel::new(&split.train, cfg.clone())),
        Box::new(NewLookModel::new(&split.train, cfg.clone())),
        Box::new(MlpMixModel::new(&split.train, cfg)),
    ];
    for model in &mut models {
        let tail = smoke_train(model.as_mut(), &split);
        assert!(tail.is_finite(), "{}: diverged", model.name());
        // Evaluate one supported structure per model.
        let s = if model.supports(Structure::D2) {
            Structure::D2
        } else {
            Structure::In2
        };
        let cell = evaluate_structure(model.as_ref(), &split, s, 3, 21);
        assert!(cell.n_queries > 0, "{}: nothing evaluated", model.name());
        assert!(
            (0.0..=1.0).contains(&cell.metrics.mrr),
            "{}: bad MRR",
            model.name()
        );
    }
}

#[test]
fn halk_is_the_only_model_covering_all_structures() {
    let split = split();
    let cfg = HalkConfig::tiny();
    let halk = HalkModel::new(&split.train, cfg.clone());
    let cone = ConeModel::new(&split.train, cfg.clone());
    let newlook = NewLookModel::new(&split.train, cfg.clone());
    let mlp = MlpMixModel::new(&split.train, cfg);
    for s in Structure::all() {
        assert!(halk.supports(s), "HaLk must support {s}");
    }
    let full_coverage = |m: &dyn QueryModel| Structure::all().iter().all(|&s| m.supports(s));
    assert!(!full_coverage(&cone));
    assert!(!full_coverage(&newlook));
    assert!(!full_coverage(&mlp));
}

#[test]
fn ablation_variants_train() {
    use halk::core::Ablation;
    let split = split();
    for ablation in [Ablation::V1, Ablation::V2, Ablation::V3] {
        let cfg = HalkConfig::tiny().with_ablation(ablation);
        let mut model = HalkModel::new(&split.train, cfg);
        let tail = smoke_train(&mut model, &split);
        assert!(tail.is_finite(), "{ablation:?} diverged");
    }
}

#[test]
fn training_is_deterministic_under_fixed_seeds() {
    let split = split();
    let run = || {
        let mut m = HalkModel::new(&split.train, HalkConfig::tiny());
        let tc = TrainConfig {
            steps: 20,
            batch_size: 8,
            negatives: 4,
            queries_per_structure: 20,
            ..TrainConfig::default()
        };
        let stats = train_model(&mut m, &split.train, &[Structure::P1], &tc).unwrap();
        stats.losses
    };
    assert_eq!(run(), run());
}
