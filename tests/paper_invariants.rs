//! Integration: geometric invariants the paper claims for HaLk's operators,
//! checked on a live model (untrained and trained — they must hold by
//! construction, not by luck of the optimizer).

use halk::core::{train_model, Ablation, HalkConfig, HalkModel, TrainConfig};
use halk::geometry::angle::abs_delta;
use halk::kg::{generate, Graph, SynthConfig};
use halk::logic::{Query, Sampler, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f32::consts::{PI, TAU};

fn setup() -> (Graph, HalkModel) {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(31));
    let model = HalkModel::new(&g, HalkConfig::tiny());
    (g, model)
}

fn trained() -> (Graph, HalkModel) {
    let (g, mut model) = setup();
    let tc = TrainConfig {
        steps: 80,
        batch_size: 8,
        negatives: 4,
        queries_per_structure: 30,
        ..TrainConfig::default()
    };
    train_model(&mut model, &g, &Structure::training(), &tc).expect("training failed");
    (g, model)
}

/// §III-C: the difference result is a subset of the minuend, so its
/// arclength can never exceed the minuend's (Eq. 8's cardinality
/// constraint) — closed form, holds for any parameters.
#[test]
fn difference_arclength_capped_by_minuend() {
    for (g, model) in [setup(), trained()] {
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..5 {
            let b1 = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
            let b2 = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
            let minuend_arcs = &model.embed_query(&b1)[0];
            let diff = Query::Difference(vec![b1.clone(), b2]);
            let diff_arcs = &model.embed_query(&diff)[0];
            for (m, d) in minuend_arcs.iter().zip(diff_arcs) {
                assert!(
                    d.len <= m.len + 1e-4,
                    "difference arc ({}) longer than minuend ({})",
                    d.len,
                    m.len
                );
            }
        }
    }
}

/// Eq. 11: the intersection arclength is capped by the *minimum* input
/// arclength — the cardinality constraint, again closed form.
#[test]
fn intersection_arclength_capped_by_min_input() {
    for (g, model) in [setup(), trained()] {
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..5 {
            let b1 = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
            let b2 = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
            let a1 = &model.embed_query(&b1)[0];
            let a2 = &model.embed_query(&b2)[0];
            let inter = Query::Intersection(vec![b1.clone(), b2.clone()]);
            let ai = &model.embed_query(&inter)[0];
            for ((x, y), i) in a1.iter().zip(a2).zip(ai) {
                assert!(i.len <= x.len.min(y.len) + 1e-4);
            }
        }
    }
}

/// Eq. 13 under the V2 ablation (pure linear negation): the arc and its
/// complement tile the circle and their centers are antipodal.
#[test]
fn linear_negation_is_exact_complement() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(34));
    let model = HalkModel::new(&g, HalkConfig::tiny().with_ablation(Ablation::V2));
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(35);
    for _ in 0..5 {
        let q = sampler.sample(Structure::P2, &mut rng).expect("2p").query;
        let arcs = model.embed_query(&q);
        let neg_arcs = model.embed_query(&q.clone().negate());
        for (a, n) in arcs[0].iter().zip(&neg_arcs[0]) {
            assert!((a.len + n.len - TAU).abs() < 1e-3);
            assert!((abs_delta(a.center, n.center) - PI).abs() < 1e-3);
        }
    }
}

/// Every arc any operator produces stays in the legal parameter ranges:
/// finite center, arclength within [0, 2πρ].
#[test]
fn all_operators_produce_legal_arcs() {
    let (g, model) = trained();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(36);
    for s in Structure::all() {
        let gq = sampler.sample(s, &mut rng).expect("groundable");
        for branch in model.embed_query(&gq.query) {
            for arc in branch {
                assert!(arc.center.is_finite(), "{s}: non-finite center");
                assert!(
                    (0.0..=TAU + 1e-4).contains(&arc.len),
                    "{s}: arclength {} out of range",
                    arc.len
                );
            }
        }
    }
}

/// §III-F: the union operator is non-parametric — embedding a union yields
/// exactly the embeddings of its branches.
#[test]
fn union_embedding_is_branch_embeddings() {
    let (g, model) = setup();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(37);
    let b1 = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
    let b2 = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
    let union = Query::Union(vec![b1.clone(), b2.clone()]);
    let got = model.embed_query(&union);
    let expect = [&model.embed_query(&b1)[0], &model.embed_query(&b2)[0]];
    assert_eq!(got.len(), 2);
    for (branch, exp) in got.iter().zip(expect) {
        for (a, e) in branch.iter().zip(exp.iter()) {
            assert!((a.center - e.center).abs() < 1e-5);
            assert!((a.len - e.len).abs() < 1e-5);
        }
    }
}
