//! Integration: the four answering paths — exact engine, DNF-rewritten
//! exact engine, subgraph matcher, SPARQL front-end — must agree on what a
//! query means.

use halk::kg::{generate, EntityId, SynthConfig};
use halk::logic::{answers, to_dnf, EntitySet, Query, Sampler, Structure};
use halk::matching::Matcher;
use halk::sparql::sparql_to_query;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dnf_preserves_semantics_for_every_workload_structure() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(1));
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(2);
    for s in Structure::all() {
        let Some(gq) = sampler.sample(s, &mut rng) else {
            panic!("{s} not groundable");
        };
        let direct = answers(&gq.query, &g);
        let mut via_dnf = EntitySet::empty(g.n_entities());
        for b in to_dnf(&gq.query) {
            assert!(!b.has_union(), "{s}: union survived DNF");
            via_dnf.union_with(&answers(&b, &g));
        }
        assert_eq!(direct, via_dnf, "{s}: DNF changed semantics");
    }
}

#[test]
fn matcher_full_score_results_are_exact_answers_on_complete_graph() {
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(3));
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(4);
    let matcher = Matcher::new(&g);
    for s in [Structure::P1, Structure::P2, Structure::I2, Structure::Pi] {
        for gq in sampler.sample_many(s, 3, &mut rng) {
            let truth = answers(&gq.query, &g);
            let full = gq.query.relations().len() as f32;
            for m in matcher.answer(&gq.query) {
                if m.score >= full - 1e-6 {
                    assert!(
                        truth.contains(m.entity),
                        "{s}: matcher claims non-answer {} with full score",
                        m.entity
                    );
                }
            }
        }
    }
}

#[test]
fn sparql_round_trip_agrees_with_hand_built_query() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(5));
    let t = g.triples()[0];
    let hand = Query::atom(t.h, t.r);
    let via_sparql = sparql_to_query(&format!(
        "SELECT ?x WHERE {{ e:{} r:{} ?x . }}",
        t.h.0, t.r.0
    ))
    .expect("valid sparql");
    assert_eq!(answers(&hand, &g), answers(&via_sparql, &g));
}

#[test]
fn sparql_minus_equals_difference_semantics() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(6));
    let t0 = g.triples()[0];
    let t1 = g.triples()[1];
    let sparql = format!(
        "SELECT ?x WHERE {{ e:{} r:{} ?x . MINUS {{ e:{} r:{} ?x . }} }}",
        t0.h.0, t0.r.0, t1.h.0, t1.r.0
    );
    let q = sparql_to_query(&sparql).expect("valid sparql");
    let expect = Query::Difference(vec![Query::atom(t0.h, t0.r), Query::atom(t1.h, t1.r)]);
    assert_eq!(answers(&q, &g), answers(&expect, &g));
}

#[test]
fn negation_and_difference_agree_on_the_oracle() {
    // B ∧ ¬C ≡ B − C (Fig. 2's equivalence) on sampled real queries.
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(7));
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..5 {
        let b = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
        let c = sampler.sample(Structure::P1, &mut rng).expect("1p").query;
        let with_neg = Query::Intersection(vec![b.clone(), c.clone().negate()]);
        let with_diff = Query::Difference(vec![b, c]);
        assert_eq!(answers(&with_neg, &g), answers(&with_diff, &g));
    }
}

#[test]
fn entity_ids_stable_across_induced_subgraphs() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(9));
    let keep: Vec<bool> = (0..g.n_entities()).map(|i| i % 2 == 0).collect();
    let sub = g.induced_subgraph(&keep);
    // Any triple in the subgraph refers to the same entities as the parent.
    for t in sub.triples() {
        assert!(g.has(t.h, t.r, t.t));
        assert!(keep[t.h.index()] && keep[t.t.index()]);
    }
    let _ = EntityId(0); // typed-ids compile across crate boundaries
}
