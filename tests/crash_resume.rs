//! Integration: kill-and-resume across crates. A training run that dies
//! partway leaves rotated `step-*.ckpt` files behind; a fresh process picks
//! the newest one, resumes at the recorded step, and finishes the original
//! budget. Torn checkpoint files are rejected with a typed error instead of
//! silently resuming from garbage.

use halk::core::{train_model, HalkConfig, HalkModel, TrainConfig, TrainError};
use halk::kg::{generate, SynthConfig};
use halk::logic::{Query, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("halk_crash_resume_tests")
        .join(name);
    // Start clean so stale checkpoints from earlier runs can't leak in.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn checkpoints_in(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("checkpoint dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    // `step-{:08}` zero-padding makes lexicographic order chronological.
    files.sort();
    files
}

fn config(steps: usize, ckpt_dir: &Path) -> TrainConfig {
    TrainConfig {
        steps,
        batch_size: 8,
        negatives: 4,
        queries_per_structure: 20,
        checkpoint_every: 10,
        checkpoint_dir: Some(ckpt_dir.to_path_buf()),
        keep_checkpoints: 2,
        ..TrainConfig::default()
    }
}

#[test]
fn killed_run_resumes_from_latest_checkpoint_and_finishes() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(11));
    let ckpt_dir = tmp_dir("kill").join("checkpoints");

    // Phase 1: the "killed" process — it meant to run 60 steps but only got
    // through 35 before dying (modeled by a 35-step budget; the loop writes
    // a final checkpoint at whatever step it stopped on).
    let mut victim = HalkModel::new(&g, HalkConfig::tiny());
    let stats = train_model(&mut victim, &g, &[Structure::P1], &config(35, &ckpt_dir)).unwrap();
    assert_eq!(stats.start_step, 0);

    // Rotation kept the budget bounded: at most keep+1 files (the last K
    // periodic ones plus the final off-cadence checkpoint).
    let files = checkpoints_in(&ckpt_dir);
    assert!(
        (1..=3).contains(&files.len()),
        "rotation failed, found {files:?}"
    );
    let latest = files.last().unwrap().clone();
    assert!(
        latest.to_string_lossy().contains("step-00000035"),
        "{latest:?}"
    );

    // Phase 2: a fresh process with the *original* 60-step budget resumes
    // from the newest checkpoint and only trains the remaining steps.
    let mut resumed = HalkModel::new(&g, HalkConfig::tiny());
    let tc = TrainConfig {
        resume_from: Some(latest),
        ..config(60, &ckpt_dir)
    };
    let stats = train_model(&mut resumed, &g, &[Structure::P1], &tc).unwrap();
    assert_eq!(stats.start_step, 35);
    assert_eq!(stats.losses.len() + stats.rollbacks, 25);
    assert!(stats.losses.iter().all(|l| l.is_finite()));
    assert_eq!(resumed.store.steps_taken(), 60);

    // The finished model is fully usable.
    let t = g.triples()[0];
    let scores = resumed.score_all(&Query::atom(t.h, t.r));
    assert_eq!(scores.len(), g.n_entities());
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn torn_checkpoint_is_rejected_but_intact_one_still_resumes() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(12));
    let ckpt_dir = tmp_dir("torn").join("checkpoints");

    let mut victim = HalkModel::new(&g, HalkConfig::tiny());
    train_model(&mut victim, &g, &[Structure::P1], &config(20, &ckpt_dir)).unwrap();
    let files = checkpoints_in(&ckpt_dir);
    let latest = files.last().unwrap().clone();

    // Simulate a torn write: truncate a copy of the newest checkpoint.
    let torn = ckpt_dir.join("torn.ckpt");
    let bytes = std::fs::read(&latest).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();

    let mut model = HalkModel::new(&g, HalkConfig::tiny());
    let tc = TrainConfig {
        resume_from: Some(torn),
        ..config(30, &ckpt_dir)
    };
    let err = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap_err();
    assert!(matches!(err, TrainError::Resume { .. }), "{err}");

    // The intact checkpoint (the one the atomic-rename protocol actually
    // published) still resumes fine.
    let tc = TrainConfig {
        resume_from: Some(latest),
        ..config(30, &ckpt_dir)
    };
    let stats = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap();
    assert_eq!(stats.start_step, 20);
    assert_eq!(model.store.steps_taken(), 30);
}

#[test]
fn resume_into_wrong_model_shape_is_a_typed_error() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(13));
    let ckpt_dir = tmp_dir("shape").join("checkpoints");

    let mut a = HalkModel::new(&g, HalkConfig::tiny());
    train_model(&mut a, &g, &[Structure::P1], &config(10, &ckpt_dir)).unwrap();
    let latest = checkpoints_in(&ckpt_dir).pop().unwrap();

    // A model with a different embedding dimension must refuse the file.
    let other_cfg = HalkConfig {
        dim: HalkConfig::tiny().dim * 2,
        ..HalkConfig::tiny()
    };
    let mut b = HalkModel::new(&g, other_cfg);
    let tc = TrainConfig {
        resume_from: Some(latest),
        ..config(20, &ckpt_dir)
    };
    let err = train_model(&mut b, &g, &[Structure::P1], &tc).unwrap_err();
    assert!(
        matches!(err, TrainError::ResumeShapeMismatch { .. }),
        "{err}"
    );
}
