//! Integration: persistence round-trips across crates — TSV graphs through
//! the CLI-facing API, binary model checkpoints, and JSON configs.

use halk::core::{train_model, HalkConfig, HalkModel, TrainConfig};
use halk::kg::{generate, tsv, SynthConfig};
use halk::logic::{Query, Sampler, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("halk_persistence_tests")
        .join(name);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn graph_tsv_roundtrip_preserves_query_answers() {
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(1));
    let path = tmp_dir("tsv").join("g.tsv");
    tsv::save(&g, &path).expect("save");
    let g2 = tsv::load(&path).expect("load");

    // Answers to sampled queries are identical on the reloaded graph.
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(2);
    for s in [Structure::P2, Structure::I2, Structure::D2, Structure::In2] {
        let gq = sampler.sample(s, &mut rng).expect("groundable");
        assert_eq!(
            halk::logic::answers(&gq.query, &g),
            halk::logic::answers(&gq.query, &g2),
            "{s}"
        );
    }
}

#[test]
fn trained_model_checkpoint_resumes_training_identically() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(3));
    let tc = TrainConfig {
        steps: 25,
        batch_size: 8,
        negatives: 4,
        queries_per_structure: 20,
        ..TrainConfig::default()
    };
    // Path A: train 25 steps, checkpoint, train 25 more.
    let mut a = HalkModel::new(&g, HalkConfig::tiny());
    train_model(&mut a, &g, &[Structure::P1], &tc).unwrap();
    let dir = tmp_dir("resume");
    a.save(&dir).expect("save");
    let mut a2 = HalkModel::load(&g, &dir).expect("load");
    let tc2 = TrainConfig {
        seed: 99,
        ..tc.clone()
    };
    let stats_resumed = train_model(&mut a2, &g, &[Structure::P1], &tc2).unwrap();
    // Path B: continue the original in memory with the same second-phase seed.
    let stats_continued = train_model(&mut a, &g, &[Structure::P1], &tc2).unwrap();
    assert_eq!(stats_resumed.losses, stats_continued.losses);
}

#[test]
fn checkpoint_scores_are_bit_identical() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(4));
    let mut model = HalkModel::new(&g, HalkConfig::tiny());
    let tc = TrainConfig {
        steps: 15,
        batch_size: 8,
        negatives: 4,
        queries_per_structure: 15,
        ..TrainConfig::default()
    };
    train_model(&mut model, &g, &[Structure::P1, Structure::I2], &tc).unwrap();
    let dir = tmp_dir("scores");
    model.save(&dir).expect("save");
    let restored = HalkModel::load(&g, &dir).expect("load");
    let t = g.triples()[5];
    let q = Query::atom(t.h, t.r).project(t.r);
    assert_eq!(model.score_all(&q), restored.score_all(&q));
    assert_eq!(model.n_entities(), restored.n_entities());
}

#[test]
fn config_json_in_checkpoint_is_readable() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(5));
    let model = HalkModel::new(&g, HalkConfig::tiny());
    let dir = tmp_dir("config");
    model.save(&dir).expect("save");
    let raw = std::fs::read_to_string(dir.join("config.json")).expect("readable");
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("valid json");
    assert_eq!(parsed["dim"], 8);
    assert!(parsed["gamma"].as_f64().is_some());
}
