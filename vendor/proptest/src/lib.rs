//! Offline stand-in for `proptest` implementing the subset of the API this
//! workspace uses: `proptest!` / `prop_assert*` / `prop_assume!` /
//! `prop_oneof!`, range and tuple strategies, `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, `collection::vec`, `any::<bool>()`, and
//! `ProptestConfig::with_cases`.
//!
//! Sampling is deterministic per test name (no shrinking, no persisted
//! regressions); failures panic with the case's message like the real crate.

pub mod test_runner {
    /// Deterministic RNG driving strategy sampling (SplitMix64 stream).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f32(&mut self) -> f32 {
            ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn next_below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// FNV-1a — stable per-test seed derived from the test path.
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runner configuration. Only `cases` is honoured by this stand-in.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property is violated; the run fails.
        Fail(String),
        /// The inputs were unsuitable (`prop_assume!`); the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Depth-bounded recursive strategies. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility but the
        /// stand-in only honours `depth`: each level recurses with
        /// probability 2/3 and falls back to the base strategy otherwise.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![base.clone(), deeper.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive samples: {}",
                self.whence
            );
        }
    }

    /// Uniform choice among type-erased alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "Union requires at least one strategy");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.next_below(span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty => $next:ident),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let x = self.start + rng.$next() as $t * (self.end - self.start);
                    if x >= self.end { self.start } else { x }
                }
            }
        )*};
    }

    float_range_strategy!(f32 => next_f32, f64 => next_f64);

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Half-open length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the element strategy and a length (or length
    /// range) to draw from.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;

        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::Range<$t>;

                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..<$t>::MAX
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $(let $arg = $strat;)+
            let __seed = $crate::test_runner::fnv1a(
                concat!(module_path!(), "::", stringify!($name)).as_bytes(),
            );
            let mut __done = 0u32;
            let mut __attempts = 0u32;
            while __done < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(20).saturating_add(100) {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), __done, __config.cases,
                    );
                }
                let mut __rng = $crate::test_runner::TestRng::new(
                    __seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(__attempts as u64),
                );
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let ($($arg,)+) =
                        ($($crate::strategy::Strategy::sample(&$arg, &mut __rng),)+);
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                };
                match __outcome {
                    ::core::result::Result::Ok(()) => __done += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {} (attempt {}): {}",
                            stringify!($name), __done, __attempts, msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__lhs, __rhs) => {
                if !(*__lhs == *__rhs) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `{:?}` == `{:?}`", __lhs, __rhs),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__lhs, __rhs) => {
                if !(*__lhs == *__rhs) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__lhs, __rhs) => {
                if *__lhs == *__rhs {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `{:?}` != `{:?}`", __lhs, __rhs),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds_and_are_deterministic() {
        let mut rng = TestRng::new(7);
        let strat = (3u32..9, -2.0f32..2.0, 0usize..5);
        let mut seen = Vec::new();
        for _ in 0..200 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!((3..9).contains(&a));
            assert!((-2.0..2.0).contains(&b));
            assert!(c < 5);
            seen.push((a, c));
        }
        let mut rng2 = TestRng::new(7);
        for &(a, c) in &seen {
            let (a2, _, c2) = strat.sample(&mut rng2);
            assert_eq!((a, c), (a2, c2));
        }
    }

    #[test]
    fn map_filter_vec_union_compose() {
        let mut rng = TestRng::new(11);
        let strat =
            prop::collection::vec((0u32..100).prop_filter("odd only", |x| x % 2 == 1), 2..6)
                .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.sample(&mut rng);
            assert!((2..6).contains(&n));
        }
        let one = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            assert!(matches!(one.sample(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 3, |inner| {
                prop::collection::vec(inner, 2..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(3);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.sample(&mut rng)));
        }
        assert!(max_depth >= 2, "recursion never happened");
        assert!(max_depth <= 4, "recursion exceeded depth bound");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end(x in 1u32..50, flip in any::<bool>(), v in prop::collection::vec(0i32..4, 1..5)) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x), "x out of range: {x}");
            prop_assert!(!v.is_empty());
            let _ = flip;
        }
    }
}
