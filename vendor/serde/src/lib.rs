//! Offline stand-in for `serde` (the subset this workspace uses).
//!
//! Instead of upstream serde's visitor architecture, this stand-in uses a
//! concrete JSON-like [`Value`] as the single interchange data model:
//! [`Serialize`] renders into a `Value`, [`Deserialize`] reads back out of
//! one. The `serde_json` stand-in supplies text parsing/printing on top,
//! and the `serde_derive` stand-in generates impls for plain structs and
//! enums (no `#[serde(...)]` attributes are supported — none are used in
//! this repository).

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The interchange data model (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numerics map through `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (numbers with no fractional part).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(i32, i64, u32, u64, usize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types restorable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => {
                        let cast = *n as $t;
                        if cast as f64 == *n {
                            Ok(cast)
                        } else {
                            Err(Error::msg(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // f64 -> f32 is the inverse of the (exact) f32 -> f64 widening.
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($({
                            let _ = $idx;
                            $name::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?
                        },)+);
                        Ok(tuple)
                    }
                    _ => Err(Error::msg("expected array for tuple")),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn out_of_range_numbers_rejected() {
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u32::from_value(&Value::Number(-1.0)).is_err());
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("dim".into(), Value::Number(8.0))]);
        assert_eq!(v["dim"], 8);
        assert_eq!(v["dim"].as_f64(), Some(8.0));
        assert_eq!(v["missing"], Value::Null);
    }
}
