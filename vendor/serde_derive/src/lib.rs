//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` / `serde::Deserialize`
//! traits (which render to/from a JSON-shaped `serde::Value`) for plain,
//! non-generic structs and enums. `#[serde(...)]` attributes are not
//! supported — the workspace does not use any.
//!
//! Implemented without `syn`/`quote` (the build environment is offline):
//! the item token stream is parsed by hand, and the generated impl is
//! assembled as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => generate(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kind = expect_any_ident(&tokens, &mut pos)?;
    let name = expect_any_ident(&tokens, &mut pos)?;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type {name}"));
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g.stream())),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("unsupported struct body after {name}: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body after {name}: {other:?}")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // pub(crate) / pub(super) / pub(in ...)
                }
            }
            _ => return,
        }
    }
}

fn expect_any_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_any_ident(&tokens, &mut pos)?);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_any_ident(&tokens, &mut pos)?;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip anything up to the separating comma (e.g. discriminants).
        while pos < tokens.len()
            && !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',')
        {
            pos += 1;
        }
        pos += 1; // ','
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// --------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => obj_expr(names, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inner = obj_expr(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), {inner})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn obj_expr(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({f:?}.to_string(), ::serde::Serialize::to_value({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"tuple struct too short\"))?)?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Array(items) => Ok({name}({})),\n\
                             _ => Err(::serde::Error::msg(\"expected array for {name}\")),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => format!("Ok({name} {{ {} }})", named_init(name, names)),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"variant tuple too short\"))?)?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => match inner {{\n\
                                     ::serde::Value::Array(items) => Ok({name}::{vn}({})),\n\
                                     _ => Err(::serde::Error::msg(\"expected array for variant {vn}\")),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(fields) => Some(format!(
                            "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                            named_init_from("inner", name, fields)
                        )),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{other}}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::msg(\"expected string or single-key object for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}

fn named_init(owner: &str, fields: &[String]) -> String {
    named_init_from("v", owner, fields)
}

fn named_init_from(source: &str, owner: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.get({f:?}).ok_or_else(|| ::serde::Error::msg(\"missing field `{f}` in {owner}\"))?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}
