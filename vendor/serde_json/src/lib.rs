//! Offline stand-in for `serde_json` (the subset this workspace uses):
//! [`json!`], [`to_string`]/[`to_string_pretty`], [`from_str`], [`Value`].
//!
//! Works against the stand-in `serde` crate's JSON-shaped data model, so
//! anything deriving the stand-in `Serialize`/`Deserialize` round-trips
//! through real JSON text here.

pub use serde::{Error, Value};

/// Renders any serializable value into the [`Value`] data model.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports the forms used in
/// this workspace: flat `{ "key": expr, ... }` objects, `[expr, ...]`
/// arrays, `null`, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$value)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ----------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    write_item: impl Fn(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::msg(format!("{what} at byte {}", self.pos))
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b':') {
                        return Err(self.err("expected `:`"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected value"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let v = json!({
            "name": "halk",
            "dim": 8usize,
            "gamma": 0.375f32,
            "tags": vec!["a".to_string(), "b".to_string()],
            "none": Option::<f64>::None,
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["dim"], 8);
        assert_eq!(back["gamma"].as_f64(), Some(0.375));
        assert_eq!(back["none"], Value::Null);
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v: Value = from_str(r#"{"a": [1, 2.5, true, null, "x\nyA"], "b": {}}"#).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][4], "x\nyA");
        assert_eq!(v["b"], Value::Object(vec![]));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(to_string(&Value::Number(8.0)).unwrap(), "8");
        assert_eq!(to_string(&Value::Number(0.5)).unwrap(), "0.5");
    }
}
