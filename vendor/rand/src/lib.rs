//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact API surface it uses: [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms), the [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits, range/bool sampling and [`seq::SliceRandom`].
//! Stream values differ from upstream `rand`, but every consumer in this
//! repository only relies on determinism and uniformity, not on the exact
//! stream.

use std::ops::Range;

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a [`Range`].
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift bounded sampling (bias < 2^-64; negligible).
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// Ranges a value can be drawn from (here: half-open ranges only).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// High-level sampling methods, available on every [`RngCore`]
/// (including trait objects, matching upstream `rand`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, SampleUniform};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(usize::sample_range(rng, 0, self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, usize::sample_range(rng, 0, i + 1));
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0..1000u32)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17u32);
            assert!((5..17).contains(&x));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn uniformity_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&heads), "gen_bool skew: {heads}");
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u32, 2, 3, 4];
        for _ in 0..20 {
            assert!(items.contains(items.choose(&mut rng).expect("non-empty")));
        }
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "shuffle left 50 elements untouched");
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn super::RngCore = &mut rng;
        let x = dynrng.gen_range(0..10u32);
        assert!(x < 10);
        assert!(dynrng.gen_bool(1.0));
    }
}
