//! Offline stand-in for `criterion` implementing the subset of the API this
//! workspace's benches use: `Criterion::{default, sample_size,
//! bench_function, benchmark_group}`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It measures wall-clock means over a small fixed iteration budget and
//! prints one line per benchmark — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard optimizer barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    // One warm-up pass, then the timed pass.
    for iters in [1, sample_size as u64] {
        let mut b = Bencher {
            iters,
            total_nanos: 0,
        };
        f(&mut b);
        if iters > 1 {
            let mean = b.total_nanos / u128::from(b.iters.max(1));
            println!("{id}: {mean} ns/iter (mean over {iters} iters)");
        }
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(2u64) + 2));
        let mut group = c.benchmark_group("grouped");
        group.bench_with_input(BenchmarkId::new("times2", 21), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_with_input(BenchmarkId::from_parameter("param"), &1u64, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
