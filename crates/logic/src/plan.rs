//! Compile-once query plans: a flat operator IR shared by every engine.
//!
//! The repo used to re-interpret the [`Query`] AST recursively in four
//! places (exact answers, HaLk embedding, the baseline embedder, the
//! per-model value readers), each running the DNF rewrite of §III-F per
//! call. This module compiles a query **once** into a [`PlanShape`]: a
//! topologically-ordered list of operator slots with the union rewrite
//! already applied (the shape's roots are the conjunctive DNF branches) and
//! shared subtrees collapsed into single slots, so work a recursive
//! interpreter repeated per branch happens once per plan.
//!
//! A shape is **unbound**: anchors and relations are argument *indices*
//! into a per-query [`PlanBindings`] table, assigned in the same pre-order
//! as [`Query::anchors`]/[`Query::relations`]. Two queries grounded from
//! the same [`Structure`](crate::Structure) therefore share one shape —
//! the per-`Structure` [`PlanCache`] compiles each skeleton exactly once
//! per run — and a whole batch executes against a single shape with only
//! the binding tables varying, which is what makes batched embedding work.
//!
//! Per-slot group masks (§II-A) are precomputed by [`PlanMasks`] in one
//! linear pass over the slots instead of recursively per intersection; the
//! root mask (OR over branch roots) is exactly the recursive `group_mask`
//! of the original query because every mask rule is bitwise-linear and AND
//! distributes over OR.

use crate::answers::AnswerSplit;
use crate::ast::Query;
use crate::set::EntitySet;
use halk_kg::{EntityId, Graph, Grouping, RelationId};
use halk_obs::Deadline;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, RwLock};

/// One operator slot of a compiled plan. Anchor/relation arguments are
/// indices into a [`PlanBindings`] table; operator inputs are earlier slot
/// ids (the slot list is topologically ordered by construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// Anchor entity `bindings.anchors[arg]`.
    Anchor {
        /// Index into [`PlanBindings::anchors`].
        arg: u32,
    },
    /// Projection of slot `input` by relation `bindings.rels[rel]`.
    Projection {
        /// Index into [`PlanBindings::rels`].
        rel: u32,
        /// Input slot id.
        input: u32,
    },
    /// Intersection of two or more slots.
    Intersection {
        /// Input slot ids.
        inputs: Vec<u32>,
    },
    /// Difference: `inputs[0]` minus all the rest.
    Difference {
        /// Input slot ids; the first is the minuend.
        inputs: Vec<u32>,
    },
    /// Complement of one slot.
    Negation {
        /// Input slot id.
        input: u32,
    },
}

/// A compiled, unbound query plan: DNF-rewritten operator slots in
/// topological order plus the branch-root slots whose disjunction is the
/// query. Shared by every same-skeleton query via [`PlanCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanShape {
    ops: Vec<PlanOp>,
    roots: Vec<u32>,
    n_anchors: usize,
    n_rels: usize,
}

impl PlanShape {
    /// Compiles a query into a plan. The DNF rewrite of §III-F happens
    /// here, at compile time, mirroring [`crate::to_dnf`] branch for
    /// branch: projections distribute over their input's branches, unions
    /// concatenate, intersections take the cartesian product, difference
    /// subtrahends flatten into the branch, and a negated union rewrites by
    /// De Morgan into an intersection of negations.
    pub fn compile(query: &Query) -> PlanShape {
        let mut b = ShapeBuilder {
            ops: Vec::new(),
            dedup: HashMap::new(),
            next_anchor: 0,
            next_rel: 0,
        };
        let roots = b.compile(query);
        PlanShape {
            ops: b.ops,
            roots,
            n_anchors: b.next_anchor as usize,
            n_rels: b.next_rel as usize,
        }
    }

    /// The operator slots, topologically ordered (inputs precede users).
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The branch-root slots, in the same order [`crate::to_dnf`] emits
    /// branches (scores take the minimum distance over these, §III-F).
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Number of operator slots.
    pub fn n_slots(&self) -> usize {
        self.ops.len()
    }

    /// Number of conjunctive DNF branches.
    pub fn n_branches(&self) -> usize {
        self.roots.len()
    }

    /// Anchor-argument count a [`PlanBindings`] for this shape must have.
    pub fn n_anchors(&self) -> usize {
        self.n_anchors
    }

    /// Relation-argument count a [`PlanBindings`] for this shape must have.
    pub fn n_rels(&self) -> usize {
        self.n_rels
    }
}

struct ShapeBuilder {
    ops: Vec<PlanOp>,
    /// Hash-consing table: re-emitting an identical op (same kind, same
    /// argument indices, same input slots) returns the existing slot, so
    /// DNF-duplicated copies of one subtree collapse into a single slot.
    dedup: HashMap<PlanOp, u32>,
    next_anchor: u32,
    next_rel: u32,
}

impl ShapeBuilder {
    fn push(&mut self, op: PlanOp) -> u32 {
        if let Some(&slot) = self.dedup.get(&op) {
            return slot;
        }
        let slot = self.ops.len() as u32;
        self.ops.push(op.clone());
        self.dedup.insert(op, slot);
        slot
    }

    /// Compiles one AST node, returning the slot of each of its DNF
    /// branches. Argument indices are assigned in pre-order (a projection's
    /// relation before its input's arguments, children left to right) so
    /// they line up with [`Query::anchors`]/[`Query::relations`].
    fn compile(&mut self, q: &Query) -> Vec<u32> {
        match q {
            Query::Anchor(_) => {
                let arg = self.next_anchor;
                self.next_anchor += 1;
                vec![self.push(PlanOp::Anchor { arg })]
            }
            Query::Projection { input, .. } => {
                let rel = self.next_rel;
                self.next_rel += 1;
                let inner = self.compile(input);
                inner
                    .into_iter()
                    .map(|s| self.push(PlanOp::Projection { rel, input: s }))
                    .collect()
            }
            Query::Union(qs) => qs.iter().flat_map(|b| self.compile(b)).collect(),
            Query::Intersection(qs) => {
                let branch_sets: Vec<Vec<u32>> = qs.iter().map(|b| self.compile(b)).collect();
                cartesian(&branch_sets)
                    .into_iter()
                    .map(|inputs| self.push(PlanOp::Intersection { inputs }))
                    .collect()
            }
            Query::Difference(qs) => {
                let minuend = self.compile(&qs[0]);
                // a − (b ∪ c) = (a − b) − c: every subtrahend branch joins
                // the slot's input list.
                let subtrahends: Vec<u32> = qs[1..].iter().flat_map(|b| self.compile(b)).collect();
                minuend
                    .into_iter()
                    .map(|m| {
                        let mut inputs = vec![m];
                        inputs.extend(subtrahends.iter().copied());
                        self.push(PlanOp::Difference { inputs })
                    })
                    .collect()
            }
            Query::Negation(inner) => {
                // ¬(b ∪ c) = ¬b ∧ ¬c.
                let branches = self.compile(inner);
                if branches.len() == 1 {
                    vec![self.push(PlanOp::Negation { input: branches[0] })]
                } else {
                    let negs: Vec<u32> = branches
                        .into_iter()
                        .map(|b| self.push(PlanOp::Negation { input: b }))
                        .collect();
                    vec![self.push(PlanOp::Intersection { inputs: negs })]
                }
            }
        }
    }
}

/// Cartesian product over slot lists, in the same prefix-major order as the
/// DNF rewrite (the last child varies fastest).
fn cartesian(sets: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut acc: Vec<Vec<u32>> = vec![Vec::new()];
    for set in sets {
        let mut next = Vec::with_capacity(acc.len() * set.len());
        for prefix in &acc {
            for &item in set {
                let mut row = prefix.clone();
                row.push(item);
                next.push(row);
            }
        }
        acc = next;
    }
    acc
}

/// The concrete anchors and relations of one grounded query, in the
/// pre-order a [`PlanShape`]'s argument indices expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanBindings {
    /// Anchor entities (indexed by [`PlanOp::Anchor`]'s `arg`).
    pub anchors: Vec<EntityId>,
    /// Relations (indexed by [`PlanOp::Projection`]'s `rel`).
    pub rels: Vec<RelationId>,
}

impl PlanBindings {
    /// Extracts the binding table of a query (pre-order traversal — the
    /// same order the compiler assigns argument indices in).
    pub fn of(query: &Query) -> PlanBindings {
        PlanBindings {
            anchors: query.anchors(),
            rels: query.relations(),
        }
    }

    /// Panics unless this table fits `shape`'s argument counts.
    pub fn check(&self, shape: &PlanShape) {
        assert_eq!(self.anchors.len(), shape.n_anchors(), "anchor arity");
        assert_eq!(self.rels.len(), shape.n_rels(), "relation arity");
    }
}

/// Per-slot group masks `h_U` (§II-A / Eq. 10) for one bound query,
/// computed in a single linear pass at bind time instead of recursively per
/// embedding call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanMasks {
    /// One mask per plan slot.
    pub slot: Vec<u64>,
    /// The query's own mask: OR over the branch roots. Equal to the
    /// recursive `group_mask` of the original (pre-DNF) query because
    /// propagation is bitwise-linear and AND distributes over OR.
    pub root: u64,
}

impl PlanMasks {
    /// Computes the masks of `shape` bound by `bindings` under `grouping`.
    pub fn compute(shape: &PlanShape, bindings: &PlanBindings, grouping: &Grouping) -> PlanMasks {
        bindings.check(shape);
        let mut slot = Vec::with_capacity(shape.n_slots());
        for op in shape.ops() {
            let m = match op {
                PlanOp::Anchor { arg } => grouping.mask_of(bindings.anchors[*arg as usize]),
                PlanOp::Projection { rel, input } => {
                    grouping.propagate(slot[*input as usize], bindings.rels[*rel as usize])
                }
                PlanOp::Intersection { inputs } => inputs
                    .iter()
                    .fold(grouping.full_mask(), |a, &i| a & slot[i as usize]),
                PlanOp::Difference { inputs } => slot[inputs[0] as usize],
                // A complement can land in any group.
                PlanOp::Negation { .. } => grouping.full_mask(),
            };
            slot.push(m);
        }
        let root = shape
            .roots()
            .iter()
            .fold(0u64, |a, &r| a | slot[r as usize]);
        PlanMasks { slot, root }
    }
}

/// Executes a bound plan with exact set semantics — the plan-based form of
/// [`crate::answers`]. Slots evaluate eagerly in topological order;
/// intersections fold their (already materialized) inputs
/// smallest-cardinality-first so the empty-accumulator early exit fires as
/// soon as any selective input empties the result.
pub fn execute_set(shape: &PlanShape, bindings: &PlanBindings, graph: &Graph) -> EntitySet {
    execute_set_deadline(shape, bindings, graph, &Deadline::never())
        .expect("an unarmed deadline never expires")
}

/// The error of [`execute_set_deadline`]: the deadline expired before the
/// plan finished. Exact set semantics admit no meaningful partial answer,
/// so there is no partial payload to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExpired;

impl std::fmt::Display for DeadlineExpired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline expired during plan execution")
    }
}

impl std::error::Error for DeadlineExpired {}

/// [`execute_set`] under a [`Deadline`], checked between plan slots (the
/// natural work quantum of the exact engine: one slot is one relational
/// sweep). Returns [`DeadlineExpired`] as soon as the deadline is found
/// expired, and the caller degrades to a typed deadline response instead
/// of a wrong answer.
pub fn execute_set_deadline(
    shape: &PlanShape,
    bindings: &PlanBindings,
    graph: &Graph,
    deadline: &Deadline,
) -> Result<EntitySet, DeadlineExpired> {
    let mut slots = Vec::with_capacity(shape.n_slots());
    execute_set_into(shape, bindings, graph, deadline, &mut slots)
}

/// Executes one compiled shape for a whole *group* of bindings — the exact
/// engine's half of skeleton batching: the shape is traversed once per
/// query but the slot table is a single reused allocation across the
/// group, and callers amortize the plan lookup/validation over the batch.
/// Each query runs under its own deadline; one expiring does not stop the
/// rest. Result `i` is exactly `execute_set_deadline(shape, bindings[i])`.
pub fn execute_set_batch(
    shape: &PlanShape,
    bindings: &[&PlanBindings],
    graph: &Graph,
    deadlines: &[&Deadline],
) -> Vec<Result<EntitySet, DeadlineExpired>> {
    assert_eq!(bindings.len(), deadlines.len(), "one deadline per binding");
    let mut slots = Vec::with_capacity(shape.n_slots());
    bindings
        .iter()
        .zip(deadlines)
        .map(|(b, d)| execute_set_into(shape, b, graph, d, &mut slots))
        .collect()
}

fn execute_set_into(
    shape: &PlanShape,
    bindings: &PlanBindings,
    graph: &Graph,
    deadline: &Deadline,
    slots: &mut Vec<EntitySet>,
) -> Result<EntitySet, DeadlineExpired> {
    bindings.check(shape);
    let n = graph.n_entities();
    slots.clear();
    for op in shape.ops() {
        if deadline.expired() {
            return Err(DeadlineExpired);
        }
        let set = match op {
            PlanOp::Anchor { arg } => EntitySet::singleton(n, bindings.anchors[*arg as usize]),
            PlanOp::Projection { rel, input } => {
                let rel = bindings.rels[*rel as usize];
                let mut out = EntitySet::empty(n);
                for e in slots[*input as usize].iter() {
                    for &t in graph.neighbors(e, rel) {
                        out.insert(EntityId(t));
                    }
                }
                out
            }
            PlanOp::Intersection { inputs } => {
                // Smallest first: the fold starts from the most selective
                // input, so `acc` often empties before the big sets are
                // even touched.
                let mut order: Vec<u32> = inputs.clone();
                order.sort_by_key(|&i| slots[i as usize].len());
                let mut it = order.into_iter();
                let first = it.next().expect("intersection of nothing");
                let mut acc = slots[first as usize].clone();
                for i in it {
                    if acc.is_empty() {
                        break;
                    }
                    acc.intersect_with(&slots[i as usize]);
                }
                acc
            }
            PlanOp::Difference { inputs } => {
                let mut acc = slots[inputs[0] as usize].clone();
                for &i in &inputs[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc.difference_with(&slots[i as usize]);
                }
                acc
            }
            PlanOp::Negation { input } => slots[*input as usize].complement(),
        };
        slots.push(set);
    }
    let mut acc = EntitySet::empty(n);
    for &r in shape.roots() {
        acc.union_with(&slots[r as usize]);
    }
    Ok(acc)
}

/// Plan-based [`crate::answer_split`]: one compile serves both graphs.
pub fn split_set(
    shape: &PlanShape,
    bindings: &PlanBindings,
    small: &Graph,
    large: &Graph,
) -> AnswerSplit {
    let on_small = execute_set(shape, bindings, small);
    let on_large = execute_set(shape, bindings, large);
    let mut hard = Vec::new();
    let mut easy = Vec::new();
    for e in on_large.iter() {
        if on_small.contains(e) {
            easy.push(e);
        } else {
            hard.push(e);
        }
    }
    AnswerSplit { hard, easy }
}

/// Default [`PlanCache`] capacity: far above the paper's 22 named
/// structures, far below anything a long-lived daemon would notice.
pub const PLAN_CACHE_DEFAULT_CAP: usize = 1024;

/// A thread-safe shape cache keyed by the query's structural skeleton
/// (operator tree with ids stripped). The paper's workload grounds every
/// query from a named [`Structure`](crate::Structure), so each of the 16
/// training/evaluation structures and 6 large structures (§IV-D) compiles
/// exactly once per run no matter how many instances flow through.
///
/// The cache is **bounded**: a long-lived `halk serve` daemon fed
/// adversarial query shapes (every request a fresh skeleton) would
/// otherwise grow it without limit. Past `cap` distinct skeletons the
/// oldest-inserted entry is evicted (FIFO — the workload is a small fixed
/// set of hot skeletons, so anything old enough to evict is stale or
/// hostile) and `halk_plan_cache_evictions_total` increments. Outstanding
/// [`Arc<PlanShape>`] handles keep evicted shapes alive; only the cache's
/// reference is dropped.
#[derive(Debug)]
pub struct PlanCache {
    inner: RwLock<PlanCacheInner>,
    cap: usize,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    map: HashMap<Vec<u8>, Arc<PlanShape>>,
    /// Insertion order of the keys in `map`, oldest first.
    order: VecDeque<Vec<u8>>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_capacity(PLAN_CACHE_DEFAULT_CAP)
    }
}

impl PlanCache {
    /// An empty cache with the default capacity.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// An empty cache holding at most `cap` compiled shapes (clamped to at
    /// least 1).
    pub fn with_capacity(cap: usize) -> PlanCache {
        PlanCache {
            inner: RwLock::new(PlanCacheInner::default()),
            cap: cap.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The compiled shape of `query`, compiling on first sight of its
    /// skeleton and returning the shared copy afterwards.
    pub fn shape_for(&self, query: &Query) -> Arc<PlanShape> {
        let key = skeleton_key(query);
        if let Some(shape) = self
            .inner
            .read()
            .expect("plan cache poisoned")
            .map
            .get(&key)
        {
            halk_obs::counter!("halk_plan_cache_hits_total").inc();
            return shape.clone();
        }
        halk_obs::counter!("halk_plan_cache_misses_total").inc();
        let shape = Arc::new(PlanShape::compile(query));
        // Double-checked under the write lock: a racing compiler's copy
        // wins so every caller shares one Arc per skeleton.
        let mut inner = self.inner.write().expect("plan cache poisoned");
        if let Some(existing) = inner.map.get(&key) {
            return existing.clone();
        }
        inner.map.insert(key.clone(), shape.clone());
        inner.order.push_back(key);
        while inner.map.len() > self.cap {
            let oldest = inner.order.pop_front().expect("order tracks map");
            inner.map.remove(&oldest);
            halk_obs::counter!("halk_plan_cache_evictions_total").inc();
        }
        shape
    }

    /// Number of distinct skeletons currently cached.
    pub fn len(&self) -> usize {
        self.inner.read().expect("plan cache poisoned").map.len()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serializes the operator tree with anchors/relations stripped: queries
/// grounded from one structure map to one key (and one compiled shape).
fn skeleton_key(query: &Query) -> Vec<u8> {
    fn walk(q: &Query, out: &mut Vec<u8>) {
        match q {
            Query::Anchor(_) => out.push(0),
            Query::Projection { input, .. } => {
                out.push(1);
                walk(input, out);
            }
            Query::Intersection(qs) => {
                out.push(2);
                out.extend((qs.len() as u32).to_le_bytes());
                qs.iter().for_each(|b| walk(b, out));
            }
            Query::Union(qs) => {
                out.push(3);
                out.extend((qs.len() as u32).to_le_bytes());
                qs.iter().for_each(|b| walk(b, out));
            }
            Query::Difference(qs) => {
                out.push(4);
                out.extend((qs.len() as u32).to_le_bytes());
                qs.iter().for_each(|b| walk(b, out));
            }
            Query::Negation(inner) => {
                out.push(5);
                walk(inner, out);
            }
        }
    }
    let mut out = Vec::with_capacity(16);
    walk(query, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::to_dnf;

    fn atom(e: u32, r: u32) -> Query {
        Query::atom(EntityId(e), RelationId(r))
    }

    #[test]
    fn union_free_query_compiles_to_one_branch() {
        let q = atom(0, 0).project(RelationId(1));
        let shape = PlanShape::compile(&q);
        assert_eq!(shape.n_branches(), 1);
        // Anchor, inner projection, outer projection.
        assert_eq!(shape.n_slots(), 3);
        assert_eq!(shape.n_anchors(), 1);
        assert_eq!(shape.n_rels(), 2);
    }

    #[test]
    fn branch_count_matches_dnf_everywhere() {
        let u = Query::Union(vec![atom(0, 0), atom(1, 0)]);
        let cases = vec![
            u.clone(),
            u.clone().project(RelationId(1)),
            Query::Intersection(vec![u.clone(), Query::Union(vec![atom(2, 1), atom(3, 1)])]),
            Query::Difference(vec![u.clone(), atom(4, 0)]),
            Query::Difference(vec![atom(4, 0), u.clone()]),
            u.clone().negate(),
            Query::Intersection(vec![atom(5, 1), u.negate()]),
        ];
        for q in cases {
            let shape = PlanShape::compile(&q);
            assert_eq!(
                shape.n_branches(),
                to_dnf(&q).len(),
                "branch count diverged for {}",
                q.render()
            );
        }
    }

    #[test]
    fn shared_subtrees_collapse_into_slots() {
        // I(U(a,b), c): to_dnf clones c into both branches; the plan keeps
        // one c slot referenced by two intersection slots.
        let q = Query::Intersection(vec![Query::Union(vec![atom(0, 0), atom(1, 0)]), atom(2, 1)]);
        let shape = PlanShape::compile(&q);
        assert_eq!(shape.n_branches(), 2);
        // 3 anchors + 3 projections + 2 intersections = 8 slots; the naive
        // per-branch expansion would materialize c twice (9 node visits).
        assert_eq!(shape.n_slots(), 8);
    }

    #[test]
    fn bindings_follow_preorder_arg_indices() {
        let q = Query::Intersection(vec![atom(1, 0), atom(3, 1)]).project(RelationId(2));
        let shape = PlanShape::compile(&q);
        let bindings = PlanBindings::of(&q);
        bindings.check(&shape);
        // Pre-order relations: outer projection first.
        assert_eq!(
            bindings.rels,
            vec![RelationId(2), RelationId(0), RelationId(1)]
        );
        assert_eq!(bindings.anchors, vec![EntityId(1), EntityId(3)]);
    }

    #[test]
    fn same_structure_shares_one_cached_shape() {
        let cache = PlanCache::new();
        let s1 = cache.shape_for(&atom(0, 0));
        let s2 = cache.shape_for(&atom(7, 3));
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.len(), 1);
        let s3 = cache.shape_for(&atom(0, 0).project(RelationId(1)));
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_evicts_oldest_skeleton_past_capacity() {
        let cache = PlanCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let s_atom = cache.shape_for(&atom(0, 0));
        let s_1p = cache.shape_for(&atom(0, 0).project(RelationId(1)));
        assert_eq!(cache.len(), 2);
        // A third skeleton evicts the oldest (the bare atom) — but the Arc
        // we already hold stays alive.
        let before = halk_obs::counter!("halk_plan_cache_evictions_total").get();
        let _s_2p = cache.shape_for(&atom(0, 0).project(RelationId(1)).project(RelationId(0)));
        assert_eq!(cache.len(), 2);
        assert_eq!(
            halk_obs::counter!("halk_plan_cache_evictions_total").get(),
            before + 1
        );
        // The evicted shape is still usable through our Arc.
        assert_eq!(s_atom.n_slots(), 2);
        // Re-requesting the evicted skeleton recompiles: a fresh Arc. This
        // insert in turn evicts the next-oldest entry (the 1p shape).
        let s_atom2 = cache.shape_for(&atom(3, 1));
        assert!(!Arc::ptr_eq(&s_atom, &s_atom2));
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(
            &s_1p,
            &cache.shape_for(&atom(9, 2).project(RelationId(0)))
        ));
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let cache = PlanCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.shape_for(&atom(0, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn deadline_execution_matches_plain_and_expires_between_slots() {
        use halk_kg::Triple;
        let g = Graph::from_triples(
            4,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(2, 1, 3),
            ],
        );
        let q = atom(0, 0).project(RelationId(1));
        let shape = PlanShape::compile(&q);
        let bindings = PlanBindings::of(&q);
        let plain = execute_set(&shape, &bindings, &g);
        let ok = execute_set_deadline(&shape, &bindings, &g, &Deadline::never())
            .expect("never-deadline cannot expire");
        assert_eq!(
            plain.iter().collect::<Vec<_>>(),
            ok.iter().collect::<Vec<_>>()
        );
        // An already-expired mock deadline aborts before the first slot.
        let (clock, now) = halk_obs::Clock::mock();
        now.store(10, std::sync::atomic::Ordering::SeqCst);
        let d = Deadline::at_ns(&clock, 5);
        assert!(execute_set_deadline(&shape, &bindings, &g, &d).is_err());
    }

    #[test]
    fn ops_are_topologically_ordered() {
        let q = Query::Difference(vec![
            Query::Union(vec![atom(0, 0), atom(1, 0)]).project(RelationId(1)),
            atom(2, 0),
        ]);
        let shape = PlanShape::compile(&q);
        for (i, op) in shape.ops().iter().enumerate() {
            let inputs: Vec<u32> = match op {
                PlanOp::Anchor { .. } => vec![],
                PlanOp::Projection { input, .. } | PlanOp::Negation { input } => vec![*input],
                PlanOp::Intersection { inputs } | PlanOp::Difference { inputs } => inputs.clone(),
            };
            for s in inputs {
                assert!((s as usize) < i, "slot {i} uses later slot {s}");
            }
        }
    }
}
