//! Grounding query structures against a graph.
//!
//! Training and evaluation both need query *instances*: structures with
//! concrete anchors and relations whose answer sets are non-empty. Following
//! the BetaE/NewLook protocol, instances are sampled **backwards** from a
//! known answer entity — walk edges in reverse to pick anchors, so the
//! grounded query provably answers at least that entity — then validated
//! with the exact engine and rejected if degenerate (empty or blown-up
//! answer sets).

use crate::ast::Query;
use crate::plan::{execute_set, PlanBindings, PlanCache};
use crate::set::EntitySet;
use crate::structures::Structure;
use halk_kg::{EntityId, Graph, RelationId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A structure grounded with concrete anchors and relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundedQuery {
    /// Which template this instance came from.
    pub structure: Structure,
    /// The grounded computation tree.
    pub query: Query,
}

/// Samples grounded queries on one graph.
pub struct Sampler<'g> {
    graph: &'g Graph,
    /// Rejection-sampling budget per instance.
    max_tries: usize,
    /// Reject instances whose answer set exceeds this fraction of the
    /// universe (negation structures are exempt — their answer sets are
    /// legitimately huge, as §IV-B discusses).
    max_answer_frac: f64,
    /// Shapes compile once per structure skeleton; rejection sampling then
    /// only re-binds anchors/relations per candidate.
    plans: PlanCache,
}

impl<'g> Sampler<'g> {
    /// A sampler with the default rejection budget.
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            max_tries: 64,
            max_answer_frac: 0.25,
            plans: PlanCache::new(),
        }
    }

    /// Exact answers through the sampler's plan cache.
    fn cached_answers(&self, query: &Query) -> EntitySet {
        let shape = self.plans.shape_for(query);
        execute_set(&shape, &PlanBindings::of(query), self.graph)
    }

    /// Samples one grounded instance of `structure`, or `None` if the
    /// rejection budget is exhausted (possible on tiny graphs).
    pub fn sample(&self, structure: Structure, rng: &mut impl Rng) -> Option<GroundedQuery> {
        for _ in 0..self.max_tries {
            if let Some(query) = self.try_build(structure, rng) {
                let ans = self.cached_answers(&query);
                let n = self.graph.n_entities();
                let cap = if structure.has_negation() {
                    n - 1
                } else {
                    ((n as f64 * self.max_answer_frac) as usize).max(32)
                };
                if !ans.is_empty() && ans.len() <= cap {
                    return Some(GroundedQuery { structure, query });
                }
            }
        }
        None
    }

    /// Every distinct 1p query of the graph — one per `(head, relation)`
    /// pair with a non-empty answer set. The benchmark protocol trains the
    /// projection operator on *all* training triples, not a sample; anything
    /// less cripples generalization to unseen pairs.
    pub fn all_p1(&self) -> Vec<GroundedQuery> {
        let mut seen = std::collections::HashSet::new();
        self.graph
            .triples()
            .iter()
            .filter(|t| seen.insert((t.h, t.r)))
            .map(|t| GroundedQuery {
                structure: Structure::P1,
                query: Query::atom(t.h, t.r),
            })
            .collect()
    }

    /// Samples up to `n` instances (best effort; duplicates are removed).
    pub fn sample_many(
        &self,
        structure: Structure,
        n: usize,
        rng: &mut impl Rng,
    ) -> Vec<GroundedQuery> {
        let mut out: Vec<GroundedQuery> = Vec::with_capacity(n);
        let mut failures = 0usize;
        while out.len() < n && failures < self.max_tries {
            match self.sample(structure, rng) {
                Some(q) if !out.contains(&q) => out.push(q),
                _ => failures += 1,
            }
        }
        out
    }

    // ------------------------------------------------------------ primitives

    /// A uniformly random triple.
    fn random_triple(&self, rng: &mut impl Rng) -> Option<halk_kg::Triple> {
        self.graph.triples().choose(rng).copied()
    }

    /// A random `(head, relation)` with `head −rel→ v`.
    fn edge_into(&self, v: EntityId, rng: &mut impl Rng) -> Option<(EntityId, RelationId)> {
        let rels: Vec<RelationId> = self
            .graph
            .relations()
            .filter(|&r| !self.graph.inverse_neighbors(v, r).is_empty())
            .collect();
        let r = *rels.choose(rng)?;
        let h = *self.graph.inverse_neighbors(v, r).choose(rng)?;
        Some((EntityId(h), r))
    }

    /// A backward chain of length `len` ending at `v`: returns the grounded
    /// projection chain `P[r_len](…P[r_1](anchor)…)` with `v` in its answers.
    fn backward_chain(&self, v: EntityId, len: usize, rng: &mut impl Rng) -> Option<Query> {
        let mut cur = v;
        let mut rels = Vec::with_capacity(len);
        for _ in 0..len {
            let (h, r) = self.edge_into(cur, rng)?;
            rels.push(r);
            cur = h;
        }
        rels.reverse(); // innermost (anchor-adjacent) relation first
        let mut q = Query::Anchor(cur);
        for r in rels {
            q = q.project(r);
        }
        Some(q)
    }

    /// `k` distinct single-hop branches into `v` (for intersections).
    fn distinct_edges_into(&self, v: EntityId, k: usize, rng: &mut impl Rng) -> Option<Vec<Query>> {
        let mut seen: Vec<(EntityId, RelationId)> = Vec::with_capacity(k);
        for _ in 0..self.max_tries {
            if seen.len() == k {
                break;
            }
            let e = self.edge_into(v, rng)?;
            if !seen.contains(&e) {
                seen.push(e);
            }
        }
        if seen.len() < k {
            return None;
        }
        Some(seen.into_iter().map(|(h, r)| Query::atom(h, r)).collect())
    }

    /// A random 1p atom guaranteed non-empty, avoiding `v` in its answers
    /// when `exclude` is set (for difference subtrahends and negations).
    fn random_atom(&self, exclude: Option<EntityId>, rng: &mut impl Rng) -> Option<Query> {
        for _ in 0..self.max_tries {
            let t = self.random_triple(rng)?;
            if let Some(v) = exclude {
                if self.graph.has(t.h, t.r, v) {
                    continue;
                }
            }
            return Some(Query::atom(t.h, t.r));
        }
        None
    }

    // -------------------------------------------------------- per structure

    fn try_build(&self, structure: Structure, rng: &mut impl Rng) -> Option<Query> {
        use Structure::*;
        let t = self.random_triple(rng)?;
        let v = t.t; // the guaranteed answer for backward-grounded parts
        match structure {
            P1 => Some(Query::atom(t.h, t.r)),
            P2 => self.backward_chain(v, 2, rng),
            P3 => self.backward_chain(v, 3, rng),
            I2 => Some(Query::Intersection(self.distinct_edges_into(v, 2, rng)?)),
            I3 => Some(Query::Intersection(self.distinct_edges_into(v, 3, rng)?)),
            Ip => {
                // P[r](I(1p, 1p)) with the intersection grounded at t.h.
                let branches = self.distinct_edges_into(t.h, 2, rng)?;
                Some(Query::Intersection(branches).project(t.r))
            }
            Pi => {
                let chain = self.backward_chain(v, 2, rng)?;
                let (h2, r2) = self.edge_into(v, rng)?;
                Some(Query::Intersection(vec![chain, Query::atom(h2, r2)]))
            }
            U2 => {
                let (h1, r1) = self.edge_into(v, rng)?;
                let other = self.random_atom(None, rng)?;
                Some(Query::Union(vec![Query::atom(h1, r1), other]))
            }
            Up => {
                let (h1, r1) = self.edge_into(t.h, rng)?;
                let other = self.random_atom(None, rng)?;
                Some(Query::Union(vec![Query::atom(h1, r1), other]).project(t.r))
            }
            D2 => {
                let (h1, r1) = self.edge_into(v, rng)?;
                let sub = self.random_atom(Some(v), rng)?;
                Some(Query::Difference(vec![Query::atom(h1, r1), sub]))
            }
            D3 => {
                let (h1, r1) = self.edge_into(v, rng)?;
                let s1 = self.random_atom(Some(v), rng)?;
                let s2 = self.random_atom(Some(v), rng)?;
                Some(Query::Difference(vec![Query::atom(h1, r1), s1, s2]))
            }
            Dp => {
                let (h1, r1) = self.edge_into(t.h, rng)?;
                let sub = self.random_atom(Some(t.h), rng)?;
                Some(Query::Difference(vec![Query::atom(h1, r1), sub]).project(t.r))
            }
            In2 => {
                let (h1, r1) = self.edge_into(v, rng)?;
                let neg = self.random_atom(Some(v), rng)?;
                Some(Query::Intersection(vec![Query::atom(h1, r1), neg.negate()]))
            }
            In3 => {
                let branches = self.distinct_edges_into(v, 2, rng)?;
                let neg = self.random_atom(Some(v), rng)?;
                let mut parts = branches;
                parts.push(neg.negate());
                Some(Query::Intersection(parts))
            }
            Pin => {
                let chain = self.backward_chain(v, 2, rng)?;
                let neg = self.random_atom(Some(v), rng)?;
                Some(Query::Intersection(vec![chain, neg.negate()]))
            }
            Pni => {
                // I(N(2p), 1p): v answers the 1p branch; the negated 2p
                // chain is sampled elsewhere and must miss v.
                let (h1, r1) = self.edge_into(v, rng)?;
                for _ in 0..self.max_tries {
                    let other = self.random_triple(rng)?;
                    if let Some(chain) = self.backward_chain(other.t, 2, rng) {
                        let chain_answers = self.cached_answers(&chain);
                        if !chain_answers.contains(v) {
                            return Some(Query::Intersection(vec![
                                chain.negate(),
                                Query::atom(h1, r1),
                            ]));
                        }
                    }
                }
                None
            }
            Pip => {
                // P[r](I(2p, 1p)) grounded at t.h.
                let chain = self.backward_chain(t.h, 2, rng)?;
                let (h2, r2) = self.edge_into(t.h, rng)?;
                Some(Query::Intersection(vec![chain, Query::atom(h2, r2)]).project(t.r))
            }
            P3ip => {
                let chain = self.backward_chain(t.h, 2, rng)?;
                let branches = self.distinct_edges_into(t.h, 2, rng)?;
                let mut parts = vec![chain];
                parts.extend(branches);
                Some(Query::Intersection(parts).project(t.r))
            }
            Ipp2 | Ippu2 | Ippd2 | Ipp3 | Ippu3 | Ippd3 => {
                // Core: P[rb](P[ra](I(…))) — intersection at u, then two hops
                // u −ra→ m −rb→ v.
                let m = t.h; // t: m −rb→ v
                let (u, ra) = self.edge_into(m, rng)?;
                let k = match structure {
                    Ipp2 | Ippu2 | Ippd2 => 2,
                    _ => 3,
                };
                let branches = self.distinct_edges_into(u, k, rng)?;
                let core = Query::Intersection(branches).project(ra).project(t.r);
                match structure {
                    Ipp2 | Ipp3 => Some(core),
                    Ippu2 | Ippu3 => {
                        let other = self.random_atom(None, rng)?;
                        Some(Query::Union(vec![core, other]))
                    }
                    Ippd2 | Ippd3 => {
                        let sub = self.random_atom(Some(v), rng)?;
                        Some(Query::Difference(vec![core, sub]))
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Random negative entities for training: uniformly sampled entities not
    /// in `positives`.
    pub fn negatives(
        &self,
        positives: &crate::set::EntitySet,
        m: usize,
        rng: &mut impl Rng,
    ) -> Vec<EntityId> {
        let n = self.graph.n_entities();
        let mut out = Vec::with_capacity(m);
        let mut guard = 0;
        while out.len() < m && guard < m * 50 {
            guard += 1;
            let e = EntityId(rng.gen_range(0..n as u32));
            if !positives.contains(e) {
                out.push(e);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::answers;
    use halk_kg::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> Graph {
        generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn every_structure_is_sampleable() {
        let g = graph();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for s in Structure::all() {
            let q = sampler.sample(s, &mut rng);
            assert!(q.is_some(), "structure {s} could not be grounded");
        }
    }

    #[test]
    fn samples_have_nonempty_answers() {
        let g = graph();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        for s in Structure::all() {
            for q in sampler.sample_many(s, 5, &mut rng) {
                let ans = answers(&q.query, &g);
                assert!(
                    !ans.is_empty(),
                    "{s}: empty answers for {}",
                    q.query.render()
                );
            }
        }
    }

    #[test]
    fn sampled_query_matches_structure_shape() {
        let g = graph();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        for s in Structure::all() {
            let q = sampler.sample(s, &mut rng).expect("groundable");
            assert_eq!(q.structure, s);
            assert_eq!(q.query.has_negation(), s.has_negation(), "{s}");
            assert_eq!(q.query.has_difference(), s.has_difference(), "{s}");
            assert_eq!(q.query.has_union(), s.has_union(), "{s}");
            assert_eq!(q.query.anchors().len(), s.n_anchors(), "{s}: anchors");
        }
    }

    #[test]
    fn chain_depths_match_names() {
        let g = graph();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let d1 = sampler
            .sample(Structure::P1, &mut rng)
            .unwrap()
            .query
            .depth();
        let d2 = sampler
            .sample(Structure::P2, &mut rng)
            .unwrap()
            .query
            .depth();
        let d3 = sampler
            .sample(Structure::P3, &mut rng)
            .unwrap()
            .query
            .depth();
        assert_eq!((d1, d2, d3), (1, 2, 3));
    }

    #[test]
    fn sample_many_dedups() {
        let g = graph();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(6);
        let qs = sampler.sample_many(Structure::P1, 20, &mut rng);
        for (i, a) in qs.iter().enumerate() {
            for b in &qs[i + 1..] {
                assert_ne!(a, b, "duplicate sampled query");
            }
        }
        assert!(qs.len() >= 10);
    }

    #[test]
    fn negatives_avoid_positives() {
        let g = graph();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let q = sampler.sample(Structure::P2, &mut rng).unwrap();
        let pos = answers(&q.query, &g);
        let negs = sampler.negatives(&pos, 32, &mut rng);
        assert_eq!(negs.len(), 32);
        for e in negs {
            assert!(!pos.contains(e));
        }
    }

    #[test]
    fn negation_structures_keep_answer_caps_loose() {
        let g = graph();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(8);
        // 2in answer sets may be large but never the full universe.
        for q in sampler.sample_many(Structure::In2, 5, &mut rng) {
            let ans = answers(&q.query, &g);
            assert!(ans.len() < g.n_entities());
        }
    }
}
