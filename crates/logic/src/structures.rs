//! The named query structures of the paper's workload.
//!
//! §IV-A: 16 basic structures — 12 without negation (1p 2p 3p 2i 3i ip pi 2u
//! up 2d 3d dp, from NewLook) and 4 with negation (2in 3in pin pni, from
//! ConE/MLPMix) — plus the 6 large structures of the pruning experiment
//! (§IV-D) and the size-graded structures of Table VI (pip, p3ip). Complex
//! structures (ip, pi, 2u, up, dp) are evaluation-only: they test
//! generalization beyond trained shapes.

use serde::{Deserialize, Serialize};

/// A query structure (shape) from the paper's workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are the paper's own opaque structure names
pub enum Structure {
    P1,
    P2,
    P3,
    I2,
    I3,
    Ip,
    Pi,
    U2,
    Up,
    D2,
    D3,
    Dp,
    In2,
    In3,
    Pin,
    Pni,
    Pip,
    P3ip,
    Ipp2,
    Ippu2,
    Ippd2,
    Ipp3,
    Ippu3,
    Ippd3,
}

impl Structure {
    /// The paper's name for the structure (table row/column label).
    pub fn name(self) -> &'static str {
        use Structure::*;
        match self {
            P1 => "1p",
            P2 => "2p",
            P3 => "3p",
            I2 => "2i",
            I3 => "3i",
            Ip => "ip",
            Pi => "pi",
            U2 => "2u",
            Up => "up",
            D2 => "2d",
            D3 => "3d",
            Dp => "dp",
            In2 => "2in",
            In3 => "3in",
            Pin => "pin",
            Pni => "pni",
            Pip => "pip",
            P3ip => "p3ip",
            Ipp2 => "2ipp",
            Ippu2 => "2ippu",
            Ippd2 => "2ippd",
            Ipp3 => "3ipp",
            Ippu3 => "3ippu",
            Ippd3 => "3ippd",
        }
    }

    /// Looks a structure up by its paper name.
    pub fn by_name(name: &str) -> Option<Structure> {
        Self::all().into_iter().find(|s| s.name() == name)
    }

    /// Every structure this crate knows.
    pub fn all() -> Vec<Structure> {
        use Structure::*;
        vec![
            P1, P2, P3, I2, I3, Ip, Pi, U2, Up, D2, D3, Dp, In2, In3, Pin, Pni, Pip, P3ip, Ipp2,
            Ippu2, Ippd2, Ipp3, Ippu3, Ippd3,
        ]
    }

    /// The 12 non-negation structures of Tables I–II, in table column order.
    pub fn table12() -> Vec<Structure> {
        use Structure::*;
        vec![P1, P2, P3, I2, I3, Ip, Pi, U2, Up, D2, D3, Dp]
    }

    /// The 4 negation structures of Tables III–IV, in table column order.
    pub fn table34() -> Vec<Structure> {
        use Structure::*;
        vec![In2, In3, Pni, Pin]
    }

    /// Structures seen during training (§IV-A: ip, pi, 2u, up, dp are held
    /// out for generalization testing).
    pub fn training() -> Vec<Structure> {
        use Structure::*;
        vec![P1, P2, P3, I2, I3, D2, D3, In2, In3, Pin, Pni]
    }

    /// The 6 large structures of the pruning experiment (§IV-D / Fig. 6a).
    pub fn pruning6() -> Vec<Structure> {
        use Structure::*;
        vec![Ipp2, Ippu2, Ippd2, Ipp3, Ippu3, Ippd3]
    }

    /// Table VI's (query size, example structure) ladder.
    pub fn scalability_ladder() -> Vec<(usize, Structure)> {
        use Structure::*;
        vec![(1, P1), (2, P2), (3, Pi), (4, Pip), (5, P3ip)]
    }

    /// Whether the structure is only seen at evaluation time.
    pub fn eval_only(self) -> bool {
        !Self::training().contains(&self)
    }

    /// Whether the structure contains a negation operator.
    pub fn has_negation(self) -> bool {
        use Structure::*;
        matches!(self, In2 | In3 | Pin | Pni)
    }

    /// Whether the structure contains a difference operator.
    pub fn has_difference(self) -> bool {
        use Structure::*;
        matches!(self, D2 | D3 | Dp | Ippd2 | Ippd3)
    }

    /// Whether the structure contains a union operator.
    pub fn has_union(self) -> bool {
        use Structure::*;
        matches!(self, U2 | Up | Ippu2 | Ippu3)
    }

    /// Number of anchor entities in the template.
    pub fn n_anchors(self) -> usize {
        use Structure::*;
        match self {
            P1 | P2 | P3 => 1,
            I2 | Ip | U2 | Up | D2 | Dp | In2 | Pin | Pni | Pi | Pip | Ipp2 => 2,
            I3 | D3 | In3 | P3ip | Ippu2 | Ippd2 | Ipp3 => 3,
            Ippu3 | Ippd3 => 4,
        }
    }
}

impl std::fmt::Display for Structure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for s in Structure::all() {
            assert_eq!(Structure::by_name(s.name()), Some(s));
        }
        assert_eq!(Structure::by_name("nope"), None);
    }

    #[test]
    fn table_groups_have_paper_cardinalities() {
        assert_eq!(Structure::table12().len(), 12);
        assert_eq!(Structure::table34().len(), 4);
        assert_eq!(Structure::pruning6().len(), 6);
        assert_eq!(Structure::scalability_ladder().len(), 5);
    }

    #[test]
    fn eval_only_matches_paper_list() {
        let held_out: Vec<&str> = Structure::all()
            .into_iter()
            .filter(|s| s.eval_only())
            .map(|s| s.name())
            .collect();
        for name in ["ip", "pi", "2u", "up", "dp"] {
            assert!(held_out.contains(&name), "{name} should be eval-only");
        }
        for name in [
            "1p", "2p", "3p", "2i", "3i", "2d", "3d", "2in", "3in", "pin", "pni",
        ] {
            assert!(!held_out.contains(&name), "{name} should be trained");
        }
    }

    #[test]
    fn feature_flags_consistent() {
        assert!(Structure::In2.has_negation());
        assert!(!Structure::In2.has_difference());
        assert!(Structure::Dp.has_difference());
        assert!(Structure::Up.has_union());
        assert!(Structure::Ippd3.has_difference());
        assert!(Structure::Ippu2.has_union());
        assert!(!Structure::P3.has_negation());
    }

    #[test]
    fn scalability_sizes_ascend() {
        let ladder = Structure::scalability_ladder();
        for w in ladder.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(ladder[0], (1, Structure::P1));
    }
}
