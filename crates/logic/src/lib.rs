//! First-order-logic query machinery for the HaLk reproduction.
//!
//! Contains the query [`ast::Query`] (computation trees over the five
//! operators of §II-A), the named workload [`structures::Structure`]s of
//! §IV-A, the DNF rewrite of §III-F, the compile-once [`plan`] IR every
//! engine executes, the exact [`answers()`] oracle, the
//! backward-walk [`sampler::Sampler`] that grounds structures into query
//! instances, and the filtered-ranking [`metrics`] of the evaluation
//! protocol. Everything here is deterministic and learning-free; the model
//! crates consume it for labels and scoring.

pub mod answers;
pub mod ast;
pub mod dnf;
pub mod dot;
pub mod metrics;
pub mod plan;
pub mod sampler;
pub mod set;
pub mod structures;

pub use answers::{answer_split, answers, AnswerSplit};
pub use ast::Query;
pub use dnf::to_dnf;
pub use dot::to_dot;
pub use metrics::{filtered_ranks, MetricsAccumulator, RankMetrics};
pub use plan::{execute_set, split_set, PlanBindings, PlanCache, PlanMasks, PlanOp, PlanShape};
pub use sampler::{GroundedQuery, Sampler};
pub use set::EntitySet;
pub use structures::Structure;
