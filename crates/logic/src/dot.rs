//! Graphviz DOT export for computation graphs — the Fig. 1b artifact.
//!
//! `dot -Tsvg` on the output renders the query exactly as the paper draws
//! it: anchor entities as sources, one node per logical operator, and the
//! target variable as the sink.

use crate::ast::Query;
use std::fmt::Write as _;

/// Renders a query's computation graph in Graphviz DOT syntax.
pub fn to_dot(query: &Query) -> String {
    let mut out = String::from("digraph computation {\n  rankdir=LR;\n");
    let mut counter = 0usize;
    let root = emit(query, &mut out, &mut counter);
    let _ = writeln!(out, "  target [label=\"u?\", shape=doublecircle];");
    let _ = writeln!(out, "  n{root} -> target;");
    out.push_str("}\n");
    out
}

/// Emits nodes for a sub-query; returns the sub-query's output node id.
fn emit(q: &Query, out: &mut String, counter: &mut usize) -> usize {
    let id = *counter;
    *counter += 1;
    match q {
        Query::Anchor(e) => {
            let _ = writeln!(out, "  n{id} [label=\"{e}\", shape=box];");
        }
        Query::Projection { rel, input } => {
            let child = emit(input, out, counter);
            let _ = writeln!(out, "  n{id} [label=\"P\", shape=circle];");
            let _ = writeln!(out, "  n{child} -> n{id} [label=\"{rel}\"];");
        }
        Query::Intersection(qs) => {
            let _ = writeln!(out, "  n{id} [label=\"∩\", shape=circle];");
            for sub in qs {
                let child = emit(sub, out, counter);
                let _ = writeln!(out, "  n{child} -> n{id};");
            }
        }
        Query::Union(qs) => {
            let _ = writeln!(out, "  n{id} [label=\"∪\", shape=circle];");
            for sub in qs {
                let child = emit(sub, out, counter);
                let _ = writeln!(out, "  n{child} -> n{id};");
            }
        }
        Query::Difference(qs) => {
            let _ = writeln!(out, "  n{id} [label=\"−\", shape=circle];");
            for (i, sub) in qs.iter().enumerate() {
                let child = emit(sub, out, counter);
                let style = if i == 0 { "" } else { " [style=dashed]" };
                let _ = writeln!(out, "  n{child} -> n{id}{style};");
            }
        }
        Query::Negation(inner) => {
            let child = emit(inner, out, counter);
            let _ = writeln!(out, "  n{id} [label=\"¬\", shape=circle];");
            let _ = writeln!(out, "  n{child} -> n{id};");
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{EntityId, RelationId};

    fn fig1_query() -> Query {
        Query::Intersection(vec![
            Query::atom(EntityId(1), RelationId(0)),
            Query::atom(EntityId(2), RelationId(1)),
        ])
        .project(RelationId(2))
    }

    #[test]
    fn dot_has_all_structural_pieces() {
        let dot = to_dot(&fig1_query());
        assert!(dot.starts_with("digraph computation"));
        assert!(dot.contains("label=\"e1\""));
        assert!(dot.contains("label=\"e2\""));
        assert!(dot.contains("label=\"∩\""));
        assert!(dot.contains("label=\"P\""));
        assert!(dot.contains("label=\"r2\""));
        assert!(dot.contains("-> target"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn difference_subtrahends_are_dashed() {
        let q = Query::Difference(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(1), RelationId(0)),
        ]);
        let dot = to_dot(&q);
        assert_eq!(dot.matches("style=dashed").count(), 1);
        assert!(dot.contains("label=\"−\""));
    }

    #[test]
    fn node_ids_are_unique() {
        let dot = to_dot(&fig1_query());
        // Each node declared once.
        for i in 0..5 {
            let decl = format!("  n{i} [");
            assert_eq!(dot.matches(decl.as_str()).count(), 1, "node {i}");
        }
    }

    #[test]
    fn negation_and_union_render() {
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)).negate(),
            Query::atom(EntityId(1), RelationId(1)),
        ]);
        let dot = to_dot(&q);
        assert!(dot.contains("label=\"¬\"") && dot.contains("label=\"∪\""));
    }
}
