//! Disjunctive-normal-form rewriting (§III-F).
//!
//! HaLk gives the union operator an *exact*, non-parametric treatment: every
//! union is pushed to the top of the computation graph, the query becomes a
//! disjunction of `N = Π |P_u|` conjunctive branches, each branch is
//! answered independently, and the final answer set is the union. This
//! module performs that rewrite; the model crates embed each branch
//! separately and score entities by the minimum branch distance.

use crate::ast::Query;

/// Rewrites a query into union-free conjunctive branches whose disjunction
/// is equivalent to the input.
///
/// Unions may appear anywhere the paper's workload puts them: under
/// projections, as difference minuends, or at the root. A union under a
/// *negation* or as a difference *subtrahend* distributes by De Morgan into
/// the conjunctive branch itself (`a − (b ∪ c) = a − b − c`), so it never
/// multiplies branches.
pub fn to_dnf(query: &Query) -> Vec<Query> {
    match query {
        Query::Anchor(_) => vec![query.clone()],
        Query::Projection { rel, input } => {
            to_dnf(input).into_iter().map(|b| b.project(*rel)).collect()
        }
        Query::Union(qs) => qs.iter().flat_map(to_dnf).collect(),
        Query::Intersection(qs) => {
            let branch_sets: Vec<Vec<Query>> = qs.iter().map(to_dnf).collect();
            cartesian(&branch_sets)
                .into_iter()
                .map(Query::Intersection)
                .collect()
        }
        Query::Difference(qs) => {
            let minuend = to_dnf(&qs[0]);
            // a − (b ∪ c) = (a − b) − c: flatten every subtrahend branch into
            // the subtrahend list.
            let subtrahends: Vec<Query> = qs[1..].iter().flat_map(to_dnf).collect();
            minuend
                .into_iter()
                .map(|m| {
                    let mut parts = vec![m];
                    parts.extend(subtrahends.iter().cloned());
                    Query::Difference(parts)
                })
                .collect()
        }
        Query::Negation(inner) => {
            // ¬(b ∪ c) = ¬b ∧ ¬c.
            let inner_branches = to_dnf(inner);
            if inner_branches.len() == 1 {
                vec![Query::Negation(Box::new(
                    inner_branches.into_iter().next().expect("one branch"),
                ))]
            } else {
                vec![Query::Intersection(
                    inner_branches
                        .into_iter()
                        .map(|b| Query::Negation(Box::new(b)))
                        .collect(),
                )]
            }
        }
    }
}

fn cartesian(sets: &[Vec<Query>]) -> Vec<Vec<Query>> {
    let mut acc: Vec<Vec<Query>> = vec![Vec::new()];
    for set in sets {
        let mut next = Vec::with_capacity(acc.len() * set.len());
        for prefix in &acc {
            for item in set {
                let mut row = prefix.clone();
                row.push(item.clone());
                next.push(row);
            }
        }
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::answers;
    use crate::set::EntitySet;
    use halk_kg::{EntityId, Graph, RelationId, Triple};

    fn toy() -> Graph {
        Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(2, 1, 4),
                Triple::new(5, 0, 2),
                Triple::new(3, 0, 5),
            ],
        )
    }

    fn dnf_equivalent(q: &Query, g: &Graph) {
        let direct = answers(q, g);
        let mut via_dnf = EntitySet::empty(g.n_entities());
        for b in to_dnf(q) {
            assert!(!b.has_union(), "branch still has a union: {}", b.render());
            via_dnf.union_with(&answers(&b, g));
        }
        assert_eq!(direct, via_dnf, "DNF changed semantics of {}", q.render());
    }

    #[test]
    fn union_free_query_is_single_branch() {
        let q = Query::atom(EntityId(0), RelationId(0)).project(RelationId(1));
        assert_eq!(to_dnf(&q).len(), 1);
        dnf_equivalent(&q, &toy());
    }

    #[test]
    fn root_union_splits() {
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        assert_eq!(to_dnf(&q).len(), 2);
        dnf_equivalent(&q, &toy());
    }

    #[test]
    fn union_under_projection_lifts() {
        // up structure: P(U(b1, b2)).
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ])
        .project(RelationId(1));
        let branches = to_dnf(&q);
        assert_eq!(branches.len(), 2);
        for b in &branches {
            assert!(matches!(b, Query::Projection { .. }));
        }
        dnf_equivalent(&q, &toy());
    }

    #[test]
    fn intersection_multiplies_branches() {
        let u1 = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        let u2 = Query::Union(vec![
            Query::atom(EntityId(1), RelationId(1)),
            Query::atom(EntityId(2), RelationId(1)),
        ]);
        let q = Query::Intersection(vec![u1, u2]);
        assert_eq!(to_dnf(&q).len(), 4);
        dnf_equivalent(&q, &toy());
    }

    #[test]
    fn difference_subtrahend_union_flattens() {
        // a − (b ∪ c) becomes a single branch a − b − c.
        let q = Query::Difference(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::Union(vec![
                Query::atom(EntityId(5), RelationId(0)),
                Query::atom(EntityId(1), RelationId(1)),
            ]),
        ]);
        assert_eq!(to_dnf(&q).len(), 1);
        dnf_equivalent(&q, &toy());
    }

    #[test]
    fn negated_union_demorgans() {
        let q = Query::Negation(Box::new(Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ])));
        let branches = to_dnf(&q);
        assert_eq!(branches.len(), 1);
        dnf_equivalent(&q, &toy());
    }

    #[test]
    fn nested_mixed_query_preserves_semantics() {
        let q = Query::Difference(vec![
            Query::Union(vec![
                Query::atom(EntityId(0), RelationId(0)),
                Query::atom(EntityId(3), RelationId(0)),
            ])
            .project(RelationId(1)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        dnf_equivalent(&q, &toy());
    }
}
