//! Dense entity sets over a fixed universe.
//!
//! The exact answer engine manipulates entity sets heavily (unions for
//! projection, intersections, complements for negation). With benchmark
//! universes of a few thousand entities, a fixed-width bitset is both the
//! fastest and the simplest representation, and — crucially for the paper —
//! it can represent the *universal set*, which the negation operator needs
//! and which box-embedding methods cannot define (§I).

use halk_kg::EntityId;

/// A set of entities over a universe `0..n`, stored as a bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntitySet {
    n: usize,
    words: Vec<u64>,
}

impl EntitySet {
    /// The empty set over a universe of `n` entities.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The universal set over `n` entities.
    pub fn full(n: usize) -> Self {
        let mut s = Self {
            n,
            words: vec![u64::MAX; n.div_ceil(64)],
        };
        s.trim();
        s
    }

    /// A singleton set.
    pub fn singleton(n: usize, e: EntityId) -> Self {
        let mut s = Self::empty(n);
        s.insert(e);
        s
    }

    /// Builds a set from an iterator of entities.
    pub fn from_iter(n: usize, it: impl IntoIterator<Item = EntityId>) -> Self {
        let mut s = Self::empty(n);
        for e in it {
            s.insert(e);
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts an entity.
    ///
    /// # Panics
    /// If the entity is outside the universe (debug builds).
    #[inline]
    pub fn insert(&mut self, e: EntityId) {
        debug_assert!(e.index() < self.n, "entity {e} outside universe {}", self.n);
        self.words[e.index() / 64] |= 1 << (e.index() % 64);
    }

    /// Removes an entity.
    #[inline]
    pub fn remove(&mut self, e: EntityId) {
        if e.index() < self.n {
            self.words[e.index() / 64] &= !(1 << (e.index() % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, e: EntityId) -> bool {
        e.index() < self.n && self.words[e.index() / 64] & (1 << (e.index() % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &EntitySet) {
        self.assert_same(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &EntitySet) {
        self.assert_same(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &EntitySet) {
        self.assert_same(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The complement with respect to the universe — the closed-form
    /// "universal set minus this" the negation operator denotes.
    pub fn complement(&self) -> EntitySet {
        let mut out = Self {
            n: self.n,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.trim();
        out
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(EntityId((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Members as a sorted vector.
    pub fn to_vec(&self) -> Vec<EntityId> {
        self.iter().collect()
    }

    /// Jaccard similarity with another set (1.0 for two empty sets).
    pub fn jaccard(&self, other: &EntitySet) -> f64 {
        self.assert_same(other);
        let mut inter = 0usize;
        let mut uni = 0usize;
        for (&a, &b) in self.words.iter().zip(&other.words) {
            inter += (a & b).count_ones() as usize;
            uni += (a | b).count_ones() as usize;
        }
        if uni == 0 {
            1.0
        } else {
            inter as f64 / uni as f64
        }
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.n;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    fn assert_same(&self, other: &EntitySet) {
        assert_eq!(self.n, other.n, "entity sets over different universes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize, ids: &[u32]) -> EntitySet {
        EntitySet::from_iter(n, ids.iter().map(|&i| EntityId(i)))
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = EntitySet::empty(100);
        assert!(s.is_empty());
        s.insert(EntityId(7));
        s.insert(EntityId(64));
        assert!(s.contains(EntityId(7)) && s.contains(EntityId(64)));
        assert_eq!(s.len(), 2);
        s.remove(EntityId(7));
        assert!(!s.contains(EntityId(7)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_set_has_exactly_universe() {
        let s = EntitySet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(EntityId(69)));
        assert!(!s.contains(EntityId(70)));
    }

    #[test]
    fn set_algebra() {
        let a = set(10, &[1, 2, 3]);
        let b = set(10, &[2, 3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(
            u.to_vec(),
            vec![EntityId(1), EntityId(2), EntityId(3), EntityId(4)]
        );
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![EntityId(2), EntityId(3)]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![EntityId(1)]);
    }

    #[test]
    fn complement_respects_universe() {
        let a = set(66, &[0, 65]);
        let c = a.complement();
        assert_eq!(c.len(), 64);
        assert!(!c.contains(EntityId(0)) && !c.contains(EntityId(65)));
        assert!(c.contains(EntityId(64)));
        // Double complement is identity.
        assert_eq!(c.complement(), a);
    }

    #[test]
    fn iter_ascending() {
        let s = set(200, &[199, 0, 63, 64, 128]);
        let v: Vec<u32> = s.iter().map(|e| e.0).collect();
        assert_eq!(v, vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn jaccard_values() {
        let a = set(10, &[1, 2]);
        let b = set(10, &[2, 3]);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(EntitySet::empty(10).jaccard(&EntitySet::empty(10)), 1.0);
        assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn singleton() {
        let s = EntitySet::singleton(10, EntityId(5));
        assert_eq!(s.len(), 1);
        assert!(s.contains(EntityId(5)));
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn mismatched_universes_panic() {
        let mut a = EntitySet::empty(10);
        let b = EntitySet::empty(20);
        a.union_with(&b);
    }
}
