//! Ranking metrics: MRR and Hits@K under the filtered protocol.
//!
//! §IV-A evaluates with Mean Reciprocal Rank and Hits@K, averaged per query
//! structure. Following the BetaE protocol the rank of each *hard* answer is
//! computed against all entities with every other answer (easy or hard)
//! filtered out, so a model is not punished for ranking one correct answer
//! above another.

use halk_kg::EntityId;

/// Filtered rank of each hard answer given per-entity scores
/// (**lower score = better**, e.g. a distance).
///
/// For hard answer `a`: `rank(a) = 1 + |{e ∉ answers : score(e) < score(a)}|`
/// where `answers = hard ∪ easy`. Ties are resolved optimistically, matching
/// the common open-source implementations of the protocol.
pub fn filtered_ranks(scores: &[f32], hard: &[EntityId], easy: &[EntityId]) -> Vec<usize> {
    let mut is_answer = vec![false; scores.len()];
    for e in hard.iter().chain(easy) {
        is_answer[e.index()] = true;
    }
    hard.iter()
        .map(|a| {
            let sa = scores[a.index()];
            if !sa.is_finite() {
                // A non-finite score can never be "close": worst rank, so a
                // diverged model cannot accidentally game the metric.
                return scores.len();
            }
            let better = scores
                .iter()
                .enumerate()
                .filter(|&(i, &s)| !is_answer[i] && s < sa)
                .count();
            1 + better
        })
        .collect()
}

/// Aggregated ranking metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankMetrics {
    /// Mean reciprocal rank in `[0, 1]`.
    pub mrr: f64,
    /// Fraction of ranks ≤ 1.
    pub hits1: f64,
    /// Fraction of ranks ≤ 3.
    pub hits3: f64,
    /// Fraction of ranks ≤ 10.
    pub hits10: f64,
    /// Number of ranks aggregated.
    pub n: usize,
}

/// Streaming accumulator for metrics over many queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsAccumulator {
    sum_rr: f64,
    sum_h1: f64,
    sum_h3: f64,
    sum_h10: f64,
    n: usize,
}

impl MetricsAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one rank observation.
    pub fn push_rank(&mut self, rank: usize) {
        debug_assert!(rank >= 1);
        self.sum_rr += 1.0 / rank as f64;
        self.sum_h1 += (rank <= 1) as u8 as f64;
        self.sum_h3 += (rank <= 3) as u8 as f64;
        self.sum_h10 += (rank <= 10) as u8 as f64;
        self.n += 1;
    }

    /// Adds all ranks of one query.
    pub fn push_ranks(&mut self, ranks: &[usize]) {
        for &r in ranks {
            self.push_rank(r);
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MetricsAccumulator) {
        self.sum_rr += other.sum_rr;
        self.sum_h1 += other.sum_h1;
        self.sum_h3 += other.sum_h3;
        self.sum_h10 += other.sum_h10;
        self.n += other.n;
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Final averaged metrics (zeros if nothing was pushed).
    pub fn finish(&self) -> RankMetrics {
        let n = self.n.max(1) as f64;
        RankMetrics {
            mrr: self.sum_rr / n,
            hits1: self.sum_h1 / n,
            hits3: self.sum_h3 / n,
            hits10: self.sum_h10 / n,
            n: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn rank_one_for_best_score() {
        // Entity 2 is the single hard answer with the lowest score.
        let scores = vec![0.9, 0.8, 0.1, 0.5];
        let ranks = filtered_ranks(&scores, &[e(2)], &[]);
        assert_eq!(ranks, vec![1]);
    }

    #[test]
    fn rank_counts_only_non_answers() {
        // Entity 3 is hard; entity 2 scores better but is an easy answer, so
        // it is filtered and entity 3 still ranks 2 (behind entity 1 only).
        let scores = vec![0.9, 0.2, 0.1, 0.5];
        let ranks = filtered_ranks(&scores, &[e(3)], &[e(2)]);
        assert_eq!(ranks, vec![2]);
    }

    #[test]
    fn multiple_hard_answers_filter_each_other() {
        let scores = vec![0.1, 0.2, 0.3, 0.9];
        let ranks = filtered_ranks(&scores, &[e(0), e(1), e(2)], &[]);
        // Each hard answer only competes with entity 3.
        assert_eq!(ranks, vec![1, 1, 1]);
    }

    #[test]
    fn ties_are_optimistic() {
        let scores = vec![0.5, 0.5, 0.5];
        let ranks = filtered_ranks(&scores, &[e(1)], &[]);
        assert_eq!(ranks, vec![1]);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = MetricsAccumulator::new();
        acc.push_ranks(&[1, 2, 10, 100]);
        let m = acc.finish();
        assert!((m.mrr - (1.0 + 0.5 + 0.1 + 0.01) / 4.0).abs() < 1e-12);
        assert!((m.hits1 - 0.25).abs() < 1e-12);
        assert!((m.hits3 - 0.5).abs() < 1e-12);
        assert!((m.hits10 - 0.75).abs() < 1e-12);
        assert_eq!(m.n, 4);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = MetricsAccumulator::new();
        a.push_ranks(&[1, 5]);
        let mut b = MetricsAccumulator::new();
        b.push_ranks(&[3, 7]);
        a.merge(&b);
        let mut c = MetricsAccumulator::new();
        c.push_ranks(&[1, 5, 3, 7]);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = MetricsAccumulator::new().finish();
        assert_eq!(m.mrr, 0.0);
        assert_eq!(m.n, 0);
    }
}
