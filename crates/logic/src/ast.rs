//! The logical-query AST: computation graphs over the five operators.
//!
//! A query is the computation DAG of §II-A — anchors at the leaves, the
//! target variable at the root, and each internal node one of projection
//! `ℙ`, intersection `𝕀`, difference `𝔻`, negation `ℕ` or union `𝕌`. The
//! tree form is sufficient for every structure in the paper's workload
//! (Fig. 4 of its supplementary); sub-queries are owned, not shared.

use halk_kg::{EntityId, RelationId};
use serde::{Deserialize, Serialize};

/// A first-order-logic query as a computation tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Query {
    /// A grounded anchor entity `ũ ∈ Ũ`.
    Anchor(EntityId),
    /// Relation traversal `ℙ`: all tails reachable from the input set.
    Projection {
        /// Relation to traverse.
        rel: RelationId,
        /// Sub-query producing the input entity set.
        input: Box<Query>,
    },
    /// Conjunction `𝕀` of two or more sub-queries.
    Intersection(Vec<Query>),
    /// Disjunction `𝕌` of two or more sub-queries.
    Union(Vec<Query>),
    /// Set difference `𝔻`: the first sub-query minus all the rest.
    Difference(Vec<Query>),
    /// Complement `ℕ` with respect to the entity universe.
    Negation(Box<Query>),
}

impl Query {
    /// Convenience constructor for a 1p atom `r(a, ?)`.
    pub fn atom(anchor: EntityId, rel: RelationId) -> Query {
        Query::Projection {
            rel,
            input: Box::new(Query::Anchor(anchor)),
        }
    }

    /// Wraps `self` in a projection.
    pub fn project(self, rel: RelationId) -> Query {
        Query::Projection {
            rel,
            input: Box::new(self),
        }
    }

    /// Wraps `self` in a negation.
    pub fn negate(self) -> Query {
        Query::Negation(Box::new(self))
    }

    /// All anchor entities, in left-to-right order.
    pub fn anchors(&self) -> Vec<EntityId> {
        let mut out = Vec::new();
        self.visit(&mut |q| {
            if let Query::Anchor(e) = q {
                out.push(*e);
            }
        });
        out
    }

    /// All relations used, in left-to-right order (with repetition).
    pub fn relations(&self) -> Vec<RelationId> {
        let mut out = Vec::new();
        self.visit(&mut |q| {
            if let Query::Projection { rel, .. } = q {
                out.push(*rel);
            }
        });
        out
    }

    /// Number of operator nodes (anchors excluded).
    pub fn n_ops(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |q| {
            if !matches!(q, Query::Anchor(_)) {
                n += 1;
            }
        });
        n
    }

    /// Longest anchor-to-root path length in operator nodes — the paper's
    /// "query size" axis of Table VI.
    pub fn depth(&self) -> usize {
        match self {
            Query::Anchor(_) => 0,
            Query::Projection { input, .. } => 1 + input.depth(),
            Query::Negation(q) => 1 + q.depth(),
            Query::Intersection(qs) | Query::Union(qs) | Query::Difference(qs) => {
                1 + qs.iter().map(Query::depth).max().unwrap_or(0)
            }
        }
    }

    /// True if any negation operator appears.
    pub fn has_negation(&self) -> bool {
        let mut found = false;
        self.visit(&mut |q| found |= matches!(q, Query::Negation(_)));
        found
    }

    /// True if any difference operator appears.
    pub fn has_difference(&self) -> bool {
        let mut found = false;
        self.visit(&mut |q| found |= matches!(q, Query::Difference(_)));
        found
    }

    /// True if any union operator appears.
    pub fn has_union(&self) -> bool {
        let mut found = false;
        self.visit(&mut |q| found |= matches!(q, Query::Union(_)));
        found
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Query)) {
        f(self);
        match self {
            Query::Anchor(_) => {}
            Query::Projection { input, .. } => input.visit(f),
            Query::Negation(q) => q.visit(f),
            Query::Intersection(qs) | Query::Union(qs) | Query::Difference(qs) => {
                for q in qs {
                    q.visit(f);
                }
            }
        }
    }

    /// A compact human-readable rendering, e.g. `P[r2](I(P[r0](e1), P[r1](e3)))`.
    pub fn render(&self) -> String {
        match self {
            Query::Anchor(e) => e.to_string(),
            Query::Projection { rel, input } => format!("P[{rel}]({})", input.render()),
            Query::Negation(q) => format!("N({})", q.render()),
            Query::Intersection(qs) => {
                format!(
                    "I({})",
                    qs.iter().map(Query::render).collect::<Vec<_>>().join(", ")
                )
            }
            Query::Union(qs) => {
                format!(
                    "U({})",
                    qs.iter().map(Query::render).collect::<Vec<_>>().join(", ")
                )
            }
            Query::Difference(qs) => {
                format!(
                    "D({})",
                    qs.iter().map(Query::render).collect::<Vec<_>>().join(", ")
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        // P[r2]( I( P[r0](e1), P[r1](e3) ) )
        Query::Intersection(vec![
            Query::atom(EntityId(1), RelationId(0)),
            Query::atom(EntityId(3), RelationId(1)),
        ])
        .project(RelationId(2))
    }

    #[test]
    fn anchors_in_order() {
        assert_eq!(sample().anchors(), vec![EntityId(1), EntityId(3)]);
    }

    #[test]
    fn relations_in_order() {
        // Pre-order: outer projection first, then branches.
        assert_eq!(
            sample().relations(),
            vec![RelationId(2), RelationId(0), RelationId(1)]
        );
    }

    #[test]
    fn op_count_and_depth() {
        let q = sample();
        // P, I, P, P = 4 operator nodes.
        assert_eq!(q.n_ops(), 4);
        // anchor -> P -> I -> P = depth 3.
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn feature_flags() {
        let q = sample();
        assert!(!q.has_negation() && !q.has_difference() && !q.has_union());
        let qn = q.clone().negate();
        assert!(qn.has_negation());
        let qd = Query::Difference(vec![q.clone(), qn.clone()]);
        assert!(qd.has_difference() && qd.has_negation());
        let qu = Query::Union(vec![q, qd]);
        assert!(qu.has_union());
    }

    #[test]
    fn render_is_readable() {
        assert_eq!(sample().render(), "P[r2](I(P[r0](e1), P[r1](e3)))");
    }

    #[test]
    fn atom_is_projection_of_anchor() {
        let a = Query::atom(EntityId(0), RelationId(1));
        assert_eq!(a.depth(), 1);
        assert_eq!(a.n_ops(), 1);
        assert_eq!(a.anchors(), vec![EntityId(0)]);
    }
}
