//! The exact answer engine — the oracle every learned method is measured
//! against.
//!
//! Evaluates queries with exact set semantics: projection is the image of
//! the input set under the relation, negation is the complement over the
//! entity universe, difference is `first \ rest`. Ground-truth labels for
//! training, filtered-ranking evaluation and the matching engine's
//! accuracy reference all come from here.
//!
//! Since the plan-IR refactor the public entry points compile the query
//! into a [`crate::plan::PlanShape`] and run the shared slot executor;
//! hot loops that see many instances of one structure should compile once
//! via [`crate::plan::PlanCache`] and call
//! [`crate::plan::execute_set`]/[`crate::plan::split_set`] directly. The
//! original recursive AST walker survives in [`reference`] as the
//! bit-identity oracle for the plan executor.

use crate::ast::Query;
use crate::plan::{execute_set, split_set, PlanBindings, PlanShape};
use crate::set::EntitySet;
use halk_kg::{EntityId, Graph};

/// Exact answer set of `query` on `graph`. Compiles a fresh plan per call;
/// batch callers should cache shapes with [`crate::plan::PlanCache`].
pub fn answers(query: &Query, graph: &Graph) -> EntitySet {
    let shape = PlanShape::compile(query);
    execute_set(&shape, &PlanBindings::of(query), graph)
}

/// The hard/easy answer partition of the BetaE evaluation protocol: `hard`
/// answers hold only on the larger graph (they require generalization);
/// `easy` answers are already entailed by the smaller graph and are filtered
/// out of rankings.
#[derive(Debug, Clone)]
pub struct AnswerSplit {
    /// Answers on the larger graph that are *not* answers on the smaller.
    pub hard: Vec<EntityId>,
    /// Answers already derivable on the smaller graph.
    pub easy: Vec<EntityId>,
}

/// Splits the answers of `query` into easy (on `small`) and hard (only on
/// `large`) per the evaluation protocol of §IV-A.
pub fn answer_split(query: &Query, small: &Graph, large: &Graph) -> AnswerSplit {
    let shape = PlanShape::compile(query);
    split_set(&shape, &PlanBindings::of(query), small, large)
}

/// The retained recursive AST interpreter. Not used by any production
/// path; the plan-equivalence tests run it side by side with the slot
/// executor to prove the compiled plans produce identical answer sets.
pub mod reference {
    use super::*;

    /// Exact answer set of `query` on `graph`, by direct recursion over
    /// the AST (no plan compilation, no DNF rewrite).
    pub fn answers_ast(query: &Query, graph: &Graph) -> EntitySet {
        let n = graph.n_entities();
        match query {
            Query::Anchor(e) => EntitySet::singleton(n, *e),
            Query::Projection { rel, input } => {
                let inp = answers_ast(input, graph);
                let mut out = EntitySet::empty(n);
                for e in inp.iter() {
                    for &t in graph.neighbors(e, *rel) {
                        out.insert(EntityId(t));
                    }
                }
                out
            }
            Query::Intersection(qs) => {
                // Same smallest-cardinality-first fold as the plan
                // executor: evaluate every branch, then intersect from the
                // most selective one so the empty early-exit can fire.
                let mut sets: Vec<EntitySet> = qs.iter().map(|q| answers_ast(q, graph)).collect();
                sets.sort_by_key(EntitySet::len);
                let mut it = sets.into_iter();
                let mut acc = it.next().expect("intersection of nothing");
                for s in it {
                    if acc.is_empty() {
                        break;
                    }
                    acc.intersect_with(&s);
                }
                acc
            }
            Query::Union(qs) => {
                let mut acc = EntitySet::empty(n);
                for q in qs {
                    acc.union_with(&answers_ast(q, graph));
                }
                acc
            }
            Query::Difference(qs) => {
                let mut it = qs.iter();
                let first = it.next().expect("difference of nothing");
                let mut acc = answers_ast(first, graph);
                for q in it {
                    if acc.is_empty() {
                        break;
                    }
                    acc.difference_with(&answers_ast(q, graph));
                }
                acc
            }
            Query::Negation(q) => answers_ast(q, graph).complement(),
        }
    }

    /// AST-walking form of [`super::answer_split`], for the same tests.
    pub fn answer_split_ast(query: &Query, small: &Graph, large: &Graph) -> AnswerSplit {
        let on_small = answers_ast(query, small);
        let on_large = answers_ast(query, large);
        let mut hard = Vec::new();
        let mut easy = Vec::new();
        for e in on_large.iter() {
            if on_small.contains(e) {
                easy.push(e);
            } else {
                hard.push(e);
            }
        }
        AnswerSplit { hard, easy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{RelationId, Triple};

    /// 0 -r0-> {1, 2}; 1 -r1-> 3; 2 -r1-> 3; 2 -r1-> 4; 5 -r0-> 2
    fn toy() -> Graph {
        Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(2, 1, 3),
                Triple::new(2, 1, 4),
                Triple::new(5, 0, 2),
            ],
        )
    }

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().map(|&i| EntityId(i)).collect()
    }

    #[test]
    fn projection_1p() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0));
        assert_eq!(answers(&q, &g).to_vec(), ids(&[1, 2]));
    }

    #[test]
    fn projection_2p_chains() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0)).project(RelationId(1));
        assert_eq!(answers(&q, &g).to_vec(), ids(&[3, 4]));
    }

    #[test]
    fn intersection() {
        let g = toy();
        // Things reached by both 0-r0 and 5-r0: just {2}.
        let q = Query::Intersection(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        assert_eq!(answers(&q, &g).to_vec(), ids(&[2]));
    }

    #[test]
    fn union() {
        let g = toy();
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(1), RelationId(1)),
        ]);
        assert_eq!(answers(&q, &g).to_vec(), ids(&[1, 2, 3]));
    }

    #[test]
    fn difference() {
        let g = toy();
        // {1,2} minus {2} = {1}.
        let q = Query::Difference(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        assert_eq!(answers(&q, &g).to_vec(), ids(&[1]));
    }

    #[test]
    fn negation_is_complement() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0)).negate();
        assert_eq!(answers(&q, &g).to_vec(), ids(&[0, 3, 4, 5]));
    }

    #[test]
    fn intersection_with_negation_matches_difference() {
        // B ∧ ¬C ≡ B − C: the paper's Fig. 2 equivalence, exact on the oracle.
        let g = toy();
        let b = Query::atom(EntityId(0), RelationId(0));
        let c = Query::atom(EntityId(5), RelationId(0));
        let with_neg = Query::Intersection(vec![b.clone(), c.clone().negate()]);
        let with_diff = Query::Difference(vec![b, c]);
        assert_eq!(answers(&with_neg, &g), answers(&with_diff, &g));
    }

    #[test]
    fn empty_projection_gives_empty() {
        let g = toy();
        let q = Query::atom(EntityId(3), RelationId(0)); // 3 has no r0 out-edges
        assert!(answers(&q, &g).is_empty());
        // And further projection stays empty.
        let q2 = q.project(RelationId(1));
        assert!(answers(&q2, &g).is_empty());
    }

    #[test]
    fn answer_split_partitions() {
        let full = toy();
        // Train graph missing the 2 -r1-> 4 edge.
        let train = Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(2, 1, 3),
                Triple::new(5, 0, 2),
            ],
        );
        let q = Query::atom(EntityId(0), RelationId(0)).project(RelationId(1));
        let split = answer_split(&q, &train, &full);
        assert_eq!(split.easy, ids(&[3]));
        assert_eq!(split.hard, ids(&[4]));
    }

    #[test]
    fn double_negation_is_identity() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0));
        let qnn = q.clone().negate().negate();
        assert_eq!(answers(&q, &g), answers(&qnn, &g));
    }

    #[test]
    fn plan_and_reference_agree_on_toy_queries() {
        let g = toy();
        let queries = vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(0), RelationId(0)).project(RelationId(1)),
            Query::Union(vec![
                Query::atom(EntityId(0), RelationId(0)),
                Query::atom(EntityId(1), RelationId(1)),
            ])
            .project(RelationId(1)),
            Query::Difference(vec![
                Query::atom(EntityId(0), RelationId(0)),
                Query::atom(EntityId(5), RelationId(0)).negate(),
            ]),
        ];
        for q in queries {
            assert_eq!(
                answers(&q, &g),
                reference::answers_ast(&q, &g),
                "diverged on {}",
                q.render()
            );
        }
    }
}
