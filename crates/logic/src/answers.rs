//! The exact answer engine — the oracle every learned method is measured
//! against.
//!
//! Evaluates a computation tree against a graph with exact set semantics:
//! projection is the image of the input set under the relation, negation is
//! the complement over the entity universe, difference is `first \ rest`.
//! Ground-truth labels for training, filtered-ranking evaluation and the
//! matching engine's accuracy reference all come from here.

use crate::ast::Query;
use crate::set::EntitySet;
use halk_kg::{EntityId, Graph};

/// Exact answer set of `query` on `graph`.
pub fn answers(query: &Query, graph: &Graph) -> EntitySet {
    let n = graph.n_entities();
    match query {
        Query::Anchor(e) => EntitySet::singleton(n, *e),
        Query::Projection { rel, input } => {
            let inp = answers(input, graph);
            let mut out = EntitySet::empty(n);
            for e in inp.iter() {
                for &t in graph.neighbors(e, *rel) {
                    out.insert(EntityId(t));
                }
            }
            out
        }
        Query::Intersection(qs) => {
            let mut it = qs.iter();
            let first = it.next().expect("intersection of nothing");
            let mut acc = answers(first, graph);
            for q in it {
                if acc.is_empty() {
                    break;
                }
                acc.intersect_with(&answers(q, graph));
            }
            acc
        }
        Query::Union(qs) => {
            let mut acc = EntitySet::empty(n);
            for q in qs {
                acc.union_with(&answers(q, graph));
            }
            acc
        }
        Query::Difference(qs) => {
            let mut it = qs.iter();
            let first = it.next().expect("difference of nothing");
            let mut acc = answers(first, graph);
            for q in it {
                if acc.is_empty() {
                    break;
                }
                acc.difference_with(&answers(q, graph));
            }
            acc
        }
        Query::Negation(q) => answers(q, graph).complement(),
    }
}

/// The hard/easy answer partition of the BetaE evaluation protocol: `hard`
/// answers hold only on the larger graph (they require generalization);
/// `easy` answers are already entailed by the smaller graph and are filtered
/// out of rankings.
#[derive(Debug, Clone)]
pub struct AnswerSplit {
    /// Answers on the larger graph that are *not* answers on the smaller.
    pub hard: Vec<EntityId>,
    /// Answers already derivable on the smaller graph.
    pub easy: Vec<EntityId>,
}

/// Splits the answers of `query` into easy (on `small`) and hard (only on
/// `large`) per the evaluation protocol of §IV-A.
pub fn answer_split(query: &Query, small: &Graph, large: &Graph) -> AnswerSplit {
    let on_small = answers(query, small);
    let on_large = answers(query, large);
    let mut hard = Vec::new();
    let mut easy = Vec::new();
    for e in on_large.iter() {
        if on_small.contains(e) {
            easy.push(e);
        } else {
            hard.push(e);
        }
    }
    AnswerSplit { hard, easy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{RelationId, Triple};

    /// 0 -r0-> {1, 2}; 1 -r1-> 3; 2 -r1-> 3; 2 -r1-> 4; 5 -r0-> 2
    fn toy() -> Graph {
        Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(2, 1, 3),
                Triple::new(2, 1, 4),
                Triple::new(5, 0, 2),
            ],
        )
    }

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().map(|&i| EntityId(i)).collect()
    }

    #[test]
    fn projection_1p() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0));
        assert_eq!(answers(&q, &g).to_vec(), ids(&[1, 2]));
    }

    #[test]
    fn projection_2p_chains() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0)).project(RelationId(1));
        assert_eq!(answers(&q, &g).to_vec(), ids(&[3, 4]));
    }

    #[test]
    fn intersection() {
        let g = toy();
        // Things reached by both 0-r0 and 5-r0: just {2}.
        let q = Query::Intersection(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        assert_eq!(answers(&q, &g).to_vec(), ids(&[2]));
    }

    #[test]
    fn union() {
        let g = toy();
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(1), RelationId(1)),
        ]);
        assert_eq!(answers(&q, &g).to_vec(), ids(&[1, 2, 3]));
    }

    #[test]
    fn difference() {
        let g = toy();
        // {1,2} minus {2} = {1}.
        let q = Query::Difference(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        assert_eq!(answers(&q, &g).to_vec(), ids(&[1]));
    }

    #[test]
    fn negation_is_complement() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0)).negate();
        assert_eq!(answers(&q, &g).to_vec(), ids(&[0, 3, 4, 5]));
    }

    #[test]
    fn intersection_with_negation_matches_difference() {
        // B ∧ ¬C ≡ B − C: the paper's Fig. 2 equivalence, exact on the oracle.
        let g = toy();
        let b = Query::atom(EntityId(0), RelationId(0));
        let c = Query::atom(EntityId(5), RelationId(0));
        let with_neg = Query::Intersection(vec![b.clone(), c.clone().negate()]);
        let with_diff = Query::Difference(vec![b, c]);
        assert_eq!(answers(&with_neg, &g), answers(&with_diff, &g));
    }

    #[test]
    fn empty_projection_gives_empty() {
        let g = toy();
        let q = Query::atom(EntityId(3), RelationId(0)); // 3 has no r0 out-edges
        assert!(answers(&q, &g).is_empty());
        // And further projection stays empty.
        let q2 = q.project(RelationId(1));
        assert!(answers(&q2, &g).is_empty());
    }

    #[test]
    fn answer_split_partitions() {
        let full = toy();
        // Train graph missing the 2 -r1-> 4 edge.
        let train = Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(2, 1, 3),
                Triple::new(5, 0, 2),
            ],
        );
        let q = Query::atom(EntityId(0), RelationId(0)).project(RelationId(1));
        let split = answer_split(&q, &train, &full);
        assert_eq!(split.easy, ids(&[3]));
        assert_eq!(split.hard, ids(&[4]));
    }

    #[test]
    fn double_negation_is_identity() {
        let g = toy();
        let q = Query::atom(EntityId(0), RelationId(0));
        let qnn = q.clone().negate().negate();
        assert_eq!(answers(&q, &g), answers(&qnn, &g));
    }
}
