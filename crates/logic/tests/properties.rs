//! Property-based tests for the logic crate: set algebra laws, DNF
//! equivalence on random queries, and sampler guarantees.

use halk_kg::{generate, EntityId, Graph, RelationId, SynthConfig};
use halk_logic::{answers, to_dnf, EntitySet, Query, Sampler, Structure};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const UNIVERSE: usize = 128;

fn any_set() -> impl Strategy<Value = EntitySet> {
    prop::collection::vec(0u32..UNIVERSE as u32, 0..40)
        .prop_map(|ids| EntitySet::from_iter(UNIVERSE, ids.into_iter().map(EntityId)))
}

proptest! {
    #[test]
    fn union_is_commutative_and_idempotent(a in any_set(), b in any_set()) {
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.union_with(&a);
        prop_assert_eq!(&aa, &a);
    }

    #[test]
    fn de_morgan(a in any_set(), b in any_set()) {
        // ¬(a ∪ b) == ¬a ∩ ¬b
        let mut un = a.clone();
        un.union_with(&b);
        let lhs = un.complement();
        let mut rhs = a.complement();
        rhs.intersect_with(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn difference_is_intersection_with_complement(a in any_set(), b in any_set()) {
        let mut diff = a.clone();
        diff.difference_with(&b);
        let mut via_comp = a.clone();
        via_comp.intersect_with(&b.complement());
        prop_assert_eq!(diff, via_comp);
    }

    #[test]
    fn jaccard_bounds_and_identity(a in any_set(), b in any_set()) {
        let j = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn set_len_after_union_bounds(a in any_set(), b in any_set()) {
        let mut un = a.clone();
        un.union_with(&b);
        prop_assert!(un.len() >= a.len().max(b.len()));
        prop_assert!(un.len() <= a.len() + b.len());
    }
}

/// Random small queries over a fixed toy graph for DNF/semantics fuzzing.
fn toy_graph() -> Graph {
    generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(77))
}

fn arb_query(entities: u32, relations: u32) -> impl Strategy<Value = Query> {
    let anchor =
        (0..entities, 0..relations).prop_map(|(e, r)| Query::atom(EntityId(e), RelationId(r)));
    anchor.prop_recursive(3, 24, 3, move |inner| {
        prop_oneof![
            (inner.clone(), 0..relations).prop_map(|(q, r)| q.project(RelationId(r))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Query::Intersection),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Query::Union),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Query::Difference),
            inner.prop_map(|q| q.negate()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dnf_equivalence_on_random_queries(q in arb_query(700, 20)) {
        let g = toy_graph();
        let direct = answers(&q, &g);
        let mut via = EntitySet::empty(g.n_entities());
        for b in to_dnf(&q) {
            prop_assert!(!b.has_union());
            via.union_with(&answers(&b, &g));
        }
        prop_assert_eq!(direct, via);
    }

    #[test]
    fn query_metadata_consistent(q in arb_query(700, 20)) {
        prop_assert!(q.depth() >= 1);
        prop_assert!(q.n_ops() >= q.depth());
        prop_assert_eq!(q.anchors().is_empty(), false);
        // render never panics and mentions every anchor
        let r = q.render();
        for a in q.anchors() {
            prop_assert!(r.contains(&a.to_string()));
        }
    }
}

#[test]
fn sampler_always_yields_nonempty_answer_sets() {
    let g = toy_graph();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(5);
    for s in Structure::all() {
        for gq in sampler.sample_many(s, 3, &mut rng) {
            assert!(!answers(&gq.query, &g).is_empty(), "{s}");
        }
    }
}
