//! Plan-compiler equivalence: the compiled executor must agree with the
//! retained AST-walking reference on every structure and on random queries
//! (the exact-engine half of the PR 4 bit-identity suite).

use halk_kg::{generate, DatasetSplit, EntityId, Graph, RelationId, SynthConfig};
use halk_logic::answers::reference::{answer_split_ast, answers_ast};
use halk_logic::plan::{
    execute_set, execute_set_batch, split_set, PlanBindings, PlanCache, PlanShape,
};
use halk_logic::{to_dnf, Query, Sampler, Structure};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_graph() -> Graph {
    generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(77))
}

/// Every one of the 24 named structures: compiled-plan answers equal the
/// recursive reference, on several sampled groundings each.
#[test]
fn plan_matches_reference_on_all_structures() {
    let g = toy_graph();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(9);
    for s in Structure::all() {
        for gq in sampler.sample_many(s, 4, &mut rng) {
            let shape = PlanShape::compile(&gq.query);
            let bindings = PlanBindings::of(&gq.query);
            assert_eq!(
                execute_set(&shape, &bindings, &g),
                answers_ast(&gq.query, &g),
                "{s}: {}",
                gq.query.render()
            );
        }
    }
}

/// The easy/hard split (evaluation protocol §IV-A) agrees with the
/// reference on every structure over a nested train/valid/test split.
#[test]
fn plan_split_matches_reference_on_all_structures() {
    let g = toy_graph();
    let split = DatasetSplit::nested(&g, 0.8, 0.1, &mut StdRng::seed_from_u64(13));
    let sampler = Sampler::new(&split.test);
    let mut rng = StdRng::seed_from_u64(21);
    for s in Structure::all() {
        for gq in sampler.sample_many(s, 3, &mut rng) {
            let shape = PlanShape::compile(&gq.query);
            let bindings = PlanBindings::of(&gq.query);
            let got = split_set(&shape, &bindings, &split.valid, &split.test);
            let want = answer_split_ast(&gq.query, &split.valid, &split.test);
            assert_eq!(got.hard, want.hard, "{s} hard");
            assert_eq!(got.easy, want.easy, "{s} easy");
        }
    }
}

/// One cache entry per structure skeleton, however many groundings run
/// through it.
#[test]
fn cache_compiles_each_structure_once() {
    let g = toy_graph();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(31);
    let plans = PlanCache::new();
    let all = Structure::all();
    for &s in &all {
        for gq in sampler.sample_many(s, 5, &mut rng) {
            let shape = plans.shape_for(&gq.query);
            execute_set(&shape, &PlanBindings::of(&gq.query), &g);
        }
    }
    assert_eq!(plans.len(), all.len());
}

/// Skeleton-batched exact execution: one shape over a group of bindings
/// returns exactly what per-query execution returns, and an expired
/// deadline on one group member does not disturb the others.
#[test]
fn batch_execution_matches_singles_with_mixed_deadlines() {
    use halk_obs::{Clock, Deadline};
    let g = toy_graph();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(13);
    for s in [Structure::P2, Structure::I2, Structure::U2] {
        let gqs = sampler.sample_many(s, 5, &mut rng);
        let shape = PlanShape::compile(&gqs[0].query);
        let bindings: Vec<PlanBindings> =
            gqs.iter().map(|gq| PlanBindings::of(&gq.query)).collect();
        let refs: Vec<&PlanBindings> = bindings.iter().collect();

        let never = Deadline::never();
        let deadlines: Vec<&Deadline> = refs.iter().map(|_| &never).collect();
        let batch = execute_set_batch(&shape, &refs, &g, &deadlines);
        for (got, gq) in batch.iter().zip(&gqs) {
            assert_eq!(
                got.as_ref().expect("unarmed deadline"),
                &execute_set(&shape, &PlanBindings::of(&gq.query), &g),
                "{s}"
            );
        }

        // Expire query 1's deadline only: it errors, the rest are intact.
        let (clock, now) = Clock::mock();
        let expired = Deadline::at_ns(&clock, 1);
        now.store(5, std::sync::atomic::Ordering::SeqCst);
        let mixed: Vec<&Deadline> = refs
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 1 { &expired } else { &never })
            .collect();
        let batch = execute_set_batch(&shape, &refs, &g, &mixed);
        for (i, (got, gq)) in batch.iter().zip(&gqs).enumerate() {
            if i == 1 {
                assert!(got.is_err());
            } else {
                assert_eq!(
                    got.as_ref().unwrap(),
                    &execute_set(&shape, &PlanBindings::of(&gq.query), &g)
                );
            }
        }
    }
}

fn arb_query(entities: u32, relations: u32) -> impl Strategy<Value = Query> {
    let anchor =
        (0..entities, 0..relations).prop_map(|(e, r)| Query::atom(EntityId(e), RelationId(r)));
    anchor.prop_recursive(3, 24, 3, move |inner| {
        prop_oneof![
            (inner.clone(), 0..relations).prop_map(|(q, r)| q.project(RelationId(r))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Query::Intersection),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Query::Union),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Query::Difference),
            inner.prop_map(|q| q.negate()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary nested queries (unions and negations anywhere): the plan
    /// executor and the AST reference compute the same answer set, and the
    /// plan has exactly one root per DNF branch.
    #[test]
    fn plan_matches_reference_on_random_queries(q in arb_query(700, 20)) {
        let g = toy_graph();
        let shape = PlanShape::compile(&q);
        prop_assert_eq!(shape.n_branches(), to_dnf(&q).len());
        let got = execute_set(&shape, &PlanBindings::of(&q), &g);
        prop_assert_eq!(got, answers_ast(&q, &g));
    }

    /// Binding extraction is positional: anchors and relations line up with
    /// the compiler's argument numbering on arbitrary queries.
    #[test]
    fn bindings_fit_their_shape(q in arb_query(700, 20)) {
        let shape = PlanShape::compile(&q);
        let bindings = PlanBindings::of(&q);
        bindings.check(&shape);
        prop_assert_eq!(bindings.anchors.len(), shape.n_anchors());
        prop_assert_eq!(bindings.rels.len(), shape.n_rels());
    }
}
