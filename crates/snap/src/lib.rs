//! Versioned binary snapshots of a trained HaLk deployment: the knowledge
//! graph, the node grouping, the model hyper-parameters, the parameter
//! values *and the precomputed SoA entity-trig table*, in one CRC-framed
//! file that a server can boot from without re-parsing TSVs or re-deriving
//! any model state.
//!
//! Cold start without a snapshot pays a TSV text parse, a grouping triple
//! sweep, `HalkModel::new`'s `O(n_entities · d)` seeded init that the
//! checkpoint restore then throws away, and an `n_entities · d` sin/cos
//! sweep to build the scoring trig table. The snapshot skips every
//! recomputable step: grouping and parameter values travel directly, the
//! trig table travels precomputed, and only the graph's adjacency indexes
//! are rebuilt (cheaper than shipping them — the CSR offset arrays alone
//! would add `8 · n_entities · n_relations` bytes). Boot is a sequential
//! read plus validation: [`Grouping::from_parts`] and
//! [`HalkModel::from_parts`] re-check the invariants their `new`
//! constructors establish, so a corrupted file can reject but never load
//! as a silently different deployment.
//!
//! A snapshot is a **serving** artifact: optimizer state (Adam moments,
//! gradients) is deliberately not stored — it restores as zeros. Resume
//! training from a [`halk_nn::checkpoint`], not a snapshot; the diet cuts
//! the parameter section to a third of the checkpoint's size.
//!
//! # Format (version 1)
//!
//! ```text
//! magic "HALKSNAP" | version u32 | n_sections u32
//! per section: tag [u8;4] | payload_len u64 | payload | crc32(payload) u32
//! trailing crc32 u32 over every preceding byte (magic included)
//! ```
//!
//! All integers little-endian. The per-section CRCs let `inspect` report
//! which section a corruption hit; the trailing file CRC is checked first
//! and makes *any* single-byte corruption a deterministic
//! [`SnapError::FileChecksum`] before structural decoding begins — the same
//! discipline as the v2 parameter checkpoint. Decoding dispatches on the
//! version field: unknown versions are a typed [`SnapError::BadVersion`],
//! and future writers can add versions while this reader keeps accepting
//! v1 files.
//!
//! Section tags: `META` (counts for cheap inspection), `CONF` (config
//! JSON), `GRPH` (triples, 12 bytes each, stored sorted so decode
//! rebuilds the adjacency indexes with counting passes instead of a
//! sort), `GROU` (grouping parts), `PARM` (train step + tensor shapes +
//! one raw f32 value blob), `TRIG` (the full-precision entity-trig table:
//! `half_sin` then `half_cos`, `n_entities · dim` f32 each).
//!
//! [`write_file`] is crash-safe the same way checkpoint saves are: temp
//! sibling + fsync + atomic rename, so a crash mid-write leaves the old
//! snapshot (or nothing), never a torn file.

use halk_core::{EntityTrig, HalkConfig, HalkModel, Precision};
use halk_kg::{Graph, Grouping, Triple};
use halk_nn::checkpoint::crc32;
use halk_nn::{ParamStore, Tensor};
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"HALKSNAP";
/// Current (written) snapshot format version.
pub const VERSION: u32 = 1;

const TAG_META: [u8; 4] = *b"META";
const TAG_CONF: [u8; 4] = *b"CONF";
const TAG_GRPH: [u8; 4] = *b"GRPH";
const TAG_GROU: [u8; 4] = *b"GROU";
const TAG_PARM: [u8; 4] = *b"PARM";
const TAG_TRIG: [u8; 4] = *b"TRIG";
const KNOWN_TAGS: [[u8; 4]; 6] = [TAG_META, TAG_CONF, TAG_GRPH, TAG_GROU, TAG_PARM, TAG_TRIG];

fn tag_name(tag: [u8; 4]) -> String {
    tag.iter()
        .map(|&b| if b.is_ascii_graphic() { b as char } else { '?' })
        .collect()
}

/// Errors produced while decoding a snapshot. Every defect of a malformed
/// buffer maps here — the decoder never panics and never returns a graph or
/// model that differs from what was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// Bytes remain after the declared content.
    TrailingBytes,
    /// The trailing whole-file CRC32 does not match.
    FileChecksum { stored: u32, computed: u32 },
    /// A section's payload CRC32 does not match.
    SectionChecksum {
        tag: [u8; 4],
        stored: u32,
        computed: u32,
    },
    /// A section tag outside the v1 vocabulary.
    UnknownSection([u8; 4]),
    /// The same section appears twice.
    DuplicateSection([u8; 4]),
    /// A required section is absent.
    MissingSection([u8; 4]),
    /// A section decoded but its contents violate an invariant (reported by
    /// the validating `from_parts` constructors or cross-section checks).
    Malformed { section: [u8; 4], reason: String },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a HaLk snapshot (bad magic)"),
            SnapError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::TrailingBytes => write!(f, "snapshot has trailing bytes"),
            SnapError::FileChecksum { stored, computed } => write!(
                f,
                "snapshot corrupted: stored file crc32 {stored:#010x}, computed {computed:#010x}"
            ),
            SnapError::SectionChecksum {
                tag,
                stored,
                computed,
            } => write!(
                f,
                "section {} corrupted: stored crc32 {stored:#010x}, computed {computed:#010x}",
                tag_name(*tag)
            ),
            SnapError::UnknownSection(tag) => {
                write!(f, "unknown snapshot section {}", tag_name(*tag))
            }
            SnapError::DuplicateSection(tag) => {
                write!(f, "duplicate snapshot section {}", tag_name(*tag))
            }
            SnapError::MissingSection(tag) => {
                write!(f, "missing snapshot section {}", tag_name(*tag))
            }
            SnapError::Malformed { section, reason } => {
                write!(f, "section {} malformed: {reason}", tag_name(*section))
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Cheap metadata about a snapshot, decodable without reconstructing the
/// graph or model (`halk snapshot inspect`). Produced only after the file
/// and per-section checksums verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    pub version: u32,
    pub n_entities: usize,
    pub n_relations: usize,
    pub n_triples: usize,
    pub n_groups: usize,
    pub dim: usize,
    pub n_params: usize,
    pub n_scalars: usize,
    /// Total file size in bytes.
    pub total_bytes: usize,
    /// `(section name, payload bytes)` in file order.
    pub sections: Vec<(String, usize)>,
}

// ------------------------------------------------------------------ encode

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, values: &[f32]) {
    buf.reserve(values.len() * 4);
    for &v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_section(buf: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    buf.extend_from_slice(&tag);
    put_u64(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    put_u32(buf, crc32(payload));
}

fn encode_meta(graph: &Graph, model: &HalkModel) -> Vec<u8> {
    let mut p = Vec::with_capacity(44);
    put_u64(&mut p, graph.n_entities() as u64);
    put_u64(&mut p, graph.n_relations() as u64);
    put_u64(&mut p, graph.n_triples() as u64);
    put_u32(&mut p, model.grouping().n_groups() as u32);
    put_u32(&mut p, model.config().dim as u32);
    put_u32(&mut p, model.param_store().len() as u32);
    put_u64(&mut p, model.param_store().num_scalars() as u64);
    p
}

fn encode_graph(graph: &Graph) -> Vec<u8> {
    // Triples only, 12 bytes each, in the graph's strict (h, r, t) order.
    // The adjacency indexes are deliberately *not* serialized: shipping
    // dense CSR offsets would cost `8·|V|·|R|` bytes (gigabytes at
    // million-entity scale — the opposite of a memory diet), and because
    // the list is stored sorted, `Graph::from_sorted_triples` rebuilds
    // both directions at decode with counting passes — no sort — in
    // `O(|T| + |V|·|R|)`.
    let mut p = Vec::with_capacity(graph.n_triples() * 12);
    for t in graph.triples() {
        put_u32(&mut p, t.h.index() as u32);
        put_u32(&mut p, t.r.index() as u32);
        put_u32(&mut p, t.t.index() as u32);
    }
    p
}

fn encode_grouping(grouping: &Grouping) -> Vec<u8> {
    let (n_groups, group_of, adj, adj_inv) = grouping.parts();
    let mut p = Vec::with_capacity(4 + group_of.len() + adj.len() * n_groups * 16);
    put_u32(&mut p, n_groups as u32);
    p.extend_from_slice(group_of);
    for rows in [adj, adj_inv] {
        for row in rows {
            for &mask in row {
                put_u64(&mut p, mask);
            }
        }
    }
    p
}

fn encode_params(store: &ParamStore) -> Vec<u8> {
    // Values only: a snapshot is a serving artifact. Adam moments and
    // gradients exist to *continue training* — checkpoints carry those —
    // and would triple this section; they restore as zeros.
    let mut p = Vec::with_capacity(8 + store.len() * 8 + store.num_scalars() * 4);
    put_u64(&mut p, store.steps_taken());
    for i in 0..store.len() {
        let t = store.value(store.param_id(i));
        put_u32(&mut p, t.rows as u32);
        put_u32(&mut p, t.cols as u32);
    }
    for i in 0..store.len() {
        put_f32s(&mut p, &store.value(store.param_id(i)).data);
    }
    p
}

fn encode_trig(trig: &EntityTrig) -> Vec<u8> {
    let (half_sin, half_cos) = trig
        .f32_parts()
        .expect("the writer always builds the full-precision table");
    let mut p = Vec::with_capacity((half_sin.len() + half_cos.len()) * 4);
    put_f32s(&mut p, half_sin);
    put_f32s(&mut p, half_cos);
    p
}

/// Serializes a deployment (graph + trained model) to snapshot bytes,
/// precomputing the full-precision entity-trig table so boot can skip the
/// sin/cos sweep.
///
/// # Panics
/// If the graph and model disagree on entity or relation counts — that is
/// a caller bug, not a recoverable condition.
pub fn to_bytes(graph: &Graph, model: &HalkModel) -> Vec<u8> {
    assert_eq!(
        graph.n_entities(),
        model.n_entities(),
        "graph/model entity count mismatch"
    );
    assert_eq!(
        graph.n_relations(),
        model.n_relations(),
        "graph/model relation count mismatch"
    );
    let conf = serde_json::to_string(model.config())
        .expect("HalkConfig serializes infallibly")
        .into_bytes();
    let trig = model.entity_trig_with(Precision::F32);

    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_u32(&mut buf, KNOWN_TAGS.len() as u32);
    put_section(&mut buf, TAG_META, &encode_meta(graph, model));
    put_section(&mut buf, TAG_CONF, &conf);
    put_section(&mut buf, TAG_GRPH, &encode_graph(graph));
    put_section(&mut buf, TAG_GROU, &encode_grouping(model.grouping()));
    put_section(&mut buf, TAG_PARM, &encode_params(model.param_store()));
    put_section(&mut buf, TAG_TRIG, &encode_trig(&trig));
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

// ------------------------------------------------------------------ decode

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32_le(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64_le(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, SnapError> {
        let raw = self.take(n.checked_mul(4).ok_or(SnapError::Truncated)?)?;
        Ok(bulk_le(raw, n, |c| {
            u32::from_le_bytes(c.try_into().unwrap())
        }))
    }

    fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>, SnapError> {
        let raw = self.take(n.checked_mul(8).ok_or(SnapError::Truncated)?)?;
        Ok(bulk_le(raw, n, |c| {
            u64::from_le_bytes(c.try_into().unwrap())
        }))
    }

    fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, SnapError> {
        let raw = self.take(n.checked_mul(4).ok_or(SnapError::Truncated)?)?;
        Ok(bulk_le(raw, n, |c| {
            f32::from_le_bytes(c.try_into().unwrap())
        }))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Decodes `n` little-endian values of size `size_of::<T>()` from `raw`.
///
/// The wire format is little-endian, which on little-endian hosts matches
/// the in-memory layout exactly — the whole blob becomes one memcpy
/// (`copy_nonoverlapping` tolerates the unaligned source) instead of a
/// per-element `from_le_bytes` loop. Big-endian hosts fall back to the
/// per-element path. `T` must be a plain-old-data numeric type with no
/// invalid bit patterns (u32/u64/f32 here).
fn bulk_le<T: Copy>(raw: &[u8], n: usize, per_elem: impl Fn(&[u8]) -> T) -> Vec<T> {
    debug_assert_eq!(raw.len(), n * std::mem::size_of::<T>());
    #[cfg(target_endian = "little")]
    {
        let _ = &per_elem;
        let mut out = Vec::<T>::with_capacity(n);
        // SAFETY: `raw` holds exactly `n * size_of::<T>()` bytes (caller
        // sized the take), the freshly allocated `out` holds `n` `T`s, the
        // regions cannot overlap, and every bit pattern is a valid `T`.
        unsafe {
            std::ptr::copy_nonoverlapping(raw.as_ptr(), out.as_mut_ptr() as *mut u8, raw.len());
            out.set_len(n);
        }
        out
    }
    #[cfg(not(target_endian = "little"))]
    {
        raw.chunks_exact(std::mem::size_of::<T>())
            .map(|c| per_elem(c))
            .collect()
    }
}

/// The six decoded section payloads, borrowed from the input buffer.
struct Sections<'a> {
    meta: &'a [u8],
    conf: &'a [u8],
    graph: &'a [u8],
    grouping: &'a [u8],
    params: &'a [u8],
    trig: &'a [u8],
}

/// A verified section: `(tag, payload)` borrowed from the input buffer.
type TaggedPayload<'a> = ([u8; 4], &'a [u8]);

/// Verifies framing (magic, version, file CRC, per-section CRCs) and
/// returns the section payloads. Checked before any structural decode, so
/// everything downstream operates on bytes proven identical to what the
/// writer produced.
fn decode_sections(buf: &[u8]) -> Result<(u32, Vec<TaggedPayload<'_>>), SnapError> {
    if buf.len() < 8 || &buf[..8] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    if buf.len() < 12 {
        return Err(SnapError::Truncated);
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    // Version dispatch: v1 is the only layout so far. A future v2 adds an
    // arm here while v1 files keep decoding.
    if version != VERSION {
        return Err(SnapError::BadVersion(version));
    }
    if buf.len() < 16 {
        return Err(SnapError::Truncated);
    }
    let body = &buf[..buf.len() - 4];
    let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(SnapError::FileChecksum { stored, computed });
    }

    let mut cur = Cursor::new(body);
    cur.pos = 12;
    let n_sections = cur.u32_le()? as usize;
    let mut sections: Vec<([u8; 4], &[u8])> = Vec::new();
    for _ in 0..n_sections {
        let tag: [u8; 4] = cur.take(4)?.try_into().unwrap();
        if !KNOWN_TAGS.contains(&tag) {
            return Err(SnapError::UnknownSection(tag));
        }
        if sections.iter().any(|(t, _)| *t == tag) {
            return Err(SnapError::DuplicateSection(tag));
        }
        let len = cur.u64_le()?;
        let len = usize::try_from(len).map_err(|_| SnapError::Truncated)?;
        let payload = cur.take(len)?;
        let stored = cur.u32_le()?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(SnapError::SectionChecksum {
                tag,
                stored,
                computed,
            });
        }
        sections.push((tag, payload));
    }
    if cur.remaining() != 0 {
        return Err(SnapError::TrailingBytes);
    }
    Ok((version, sections))
}

fn require<'a>(sections: &[([u8; 4], &'a [u8])], tag: [u8; 4]) -> Result<&'a [u8], SnapError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or(SnapError::MissingSection(tag))
}

fn split_sections<'a>(buf: &'a [u8]) -> Result<(u32, Sections<'a>), SnapError> {
    let (version, sections) = decode_sections(buf)?;
    Ok((
        version,
        Sections {
            meta: require(&sections, TAG_META)?,
            conf: require(&sections, TAG_CONF)?,
            graph: require(&sections, TAG_GRPH)?,
            grouping: require(&sections, TAG_GROU)?,
            params: require(&sections, TAG_PARM)?,
            trig: require(&sections, TAG_TRIG)?,
        },
    ))
}

struct Meta {
    n_entities: usize,
    n_relations: usize,
    n_triples: usize,
    n_groups: usize,
    dim: usize,
    n_params: usize,
    n_scalars: usize,
}

fn malformed(section: [u8; 4], reason: impl Into<String>) -> SnapError {
    SnapError::Malformed {
        section,
        reason: reason.into(),
    }
}

fn parse_meta(payload: &[u8]) -> Result<Meta, SnapError> {
    let mut cur = Cursor::new(payload);
    let meta = Meta {
        n_entities: cur.u64_le()? as usize,
        n_relations: cur.u64_le()? as usize,
        n_triples: cur.u64_le()? as usize,
        n_groups: cur.u32_le()? as usize,
        dim: cur.u32_le()? as usize,
        n_params: cur.u32_le()? as usize,
        n_scalars: cur.u64_le()? as usize,
    };
    if cur.remaining() != 0 {
        return Err(malformed(TAG_META, "trailing bytes in META"));
    }
    if meta.n_entities > u32::MAX as usize || meta.n_relations > u32::MAX as usize {
        return Err(malformed(TAG_META, "entity/relation count exceeds u32 ids"));
    }
    Ok(meta)
}

fn parse_graph(payload: &[u8], meta: &Meta) -> Result<Graph, SnapError> {
    let mut cur = Cursor::new(payload);
    let words = meta
        .n_triples
        .checked_mul(3)
        .ok_or_else(|| malformed(TAG_GRPH, "triple count overflows"))?;
    let flat = cur.u32_vec(words)?;
    if cur.remaining() != 0 {
        return Err(malformed(TAG_GRPH, "trailing bytes in GRPH"));
    }
    let mut triples = Vec::with_capacity(meta.n_triples);
    for c in flat.chunks_exact(3) {
        triples.push(Triple::new(c[0], c[1], c[2]));
    }
    // The writer stores the list in the graph's strict (h, r, t) order, so
    // `from_sorted_triples` checks order and id ranges (a typed error, not
    // a panic, on anything else) and rebuilds both adjacency directions
    // with counting passes — no sort. Strict order doubles as the
    // duplicate check.
    Graph::from_sorted_triples(meta.n_entities, meta.n_relations, triples)
        .map_err(|e| malformed(TAG_GRPH, e))
}

fn parse_grouping(payload: &[u8], meta: &Meta) -> Result<Grouping, SnapError> {
    let mut cur = Cursor::new(payload);
    let n_groups = cur.u32_le()? as usize;
    if n_groups != meta.n_groups {
        return Err(malformed(
            TAG_GROU,
            format!(
                "group count {n_groups} disagrees with META {}",
                meta.n_groups
            ),
        ));
    }
    let group_of = cur.take(meta.n_entities)?.to_vec();
    let mut adj = Vec::with_capacity(meta.n_relations);
    let mut adj_inv = Vec::with_capacity(meta.n_relations);
    for dir in [&mut adj, &mut adj_inv] {
        for _ in 0..meta.n_relations {
            dir.push(cur.u64_vec(n_groups)?);
        }
    }
    if cur.remaining() != 0 {
        return Err(malformed(TAG_GROU, "trailing bytes in GROU"));
    }
    Grouping::from_parts(n_groups, group_of, adj, adj_inv).map_err(|e| malformed(TAG_GROU, e))
}

fn parse_params(payload: &[u8], meta: &Meta) -> Result<ParamStore, SnapError> {
    let mut cur = Cursor::new(payload);
    let steps = cur.u64_le()?;
    let mut shapes = Vec::with_capacity(meta.n_params);
    let mut total = 0usize;
    for _ in 0..meta.n_params {
        let rows = cur.u32_le()? as usize;
        let cols = cur.u32_le()? as usize;
        let scalars = rows
            .checked_mul(cols)
            .ok_or_else(|| malformed(TAG_PARM, "tensor shape overflows"))?;
        total = total
            .checked_add(scalars)
            .ok_or_else(|| malformed(TAG_PARM, "scalar count overflows"))?;
        shapes.push((rows, cols));
    }
    if total != meta.n_scalars {
        return Err(malformed(
            TAG_PARM,
            format!(
                "shapes sum to {total} scalars, META declares {}",
                meta.n_scalars
            ),
        ));
    }
    let mut store = ParamStore::new();
    for (rows, cols) in shapes {
        let data = cur.f32_vec(rows * cols)?;
        store.add(Tensor { rows, cols, data });
    }
    if cur.remaining() != 0 {
        return Err(malformed(TAG_PARM, "trailing bytes in PARM"));
    }
    store.restore_step(steps);
    Ok(store)
}

fn parse_trig(payload: &[u8], meta: &Meta) -> Result<EntityTrig, SnapError> {
    let n = meta
        .n_entities
        .checked_mul(meta.dim)
        .ok_or_else(|| malformed(TAG_TRIG, "entity * dim overflows"))?;
    let mut cur = Cursor::new(payload);
    let half_sin = cur.f32_vec(n)?;
    let half_cos = cur.f32_vec(n)?;
    if cur.remaining() != 0 {
        return Err(malformed(TAG_TRIG, "trailing bytes in TRIG"));
    }
    EntityTrig::from_f32_parts(half_sin, half_cos, meta.n_entities, meta.dim)
        .map_err(|e| malformed(TAG_TRIG, e))
}

/// Reconstructs the deployment from snapshot bytes. Validation is layered:
/// CRCs (file then per-section), structural decode with bounds-checked
/// reads and id range checks, then the semantic invariants enforced by
/// [`Grouping::from_parts`] and [`HalkModel::from_parts`]. Any failure is
/// a typed [`SnapError`]; on success the triple is exactly what
/// [`to_bytes`] was given (plus the trig table it precomputed).
///
/// The returned [`EntityTrig`] is the full-precision table; servers shard
/// or quantize it with `ShardedTrig::from_table`, which is bit-identical
/// to building from the model directly.
pub fn from_bytes(buf: &[u8]) -> Result<(Graph, HalkModel, EntityTrig), SnapError> {
    let (_version, sections) = split_sections(buf)?;
    let meta = parse_meta(sections.meta)?;

    let conf_str =
        std::str::from_utf8(sections.conf).map_err(|e| malformed(TAG_CONF, e.to_string()))?;
    let cfg: HalkConfig =
        serde_json::from_str(conf_str).map_err(|e| malformed(TAG_CONF, e.to_string()))?;
    if cfg.dim != meta.dim {
        return Err(malformed(
            TAG_CONF,
            format!("config dim {} disagrees with META {}", cfg.dim, meta.dim),
        ));
    }

    // Graph reconstruction and model/trig reconstruction touch disjoint
    // sections and are comparable in cost, so decode them concurrently.
    // Both sides only return typed errors (the decoder is panic-free on
    // arbitrary bytes); if both fail, the graph error wins
    // deterministically.
    let (graph, (model, trig)) = std::thread::scope(|scope| {
        let graph_task = scope.spawn(|| parse_graph(sections.graph, &meta));
        let rest = (|| {
            let grouping = parse_grouping(sections.grouping, &meta)?;
            let store = parse_params(sections.params, &meta)?;
            if store.len() != meta.n_params || store.num_scalars() != meta.n_scalars {
                return Err(malformed(
                    TAG_PARM,
                    format!(
                        "store has {} tensors / {} scalars, META declares {} / {}",
                        store.len(),
                        store.num_scalars(),
                        meta.n_params,
                        meta.n_scalars
                    ),
                ));
            }
            let model =
                HalkModel::from_parts(cfg, meta.n_entities, meta.n_relations, grouping, store)
                    .map_err(|e| malformed(TAG_PARM, e.to_string()))?;
            let trig = parse_trig(sections.trig, &meta)?;
            Ok((model, trig))
        })();
        let graph = graph_task.join().expect("graph decode does not panic");
        graph.and_then(|g| rest.map(|r| (g, r)))
    })?;
    // Probe rows 0 and n-1: the CRCs prove the bytes are the writer's, but
    // not that the writer's trig agreed with its own parameters. This pins
    // the serving contract — snapshot-booted answers are bit-identical to
    // a TSV boot *on the loading host* — at O(dim) cost; a host whose
    // libm sin/cos differs surfaces as a typed error here instead of
    // silently non-identical rankings.
    if meta.n_entities > 0 {
        let (sin, cos) = trig.f32_parts().expect("from_f32_parts stores f32");
        for row in [0, meta.n_entities - 1] {
            let want = model.entity_trig_rows_with(row..row + 1, Precision::F32);
            let (ws, wc) = want.f32_parts().expect("row build is f32");
            let lo = row * meta.dim;
            let hi = lo + meta.dim;
            let same = sin[lo..hi]
                .iter()
                .zip(ws)
                .all(|(a, b)| a.to_bits() == b.to_bits())
                && cos[lo..hi]
                    .iter()
                    .zip(wc)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                return Err(malformed(
                    TAG_TRIG,
                    format!("stored trig row {row} disagrees with the model's parameters"),
                ));
            }
        }
    }

    Ok((graph, model, trig))
}

/// Decodes only the framing and META section — counts, sizes and the
/// section table — after verifying every checksum. Used by
/// `halk snapshot inspect`.
pub fn inspect_bytes(buf: &[u8]) -> Result<SnapshotMeta, SnapError> {
    let (version, sections) = decode_sections(buf)?;
    let meta = parse_meta(require(&sections, TAG_META)?)?;
    Ok(SnapshotMeta {
        version,
        n_entities: meta.n_entities,
        n_relations: meta.n_relations,
        n_triples: meta.n_triples,
        n_groups: meta.n_groups,
        dim: meta.dim,
        n_params: meta.n_params,
        n_scalars: meta.n_scalars,
        total_bytes: buf.len(),
        sections: sections
            .iter()
            .map(|(t, p)| (tag_name(*t), p.len()))
            .collect(),
    })
}

// -------------------------------------------------------------------- files

fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    path.with_file_name(format!(".{name}.tmp"))
}

/// Writes a snapshot crash-safely: temp sibling + fsync + atomic rename,
/// so a crash mid-write leaves either the previous snapshot or none.
pub fn write_file(path: &Path, graph: &Graph, model: &HalkModel) -> io::Result<()> {
    let data = to_bytes(graph, model);
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&data)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Directory fsync is a durability nicety; some platforms refuse
            // to open directories, so a failure here is not fatal.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads a snapshot file; decode defects surface as
/// `io::ErrorKind::InvalidData` wrapping the [`SnapError`].
pub fn read_file(path: &Path) -> io::Result<(Graph, HalkModel, EntityTrig)> {
    let data = std::fs::read(path)?;
    from_bytes(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// [`inspect_bytes`] for a file on disk.
pub fn inspect_file(path: &Path) -> io::Result<SnapshotMeta> {
    let data = std::fs::read(path)?;
    inspect_bytes(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{generate, SynthConfig};
    use halk_logic::Query;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_deployment() -> (Graph, HalkModel) {
        let cfg = SynthConfig {
            n_entities: 60,
            ..SynthConfig::fb237_like()
        };
        let graph = generate(&cfg, &mut StdRng::seed_from_u64(7));
        let model = HalkModel::new(&graph, HalkConfig::tiny());
        (graph, model)
    }

    fn probe_query(graph: &Graph) -> Query {
        let t = graph.triples()[0];
        Query::atom(t.h, t.r)
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let (graph, model) = small_deployment();
        let buf = to_bytes(&graph, &model);
        let (g2, m2, trig2) = from_bytes(&buf).expect("clean snapshot decodes");

        assert_eq!(g2.n_entities(), graph.n_entities());
        assert_eq!(g2.n_relations(), graph.n_relations());
        assert_eq!(g2.triples(), graph.triples());
        for r in 0..graph.n_relations() {
            assert_eq!(g2.out_csr(r), graph.out_csr(r));
            assert_eq!(g2.inv_csr(r), graph.inv_csr(r));
        }

        for e in graph.entities() {
            assert_eq!(m2.grouping().mask_of(e), model.grouping().mask_of(e));
        }
        assert_eq!(
            serde_json::to_string(m2.config()).unwrap(),
            serde_json::to_string(model.config()).unwrap()
        );

        // The restored model scores bit-identically.
        let q = probe_query(&graph);
        assert_eq!(model.score_all(&q), m2.score_all(&q));

        // The shipped trig table equals a fresh build from the model, so a
        // snapshot-booted server's fast path is the same bytes too.
        let fresh = model.entity_trig_with(Precision::F32);
        let (fs, fc) = fresh.f32_parts().unwrap();
        let (ss, sc) = trig2.f32_parts().unwrap();
        assert!(fs.iter().zip(ss).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(fc.iter().zip(sc).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn reencode_is_deterministic() {
        let (graph, model) = small_deployment();
        let buf = to_bytes(&graph, &model);
        let (g2, m2, _trig) = from_bytes(&buf).unwrap();
        assert_eq!(to_bytes(&g2, &m2), buf);
    }

    #[test]
    fn optimizer_state_is_dropped_but_step_count_survives() {
        let (graph, mut model) = small_deployment();
        let tc = halk_core::TrainConfig {
            steps: 3,
            threads: 1,
            ..halk_core::TrainConfig::tiny()
        };
        halk_core::train_model(&mut model, &graph, &[halk_logic::Structure::P1], &tc).unwrap();
        assert!(model.param_store().steps_taken() > 0);

        let buf = to_bytes(&graph, &model);
        let (g2, m2, _trig) = from_bytes(&buf).unwrap();
        // Step count travels (it feeds status displays and LR schedules);
        // Adam moments do not — they restore as zeros, so re-encoding the
        // decoded deployment reproduces the file even though the trained
        // original carries nonzero moments the snapshot never saw.
        assert_eq!(
            m2.param_store().steps_taken(),
            model.param_store().steps_taken()
        );
        let q = probe_query(&graph);
        assert_eq!(model.score_all(&q), m2.score_all(&q));
        assert_eq!(to_bytes(&g2, &m2), buf);
    }

    #[test]
    fn inspect_reports_shapes_and_sections() {
        let (graph, model) = small_deployment();
        let buf = to_bytes(&graph, &model);
        let meta = inspect_bytes(&buf).unwrap();
        assert_eq!(meta.version, VERSION);
        assert_eq!(meta.n_entities, graph.n_entities());
        assert_eq!(meta.n_relations, graph.n_relations());
        assert_eq!(meta.n_triples, graph.n_triples());
        assert_eq!(meta.n_groups, model.grouping().n_groups());
        assert_eq!(meta.dim, model.config().dim);
        assert_eq!(meta.n_params, model.param_store().len());
        assert_eq!(meta.n_scalars, model.param_store().num_scalars());
        assert_eq!(meta.total_bytes, buf.len());
        let names: Vec<&str> = meta.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["META", "CONF", "GRPH", "GROU", "PARM", "TRIG"]);
        // Section payloads plus framing account for the whole file.
        let payload: usize = meta.sections.iter().map(|(_, b)| b).sum();
        let framing = 8 + 4 + 4 + meta.sections.len() * (4 + 8 + 4) + 4;
        assert_eq!(payload + framing, buf.len());
        // PARM is values-only: step u64 + shapes + 4 bytes per scalar,
        // a third of what the Adam-carrying checkpoint stores.
        let parm = meta.sections.iter().find(|(n, _)| n == "PARM").unwrap().1;
        assert_eq!(parm, 8 + meta.n_params * 8 + meta.n_scalars * 4);
        // TRIG is the two SoA halves of the full-precision table.
        let trig = meta.sections.iter().find(|(n, _)| n == "TRIG").unwrap().1;
        assert_eq!(trig, meta.n_entities * meta.dim * 8);
    }

    /// `unwrap_err` needs `Debug` on the success type, which `HalkModel`
    /// does not derive; this extracts the error directly.
    fn decode_err(buf: &[u8]) -> SnapError {
        match from_bytes(buf) {
            Ok(_) => panic!("decode unexpectedly succeeded"),
            Err(e) => e,
        }
    }

    #[test]
    fn typed_errors_for_bad_framing() {
        let (graph, model) = small_deployment();
        let buf = to_bytes(&graph, &model);

        assert_eq!(decode_err(b"junk"), SnapError::BadMagic);

        let mut versioned = buf.clone();
        versioned[8] = 42;
        assert!(matches!(
            decode_err(&versioned),
            // Version byte flips also shift the file CRC; either typed
            // rejection is correct, silence is not.
            SnapError::BadVersion(42) | SnapError::FileChecksum { .. }
        ));

        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 9);
        assert!(matches!(
            decode_err(&truncated),
            SnapError::FileChecksum { .. }
        ));

        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            decode_err(&flipped),
            SnapError::FileChecksum { .. }
        ));

        let mut crc_hit = buf.clone();
        let last = crc_hit.len() - 1;
        crc_hit[last] ^= 0xFF;
        assert!(matches!(
            decode_err(&crc_hit),
            SnapError::FileChecksum { .. }
        ));
    }

    #[test]
    fn file_roundtrip_and_atomicity() {
        let dir = std::env::temp_dir().join("halk_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deploy.snap");
        let (graph, model) = small_deployment();
        write_file(&path, &graph, &model).unwrap();
        assert!(!temp_sibling(&path).exists());
        let (g2, m2, _trig) = read_file(&path).unwrap();
        let q = probe_query(&graph);
        assert_eq!(model.score_all(&q), m2.score_all(&q));
        assert_eq!(g2.n_triples(), graph.n_triples());
        assert_eq!(
            inspect_file(&path).unwrap(),
            inspect_bytes(&to_bytes(&graph, &model)).unwrap()
        );
    }
}
