//! Property tests for the snapshot codec: no input — valid, corrupted or
//! random — may panic the decoder, and every single-byte corruption of a
//! valid snapshot is *detected* (typed [`SnapError`]), never a silently
//! different graph or model.

use halk_core::{HalkConfig, HalkModel};
use halk_kg::{generate, SynthConfig};
use halk_snap::{from_bytes, inspect_bytes, to_bytes, SnapError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One small deployment's snapshot bytes, built once: `HalkModel::new` is
/// the expensive part and the corruption cases only need a fixed valid
/// buffer to deface.
fn snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let cfg = SynthConfig {
            n_entities: 40,
            ..SynthConfig::fb237_like()
        };
        let graph = generate(&cfg, &mut StdRng::seed_from_u64(13));
        let model = HalkModel::new(&graph, HalkConfig::tiny());
        to_bytes(&graph, &model)
    })
}

/// Extracts the decode error without needing `Debug` on the success pair.
fn decode_err(buf: &[u8]) -> Option<SnapError> {
    match from_bytes(buf) {
        Ok(_) => None,
        Err(e) => Some(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte corruption anywhere in the file — header, section
    /// framing, payloads, either CRC — yields a typed error, never a panic
    /// and never a silently-wrong deployment. The whole-file CRC makes
    /// this deterministic: a changed byte is caught before structural
    /// decoding even starts.
    #[test]
    fn single_byte_corruption_is_always_detected(
        pos_seed in any::<u64>(),
        delta in 1u16..256,
    ) {
        let buf = snapshot();
        prop_assert!(from_bytes(buf).is_ok());

        let mut corrupted = buf.to_vec();
        let pos = (pos_seed % buf.len() as u64) as usize;
        corrupted[pos] = corrupted[pos].wrapping_add(delta as u8); // delta in 1..=255: a real change
        let err = decode_err(&corrupted);
        prop_assert!(err.is_some(), "corruption at byte {} went undetected", pos);
        // Inspect must reject the same byte, and both errors must format.
        prop_assert!(inspect_bytes(&corrupted).is_err());
        let _ = format!("{}", err.unwrap());
    }

    /// Truncating the snapshot anywhere is detected.
    #[test]
    fn truncation_is_always_detected(cut_seed in any::<u64>()) {
        let buf = snapshot();
        let cut = (cut_seed % buf.len() as u64) as usize; // 0..len-1: always shorter
        prop_assert!(decode_err(&buf[..cut]).is_some());
        prop_assert!(inspect_bytes(&buf[..cut]).is_err());
    }

    /// Arbitrary byte soup never panics the decoder or the inspector.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_err(&bytes);
        let _ = inspect_bytes(&bytes);
    }
}

/// Every byte of the header and section framing (and a sample of each
/// payload) is covered exhaustively, not just by random sampling: the
/// structural fields are where a lucky flip could in principle re-frame
/// the file, so they get the dense sweep.
#[test]
fn header_and_framing_bytes_swept_exhaustively() {
    let buf = snapshot();
    // Header + first section frame, plus a stride through the rest.
    let dense = 0..64.min(buf.len());
    let strided = (64..buf.len()).step_by(97);
    for pos in dense.chain(strided) {
        for flip in [0x01u8, 0x80] {
            let mut corrupted = buf.to_vec();
            corrupted[pos] ^= flip;
            assert!(
                decode_err(&corrupted).is_some(),
                "flip {flip:#04x} at byte {pos} went undetected"
            );
        }
    }
}

/// A decoded snapshot is the deployment that was written — spot-checked
/// here end-to-end so the corruption results above mean something.
#[test]
fn clean_decode_reproduces_the_graph() {
    let buf = snapshot();
    let (graph, model, trig) = from_bytes(buf).unwrap();
    assert!(graph.n_triples() > 0);
    assert_eq!(model.n_entities(), graph.n_entities());
    assert_eq!(trig.n_entities(), graph.n_entities());
    assert_eq!(to_bytes(&graph, &model), buf);
}
