//! The GFinder-style best-effort subgraph matcher.
//!
//! Mirrors the algorithmic shape of G-Finder (Liu et al., IEEE BigData
//! 2019): a **dynamic candidate index** built per query (relation-profile
//! filtering over all entities — its construction time is part of the online
//! time, §IV-E), followed by a **best-effort backtracking join** that
//! expands variables in a connectivity-aware order and tolerates a bounded
//! number of missing edges with a score penalty. Exactly the class of
//! algorithm whose cost grows steeply with query size and candidate-set
//! size (Table VI) and whose accuracy suffers on incomplete graphs — the
//! two properties every comparison in §IV-D/§IV-G rests on.

use crate::pattern::{flatten, Pattern, PatternQuery, VarId};
use halk_kg::{EntityId, Graph, RelationId};
use halk_logic::{to_dnf, Query};
use std::collections::HashMap;

/// Tuning knobs for the best-effort search.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Maximum partial assignments kept per expansion level (beam width).
    pub beam: usize,
    /// Score penalty per unsatisfied edge (best-effort tolerance).
    pub missing_edge_penalty: f32,
    /// Maximum missing edges tolerated per assignment.
    pub max_missing: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            // A wide beam approximates exhaustive best-effort search — the
            // regime where G-Finder's published costs live and where
            // candidate pruning (§IV-D) pays off.
            beam: 4096,
            missing_edge_penalty: 1.0,
            max_missing: 1,
        }
    }
}

/// A matched answer: entity plus its best assignment score (higher =
/// more query edges satisfied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The entity bound to the target variable.
    pub entity: EntityId,
    /// Best score over assignments binding it.
    pub score: f32,
}

/// The matching engine over one data graph.
pub struct Matcher<'g> {
    graph: &'g Graph,
    cfg: MatchConfig,
}

impl<'g> Matcher<'g> {
    /// A matcher with default configuration.
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            cfg: MatchConfig::default(),
        }
    }

    /// A matcher with explicit configuration.
    pub fn with_config(graph: &'g Graph, cfg: MatchConfig) -> Self {
        Self { graph, cfg }
    }

    /// Answers a full query (any operators): DNF over unions, exclusion
    /// patterns for difference/negation, best-effort matching per branch.
    /// Returns matches sorted by descending score.
    pub fn answer(&self, query: &Query) -> Vec<Match> {
        let mut best: HashMap<u32, f32> = HashMap::new();
        for branch in to_dnf(query) {
            let pq = flatten(&branch);
            for m in self.answer_pattern(&pq) {
                let slot = best.entry(m.entity.0).or_insert(f32::MIN);
                if m.score > *slot {
                    *slot = m.score;
                }
            }
        }
        let mut out: Vec<Match> = best
            .into_iter()
            .map(|(e, score)| Match {
                entity: EntityId(e),
                score,
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.entity.cmp(&b.entity))
        });
        out
    }

    /// The answer set as plain entities (score order).
    pub fn answer_entities(&self, query: &Query) -> Vec<EntityId> {
        self.answer(query).into_iter().map(|m| m.entity).collect()
    }

    fn answer_pattern(&self, pq: &PatternQuery) -> Vec<Match> {
        let mut positives = if pq.pattern.edges.is_empty() && pq.pattern.pinned.is_empty() {
            // Bare negation: the positive side is the whole universe.
            self.graph
                .entities()
                .map(|e| Match {
                    entity: e,
                    score: 0.0,
                })
                .collect()
        } else {
            self.match_conjunctive(&pq.pattern)
        };
        for ex in &pq.exclusions {
            let excluded: Vec<Match> = self.match_conjunctive(ex);
            let mut drop = vec![false; self.graph.n_entities()];
            for m in excluded {
                // Only confident matches exclude (full-score assignments);
                // best-effort partial matches are not proof of membership.
                if m.score >= ex.edges.len() as f32 - 1e-6 {
                    drop[m.entity.index()] = true;
                }
            }
            positives.retain(|m| !drop[m.entity.index()]);
        }
        positives
    }

    /// Core routine: candidate-index construction + best-effort
    /// backtracking join over one conjunctive pattern.
    fn match_conjunctive(&self, pattern: &Pattern) -> Vec<Match> {
        let order = pattern.search_order();
        let index = self.build_candidate_index(pattern);

        // Partial assignment: var -> entity (u32::MAX = unbound).
        #[derive(Clone)]
        struct Assignment {
            bound: Vec<u32>,
            score: f32,
            missing: usize,
        }
        let unbound = u32::MAX;
        let mut beam = vec![Assignment {
            bound: vec![unbound; pattern.n_vars],
            score: 0.0,
            missing: 0,
        }];
        let pinned: HashMap<VarId, EntityId> = pattern.pinned.iter().copied().collect();

        for &var in &order {
            let mut next: Vec<Assignment> = Vec::new();
            for asg in &beam {
                // Candidates for `var` given already-bound neighbors.
                let cands: Vec<u32> = if let Some(&e) = pinned.get(&var) {
                    vec![e.0]
                } else {
                    self.candidates_given(pattern, &asg.bound, var, &index)
                };
                for cand in cands {
                    let mut new = asg.clone();
                    new.bound[var] = cand;
                    // Score all edges that just became fully bound.
                    let mut ok = true;
                    for e in &pattern.edges {
                        if (e.from == var || e.to == var)
                            && new.bound[e.from] != unbound
                            && new.bound[e.to] != unbound
                        {
                            let present = self.graph.has(
                                EntityId(new.bound[e.from]),
                                e.rel,
                                EntityId(new.bound[e.to]),
                            );
                            if present {
                                new.score += 1.0;
                            } else {
                                new.missing += 1;
                                new.score -= self.cfg.missing_edge_penalty;
                                if new.missing > self.cfg.max_missing {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if ok {
                        next.push(new);
                    }
                }
            }
            // Beam prune: keep the best partial assignments.
            next.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            next.truncate(self.cfg.beam);
            beam = next;
            if beam.is_empty() {
                return Vec::new();
            }
        }

        // Collect best score per target entity.
        let mut best: HashMap<u32, f32> = HashMap::new();
        for asg in &beam {
            let t = asg.bound[pattern.target];
            if t == unbound {
                continue;
            }
            let slot = best.entry(t).or_insert(f32::MIN);
            if asg.score > *slot {
                *slot = asg.score;
            }
        }
        best.into_iter()
            .map(|(e, score)| Match {
                entity: EntityId(e),
                score,
            })
            .collect()
    }

    /// The dynamic candidate index: for every variable, the entities whose
    /// relation profile is compatible with the variable's incident edges
    /// (has ≥1 in-edge of each incoming label or ≥1 out-edge of each
    /// outgoing label). Built per query — GFinder's index is dynamic and its
    /// construction is charged to the online time (§IV-E).
    fn build_candidate_index(&self, pattern: &Pattern) -> Vec<Vec<u32>> {
        let mut in_labels: Vec<Vec<RelationId>> = vec![Vec::new(); pattern.n_vars];
        let mut out_labels: Vec<Vec<RelationId>> = vec![Vec::new(); pattern.n_vars];
        for e in &pattern.edges {
            in_labels[e.to].push(e.rel);
            out_labels[e.from].push(e.rel);
        }
        (0..pattern.n_vars)
            .map(|v| {
                self.graph
                    .entities()
                    .filter(|&ent| {
                        in_labels[v]
                            .iter()
                            .all(|&r| !self.graph.inverse_neighbors(ent, r).is_empty())
                            && out_labels[v]
                                .iter()
                                .all(|&r| !self.graph.neighbors(ent, r).is_empty())
                    })
                    .map(|e| e.0)
                    .collect()
            })
            .collect()
    }

    /// Candidates for `var`: propagated from bound neighbors when possible,
    /// otherwise the profile-filtered index list.
    fn candidates_given(
        &self,
        pattern: &Pattern,
        bound: &[u32],
        var: VarId,
        index: &[Vec<u32>],
    ) -> Vec<u32> {
        let unbound = u32::MAX;
        let mut from_neighbors: Option<Vec<u32>> = None;
        for e in &pattern.edges {
            let propagated: Option<Vec<u32>> = if e.to == var && bound[e.from] != unbound {
                Some(
                    self.graph
                        .neighbors(EntityId(bound[e.from]), e.rel)
                        .to_vec(),
                )
            } else if e.from == var && bound[e.to] != unbound {
                Some(
                    self.graph
                        .inverse_neighbors(EntityId(bound[e.to]), e.rel)
                        .to_vec(),
                )
            } else {
                None
            };
            if let Some(p) = propagated {
                from_neighbors = Some(match from_neighbors {
                    // Keep the union: best-effort matching must not drop a
                    // candidate that satisfies one constraint but not both.
                    Some(mut acc) => {
                        acc.extend(p);
                        acc.sort_unstable();
                        acc.dedup();
                        acc
                    }
                    None => p,
                });
            }
        }
        match from_neighbors {
            Some(c) if !c.is_empty() => c,
            // No bound neighbor (or dead end): fall back to the index.
            _ => index[var].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{generate, SynthConfig, Triple};
    use halk_logic::{answers, Sampler, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Graph {
        Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(2, 1, 3),
                Triple::new(2, 1, 4),
                Triple::new(5, 0, 2),
            ],
        )
    }

    #[test]
    fn matches_1p_exactly_on_complete_graph() {
        let g = toy();
        let m = Matcher::new(&g);
        let q = Query::atom(EntityId(0), RelationId(0));
        let got: Vec<u32> = m.answer_entities(&q).iter().map(|e| e.0).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn full_score_matches_are_exact_answers() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(3));
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        for s in [Structure::P2, Structure::I2, Structure::Pi] {
            let gq = sampler.sample(s, &mut rng).expect("groundable");
            let truth = answers(&gq.query, &g);
            let full_score = gq.query.relations().len() as f32;
            let m = Matcher::new(&g);
            for hit in m.answer(&gq.query) {
                if hit.score >= full_score - 1e-6 {
                    assert!(
                        truth.contains(hit.entity),
                        "{s}: full-score match {} not a true answer",
                        hit.entity
                    );
                }
            }
        }
    }

    #[test]
    fn difference_excludes_subtrahend_matches() {
        let g = toy();
        let m = Matcher::new(&g);
        // {1,2} − {2} = {1}
        let q = Query::Difference(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(5), RelationId(0)),
        ]);
        let got: Vec<u32> = m
            .answer(&q)
            .iter()
            .filter(|h| h.score > 0.5)
            .map(|h| h.entity.0)
            .collect();
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn union_merges_branches() {
        let g = toy();
        let m = Matcher::new(&g);
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(1), RelationId(1)),
        ]);
        let mut got: Vec<u32> = m
            .answer(&q)
            .iter()
            .filter(|h| h.score > 0.5)
            .map(|h| h.entity.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn incomplete_graph_hurts_accuracy() {
        // Remove an edge needed by the chain; the exact traversal answer
        // disappears, and only best-effort partial matches remain (lower
        // score) — the robustness deficit embedding methods fix.
        let full = toy();
        let broken = Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
                Triple::new(5, 0, 2),
            ],
        );
        let q = Query::atom(EntityId(0), RelationId(0)).project(RelationId(1));
        let on_full = Matcher::new(&full);
        let on_broken = Matcher::new(&broken);
        let full_best = on_full.answer(&q).first().map(|m| m.score).unwrap_or(0.0);
        let broken_best: f32 = on_broken
            .answer(&q)
            .iter()
            .map(|m| m.score)
            .fold(f32::MIN, f32::max);
        assert!(full_best > broken_best, "{full_best} vs {broken_best}");
    }

    #[test]
    fn beam_limits_work() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(5));
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(6);
        let gq = sampler.sample(Structure::P2, &mut rng).unwrap();
        let narrow = Matcher::with_config(
            &g,
            MatchConfig {
                beam: 4,
                ..MatchConfig::default()
            },
        );
        let wide = Matcher::new(&g);
        // A narrow beam returns a subset of (or equal) results.
        assert!(narrow.answer(&gq.query).len() <= wide.answer(&gq.query).len());
    }

    #[test]
    fn sorted_by_descending_score() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(7));
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(8);
        let gq = sampler.sample(Structure::Pi, &mut rng).unwrap();
        let res = Matcher::new(&g).answer(&gq.query);
        for w in res.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
