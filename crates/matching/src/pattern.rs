//! Flattening computation trees into query-graph patterns.
//!
//! Subgraph matchers operate on the *logical query graph* (Fig. 1a of the
//! paper), not the computation tree: variables, labeled edges between them,
//! and grounded anchors. This module flattens each union-free conjunctive
//! branch into a [`Pattern`]; difference subtrahends and negated sub-queries
//! become separate *exclusion patterns* whose matched targets are removed
//! from the result (exact set semantics on whatever graph the matcher
//! sees).

use halk_kg::{EntityId, RelationId};
use halk_logic::Query;

/// A variable node of the pattern (index into [`Pattern::n_vars`]).
pub type VarId = usize;

/// One labeled edge of the query graph: `from ─rel→ to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternEdge {
    /// Source variable.
    pub from: VarId,
    /// Edge label.
    pub rel: RelationId,
    /// Target variable.
    pub to: VarId,
}

/// A conjunctive query-graph pattern.
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    /// Number of variables (0..n_vars).
    pub n_vars: usize,
    /// Variables pinned to concrete entities (the anchors).
    pub pinned: Vec<(VarId, EntityId)>,
    /// Edge constraints.
    pub edges: Vec<PatternEdge>,
    /// The answer variable.
    pub target: VarId,
}

impl Pattern {
    fn new_var(&mut self) -> VarId {
        self.n_vars += 1;
        self.n_vars - 1
    }

    /// Variables in a dependency-friendly order: pinned first, then by first
    /// appearance as an edge target/source reachable from pinned ones.
    pub fn search_order(&self) -> Vec<VarId> {
        let mut placed = vec![false; self.n_vars];
        let mut order = Vec::with_capacity(self.n_vars);
        for &(v, _) in &self.pinned {
            if !placed[v] {
                placed[v] = true;
                order.push(v);
            }
        }
        // Repeatedly add variables adjacent to already-placed ones.
        loop {
            let mut progressed = false;
            for e in &self.edges {
                if placed[e.from] && !placed[e.to] {
                    placed[e.to] = true;
                    order.push(e.to);
                    progressed = true;
                } else if placed[e.to] && !placed[e.from] {
                    placed[e.from] = true;
                    order.push(e.from);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Disconnected leftovers (shouldn't happen for well-formed queries).
        for (v, done) in placed.iter().enumerate() {
            if !done {
                order.push(v);
            }
        }
        order
    }
}

/// A pattern plus the exclusion patterns contributed by difference and
/// negation operators.
#[derive(Debug, Clone)]
pub struct PatternQuery {
    /// The positive conjunctive pattern.
    pub pattern: Pattern,
    /// Patterns whose matched targets are excluded from the answer.
    pub exclusions: Vec<Pattern>,
}

/// Flattens one union-free conjunctive query into a [`PatternQuery`].
///
/// # Panics
/// If the query still contains a union (run DNF first).
pub fn flatten(query: &Query) -> PatternQuery {
    let mut pattern = Pattern::default();
    let mut exclusions = Vec::new();
    let target = build(query, &mut pattern, &mut exclusions);
    pattern.target = target;
    PatternQuery {
        pattern,
        exclusions,
    }
}

/// Recursively builds pattern nodes; returns the variable representing the
/// sub-query's answers.
fn build(q: &Query, p: &mut Pattern, exclusions: &mut Vec<Pattern>) -> VarId {
    match q {
        Query::Anchor(e) => {
            let v = p.new_var();
            p.pinned.push((v, *e));
            v
        }
        Query::Projection { rel, input } => {
            let from = build(input, p, exclusions);
            let to = p.new_var();
            p.edges.push(PatternEdge {
                from,
                rel: *rel,
                to,
            });
            to
        }
        Query::Intersection(qs) => {
            // All branches share the same output variable: build the first
            // branch, then alias the rest by rewriting their target var.
            let shared = build(&qs[0], p, exclusions);
            for sub in &qs[1..] {
                match sub {
                    Query::Negation(inner) => {
                        // I(…, ¬B): matched B-targets are excluded.
                        exclusions.push(standalone(inner));
                    }
                    _ => {
                        let v = build(sub, p, exclusions);
                        alias(p, v, shared);
                    }
                }
            }
            shared
        }
        Query::Difference(qs) => {
            let out = build(&qs[0], p, exclusions);
            for sub in &qs[1..] {
                exclusions.push(standalone(sub));
            }
            out
        }
        Query::Negation(inner) => {
            // A bare negation: everything except the matched inner targets.
            // Representable only as an exclusion over the full universe; the
            // matcher special-cases an empty positive pattern.
            exclusions.push(standalone(inner));
            p.new_var()
        }
        Query::Union(_) => panic!("flatten requires union-free queries (run DNF first)"),
    }
}

/// Builds a self-contained pattern for an exclusion sub-query.
fn standalone(q: &Query) -> Pattern {
    let mut p = Pattern::default();
    let mut nested = Vec::new();
    let target = build(q, &mut p, &mut nested);
    p.target = target;
    // Nested exclusions inside exclusions (e.g. a − (b − c)) are rare in the
    // workload; fold them by ignoring the inner exclusion (a conservative
    // over-exclusion never adds false positives to the outer answer).
    p
}

/// Rewrites every occurrence of variable `from` to `to` (merging the output
/// variables of intersection branches).
fn alias(p: &mut Pattern, from: VarId, to: VarId) {
    for e in &mut p.edges {
        if e.from == from {
            e.from = to;
        }
        if e.to == from {
            e.to = to;
        }
    }
    for pin in &mut p.pinned {
        if pin.0 == from {
            pin.0 = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::EntityId;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }
    fn r(i: u32) -> RelationId {
        RelationId(i)
    }

    #[test]
    fn flatten_1p() {
        let q = Query::atom(e(3), r(1));
        let pq = flatten(&q);
        assert_eq!(pq.pattern.n_vars, 2);
        assert_eq!(pq.pattern.pinned, vec![(0, e(3))]);
        assert_eq!(pq.pattern.edges.len(), 1);
        assert_eq!(pq.pattern.target, 1);
        assert!(pq.exclusions.is_empty());
    }

    #[test]
    fn flatten_2p_chain() {
        let q = Query::atom(e(0), r(0)).project(r(1));
        let pq = flatten(&q);
        assert_eq!(pq.pattern.edges.len(), 2);
        // Chain: anchor -> v1 -> v2 (target).
        assert_eq!(pq.pattern.edges[0].to, pq.pattern.edges[1].from);
        assert_eq!(pq.pattern.target, pq.pattern.edges[1].to);
    }

    #[test]
    fn flatten_intersection_merges_targets() {
        let q = Query::Intersection(vec![Query::atom(e(0), r(0)), Query::atom(e(1), r(1))]);
        let pq = flatten(&q);
        // Both edges point at the shared target variable.
        assert_eq!(pq.pattern.edges[0].to, pq.pattern.edges[1].to);
        assert_eq!(pq.pattern.target, pq.pattern.edges[0].to);
        assert_eq!(pq.pattern.pinned.len(), 2);
    }

    #[test]
    fn flatten_difference_produces_exclusions() {
        let q = Query::Difference(vec![Query::atom(e(0), r(0)), Query::atom(e(1), r(0))]);
        let pq = flatten(&q);
        assert_eq!(pq.exclusions.len(), 1);
        assert_eq!(pq.exclusions[0].pinned, vec![(0, e(1))]);
    }

    #[test]
    fn flatten_negation_in_intersection() {
        let q = Query::Intersection(vec![
            Query::atom(e(0), r(0)),
            Query::atom(e(1), r(1)).negate(),
        ]);
        let pq = flatten(&q);
        assert_eq!(pq.pattern.edges.len(), 1);
        assert_eq!(pq.exclusions.len(), 1);
    }

    #[test]
    fn search_order_starts_with_anchors() {
        let q = Query::Intersection(vec![Query::atom(e(0), r(0)), Query::atom(e(1), r(1))])
            .project(r(2));
        let pq = flatten(&q);
        let order = pq.pattern.search_order();
        assert_eq!(order.len(), pq.pattern.n_vars);
        let pinned: Vec<VarId> = pq.pattern.pinned.iter().map(|&(v, _)| v).collect();
        assert!(pinned.contains(&order[0]));
    }

    #[test]
    #[should_panic(expected = "union-free")]
    fn flatten_rejects_unions() {
        let q = Query::Union(vec![Query::atom(e(0), r(0)), Query::atom(e(1), r(0))]);
        let _ = flatten(&q);
    }
}
