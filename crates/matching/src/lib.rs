//! GFinder-style approximate subgraph matching (the paper's
//! subgraph-matching competitor and pruning consumer, §IV-D/E/G).
//!
//! [`pattern`] flattens computation trees into query-graph patterns;
//! [`matcher`] runs a best-effort backtracking join over a per-query dynamic
//! candidate index. [`answer_accuracy`] provides the answer-set accuracy measure
//! the Table VI / Fig. 6a comparisons report.

pub mod matcher;
pub mod pattern;

pub use matcher::{MatchConfig, Matcher};
pub use pattern::{flatten, Pattern, PatternQuery};

use halk_kg::EntityId;
use halk_logic::EntitySet;

/// Answer-set accuracy of a ranked prediction against ground truth: the
/// fraction of true answers retrieved within the top-`|truth|` predictions
/// (recall@|truth|, the measure behind the paper's "Acc" rows).
pub fn answer_accuracy(predicted: &[EntityId], truth: &EntitySet) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let k = truth.len();
    let hits = predicted
        .iter()
        .take(k)
        .filter(|e| truth.contains(**e))
        .count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_perfect_and_partial() {
        let truth = EntitySet::from_iter(10, [EntityId(1), EntityId(2)]);
        assert_eq!(
            answer_accuracy(&[EntityId(1), EntityId(2), EntityId(3)], &truth),
            1.0
        );
        assert_eq!(answer_accuracy(&[EntityId(1), EntityId(5)], &truth), 0.5);
        assert_eq!(answer_accuracy(&[], &truth), 0.0);
    }

    #[test]
    fn accuracy_empty_truth_is_one() {
        let truth = EntitySet::empty(10);
        assert_eq!(answer_accuracy(&[EntityId(0)], &truth), 1.0);
    }

    #[test]
    fn accuracy_only_counts_top_k() {
        // Truth has 1 answer; it appears at position 2 → not in top-1.
        let truth = EntitySet::from_iter(10, [EntityId(7)]);
        assert_eq!(answer_accuracy(&[EntityId(3), EntityId(7)], &truth), 0.0);
    }
}
