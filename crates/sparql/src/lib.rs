//! SPARQL front-end for the HaLk reproduction (§IV-F, Fig. 7).
//!
//! The paper demonstrates HaLk "integrated into the broad landscape of
//! query answering as the query executor": a SPARQL query is parsed, the
//! **Adaptor** maps its graph patterns onto the five logical operators, and
//! any query executor — HaLk, a baseline, the exact engine or the matcher —
//! answers the resulting computation tree. This crate provides the parser
//! ([`parser`]) for the demonstrated subset (basic graph patterns, `UNION`,
//! `MINUS`, `FILTER NOT EXISTS`) and the Adaptor ([`adaptor`]).

pub mod adaptor;
pub mod lexer;
pub mod parser;

pub use adaptor::{adapt, AdaptError};
pub use parser::{parse, ParseError, SelectQuery};

use halk_logic::Query;

/// Convenience: parse a SPARQL string and adapt it to a logical query in
/// one call.
pub fn sparql_to_query(input: &str) -> Result<Query, SparqlError> {
    let parsed = parse(input)?;
    Ok(adapt(&parsed)?)
}

/// Any error from the SPARQL front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum SparqlError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// The pattern cannot be mapped onto the operator set.
    Adapt(AdaptError),
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparqlError::Parse(e) => write!(f, "{e}"),
            SparqlError::Adapt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SparqlError {}

impl From<ParseError> for SparqlError {
    fn from(e: ParseError) -> Self {
        SparqlError::Parse(e)
    }
}

impl From<AdaptError> for SparqlError {
    fn from(e: AdaptError) -> Self {
        SparqlError::Adapt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{Graph, Triple};
    use halk_logic::answers;

    #[test]
    fn end_to_end_sparql_on_exact_engine() {
        // Fig. 7 shape on a toy graph: directors who won an award (r0 from
        // e0) and are American (r1 from e5), projected to their films (r2).
        let g = Graph::from_triples(
            8,
            3,
            vec![
                Triple::new(0, 0, 2), // e0 -award-> director 2
                Triple::new(0, 0, 3),
                Triple::new(5, 1, 2), // e5 -nationality⁻¹-> director 2
                Triple::new(2, 2, 6), // director 2 -directed-> film 6
                Triple::new(3, 2, 7),
            ],
        );
        let q = sparql_to_query("SELECT ?film WHERE { e:0 r:0 ?d . e:5 r:1 ?d . ?d r:2 ?film . }")
            .unwrap();
        let ans = answers(&q, &g);
        assert_eq!(ans.to_vec(), vec![halk_kg::EntityId(6)]);
    }

    #[test]
    fn error_types_propagate() {
        assert!(matches!(
            sparql_to_query("SELECT WHERE { }"),
            Err(SparqlError::Parse(_))
        ));
        assert!(matches!(
            sparql_to_query("SELECT ?x WHERE { ?y r:0 ?x . }"),
            Err(SparqlError::Adapt(_))
        ));
    }

    #[test]
    fn display_formats_both_errors() {
        let e1 = sparql_to_query("SELECT").unwrap_err();
        assert!(e1.to_string().contains("parse error"));
        let e2 = sparql_to_query("SELECT ?x WHERE { ?y r:0 ?x . }").unwrap_err();
        assert!(e2.to_string().contains("no defining triple"));
    }
}
