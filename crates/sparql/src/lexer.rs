//! Tokenizer for the SPARQL subset of the paper's application section
//! (§IV-F, Fig. 7).
//!
//! The subset covers what the query Adaptor maps onto the five logical
//! operators: `SELECT ?x WHERE { … }` with triple patterns, `UNION` blocks,
//! `MINUS` blocks and `FILTER NOT EXISTS` blocks. Entities are written
//! `e:<id>` and relations `r:<id>` (the numeric ids of the benchmark
//! graphs).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `SELECT` keyword.
    Select,
    /// `WHERE` keyword.
    Where,
    /// `UNION` keyword.
    Union,
    /// `MINUS` keyword.
    Minus,
    /// `FILTER` keyword.
    Filter,
    /// `NOT` keyword.
    Not,
    /// `EXISTS` keyword.
    Exists,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.` triple terminator.
    Dot,
    /// A variable, e.g. `?film`.
    Var(String),
    /// An entity IRI `e:<id>`.
    Entity(u32),
    /// A relation IRI `r:<id>`.
    Relation(u32),
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a SPARQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '?' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j] as char).is_alphanumeric()
                    || j < bytes.len() && bytes[j] == b'_'
                {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        pos: i,
                        message: "empty variable name".into(),
                    });
                }
                tokens.push(Token::Var(input[start..j].to_string()));
                i = j;
            }
            _ if c.is_ascii_alphabetic() => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_alphanumeric()
                        || bytes[j] == b':'
                        || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[start..j];
                let tok = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Token::Select,
                    "WHERE" => Token::Where,
                    "UNION" => Token::Union,
                    "MINUS" => Token::Minus,
                    "FILTER" => Token::Filter,
                    "NOT" => Token::Not,
                    "EXISTS" => Token::Exists,
                    _ => {
                        if let Some(id) = word.strip_prefix("e:") {
                            Token::Entity(id.parse().map_err(|_| LexError {
                                pos: start,
                                message: format!("bad entity id in '{word}'"),
                            })?)
                        } else if let Some(id) = word.strip_prefix("r:") {
                            Token::Relation(id.parse().map_err(|_| LexError {
                                pos: start,
                                message: format!("bad relation id in '{word}'"),
                            })?)
                        } else {
                            return Err(LexError {
                                pos: start,
                                message: format!("unknown token '{word}'"),
                            });
                        }
                    }
                };
                tokens.push(tok);
                i = j;
            }
            _ => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character '{c}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_query() {
        let toks = tokenize("SELECT ?x WHERE { e:3 r:1 ?x . }").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Select,
                Token::Var("x".into()),
                Token::Where,
                Token::LBrace,
                Token::Entity(3),
                Token::Relation(1),
                Token::Var("x".into()),
                Token::Dot,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select ?x where { } union minus filter not exists").unwrap();
        assert!(toks.contains(&Token::Union));
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::Filter));
        assert!(toks.contains(&Token::Not));
        assert!(toks.contains(&Token::Exists));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("# a comment\nSELECT ?x # trailing\nWHERE { }").unwrap();
        assert_eq!(toks[0], Token::Select);
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn bad_tokens_error_with_position() {
        let err = tokenize("SELECT ?x WHERE @").unwrap_err();
        assert_eq!(err.pos, 16);
        let err2 = tokenize("SELECT ? WHERE").unwrap_err();
        assert!(err2.message.contains("variable"));
        let err3 = tokenize("e:notanumber").unwrap_err();
        assert!(err3.message.contains("entity"));
    }

    #[test]
    fn underscored_variables() {
        let toks = tokenize("?long_name_1").unwrap();
        assert_eq!(toks, vec![Token::Var("long_name_1".into())]);
    }
}
