//! Recursive-descent parser for the SPARQL subset.
//!
//! Grammar (informal):
//! ```text
//! query      := SELECT var WHERE group
//! group      := '{' item* '}'
//! item       := triple '.'?
//!             | group (UNION group)+
//!             | MINUS group
//!             | FILTER NOT EXISTS group
//! triple     := term relation term
//! term       := var | entity
//! ```

use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// A subject/object position: variable or grounded entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// A grounded entity id.
    Entity(u32),
}

/// One triple pattern `subject relation object`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject term.
    pub subject: Term,
    /// Relation id.
    pub relation: u32,
    /// Object term.
    pub object: Term,
}

/// A group graph pattern: conjunctive triples plus nested algebra blocks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Group {
    /// Conjunctive triple patterns.
    pub triples: Vec<TriplePattern>,
    /// `{g1} UNION {g2} UNION …` alternatives.
    pub unions: Vec<Vec<Group>>,
    /// `MINUS {g}` blocks.
    pub minus: Vec<Group>,
    /// `FILTER NOT EXISTS {g}` blocks.
    pub not_exists: Vec<Group>,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// The projected (answer) variable.
    pub target: String,
    /// The WHERE pattern.
    pub where_clause: Group,
}

/// Parse error with token index.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Index of the offending token (or token count at EOF).
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: 0,
            message: e.to_string(),
        }
    }
}

/// Parses a SPARQL string into a [`SelectQuery`].
pub fn parse(input: &str) -> Result<SelectQuery, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == tok => Ok(()),
            _ => Err(ParseError {
                at: self.pos.saturating_sub(1),
                message: format!("expected {what}"),
            }),
        }
    }

    fn query(&mut self) -> Result<SelectQuery, ParseError> {
        self.expect(&Token::Select, "SELECT")?;
        let target = match self.next() {
            Some(Token::Var(v)) => v,
            _ => return Err(self.err("expected a variable after SELECT")),
        };
        self.expect(&Token::Where, "WHERE")?;
        let where_clause = self.group()?;
        Ok(SelectQuery {
            target,
            where_clause,
        })
    }

    fn group(&mut self) -> Result<Group, ParseError> {
        self.expect(&Token::LBrace, "'{'")?;
        let mut g = Group::default();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.pos += 1;
                    return Ok(g);
                }
                Some(Token::LBrace) => {
                    // A sub-group: only meaningful as part of a UNION chain.
                    let first = self.group()?;
                    let mut alts = vec![first];
                    while self.peek() == Some(&Token::Union) {
                        self.pos += 1;
                        alts.push(self.group()?);
                    }
                    if alts.len() < 2 {
                        return Err(self.err("bare sub-group without UNION"));
                    }
                    g.unions.push(alts);
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    g.minus.push(self.group()?);
                }
                Some(Token::Filter) => {
                    self.pos += 1;
                    self.expect(&Token::Not, "NOT after FILTER")?;
                    self.expect(&Token::Exists, "EXISTS after FILTER NOT")?;
                    g.not_exists.push(self.group()?);
                }
                Some(_) => {
                    g.triples.push(self.triple()?);
                    // Optional dot separator.
                    if self.peek() == Some(&Token::Dot) {
                        self.pos += 1;
                    }
                }
                None => return Err(self.err("unterminated group (missing '}')")),
            }
        }
    }

    fn triple(&mut self) -> Result<TriplePattern, ParseError> {
        let subject = self.term()?;
        let relation = match self.next() {
            Some(Token::Relation(r)) => r,
            _ => return Err(self.err("expected relation (r:<id>) in triple")),
        };
        let object = self.term()?;
        Ok(TriplePattern {
            subject,
            relation,
            object,
        })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Token::Var(v)) => Ok(Term::Var(v)),
            Some(Token::Entity(e)) => Ok(Term::Entity(e)),
            _ => Err(self.err("expected a variable or entity term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse("SELECT ?x WHERE { e:3 r:1 ?x . }").unwrap();
        assert_eq!(q.target, "x");
        assert_eq!(q.where_clause.triples.len(), 1);
        assert_eq!(
            q.where_clause.triples[0],
            TriplePattern {
                subject: Term::Entity(3),
                relation: 1,
                object: Term::Var("x".into()),
            }
        );
    }

    #[test]
    fn parses_chain_and_join() {
        let q = parse("SELECT ?f WHERE { e:10 r:0 ?d . e:11 r:1 ?d . ?d r:2 ?f . }").unwrap();
        assert_eq!(q.where_clause.triples.len(), 3);
    }

    #[test]
    fn parses_union_blocks() {
        let q = parse("SELECT ?x WHERE { { e:1 r:0 ?x . } UNION { e:2 r:0 ?x . } }").unwrap();
        assert_eq!(q.where_clause.unions.len(), 1);
        assert_eq!(q.where_clause.unions[0].len(), 2);
    }

    #[test]
    fn parses_minus_and_not_exists() {
        let q = parse(
            "SELECT ?x WHERE { e:1 r:0 ?x . MINUS { e:2 r:1 ?x . } FILTER NOT EXISTS { e:3 r:2 ?x . } }",
        )
        .unwrap();
        assert_eq!(q.where_clause.minus.len(), 1);
        assert_eq!(q.where_clause.not_exists.len(), 1);
    }

    #[test]
    fn dot_is_optional() {
        let q = parse("SELECT ?x WHERE { e:1 r:0 ?x }").unwrap();
        assert_eq!(q.where_clause.triples.len(), 1);
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse("WHERE { }").is_err());
        assert!(parse("SELECT ?x WHERE { e:1 e:2 ?x }").is_err()); // entity in relation slot
        assert!(parse("SELECT ?x WHERE { e:1 r:0 ?x").is_err()); // unterminated
        assert!(parse("SELECT ?x WHERE { { e:1 r:0 ?x } }").is_err()); // bare subgroup
        assert!(parse("SELECT ?x WHERE { } trailing").is_err());
    }

    #[test]
    fn nested_union_of_three() {
        let q =
            parse("SELECT ?x WHERE { { e:1 r:0 ?x } UNION { e:2 r:0 ?x } UNION { e:3 r:0 ?x } }")
                .unwrap();
        assert_eq!(q.where_clause.unions[0].len(), 3);
    }
}
