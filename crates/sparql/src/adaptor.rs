//! The query Adaptor (§IV-F, Fig. 7b): graph patterns → the five logical
//! operators.
//!
//! The Adaptor turns a parsed SPARQL `SELECT` into a computation tree for
//! the target variable: joined triple patterns become projections feeding
//! intersections, `UNION` blocks become the union operator, `MINUS` becomes
//! difference, and `FILTER NOT EXISTS` becomes negation — exactly the
//! mapping the paper illustrates and the reason supporting all five
//! operators matters in practice.
//!
//! Supported shape: patterns must flow *towards* the target (each variable
//! is the object of its defining triples), and the join graph must be
//! acyclic — the computation-graph restriction of §II-A.

use crate::parser::{Group, SelectQuery, Term};
use halk_kg::{EntityId, RelationId};
use halk_logic::Query;
use std::fmt;

/// Errors from the pattern → operator mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// A variable has no defining triple (it never appears as an object).
    UnboundVariable(String),
    /// The join graph contains a cycle through the named variable.
    CyclicPattern(String),
    /// A `MINUS` / `UNION` / `FILTER NOT EXISTS` block does not constrain
    /// the same variable it is attached to.
    BlockTargetMismatch(String),
    /// A triple uses an entity in object position (only variables flow).
    GroundObject,
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::UnboundVariable(v) => write!(f, "variable ?{v} has no defining triple"),
            AdaptError::CyclicPattern(v) => write!(f, "cyclic pattern through ?{v}"),
            AdaptError::BlockTargetMismatch(v) => {
                write!(
                    f,
                    "algebra block does not bind the attachment variable ?{v}"
                )
            }
            AdaptError::GroundObject => write!(f, "object positions must be variables"),
        }
    }
}

impl std::error::Error for AdaptError {}

/// Maps a parsed query to a logical computation tree (the paper's Fig. 1b
/// artifact) rooted at the SELECT variable.
///
/// `MINUS` blocks subtract from the SELECT variable; `UNION` and
/// `FILTER NOT EXISTS` blocks attach to whichever variable their own
/// patterns bind (normally the target). Every block must bind the variable
/// it is checked against or the mapping fails.
pub fn adapt(q: &SelectQuery) -> Result<Query, AdaptError> {
    let group = &q.where_clause;
    let positive = build_var(group, &q.target, &mut Vec::new())?;
    if group.minus.is_empty() {
        return Ok(positive);
    }
    let mut parts = vec![positive];
    for m in &group.minus {
        if !binds(m, &q.target) {
            return Err(AdaptError::BlockTargetMismatch(q.target.clone()));
        }
        parts.push(build_var(m, &q.target, &mut Vec::new())?);
    }
    Ok(Query::Difference(parts))
}

/// Whether a group binds `var` (has a triple with `?var` in object
/// position, directly or in nested algebra blocks).
fn binds(group: &Group, var: &str) -> bool {
    group
        .triples
        .iter()
        .any(|t| matches!(&t.object, Term::Var(v) if v == var))
        || group.unions.iter().flatten().any(|g| binds(g, var))
        || group.minus.iter().any(|g| binds(g, var))
        || group.not_exists.iter().any(|g| binds(g, var))
}

/// Builds the computation tree for `var` within `group`.
fn build_var(group: &Group, var: &str, in_progress: &mut Vec<String>) -> Result<Query, AdaptError> {
    if in_progress.iter().any(|v| v == var) {
        return Err(AdaptError::CyclicPattern(var.to_string()));
    }
    in_progress.push(var.to_string());

    let result = (|| {
        // Defining triples: (subject, rel, ?var).
        let mut branches: Vec<Query> = Vec::new();
        for t in &group.triples {
            match (&t.subject, &t.object) {
                (_, Term::Entity(_)) => return Err(AdaptError::GroundObject),
                (subj, Term::Var(obj)) if obj == var => {
                    let rel = RelationId(t.relation);
                    let q = match subj {
                        Term::Entity(e) => Query::atom(EntityId(*e), rel),
                        Term::Var(sv) => build_var(group, sv, in_progress)?.project(rel),
                    };
                    branches.push(q);
                }
                _ => {} // triple defines another variable; reached recursively
            }
        }

        // Algebra blocks that bind this variable.
        for alts in &group.unions {
            if !alts.iter().any(|g| binds(g, var)) {
                continue;
            }
            let mut unioned = Vec::with_capacity(alts.len());
            for alt in alts {
                if !binds(alt, var) {
                    return Err(AdaptError::BlockTargetMismatch(var.to_string()));
                }
                unioned.push(build_var(alt, var, &mut Vec::new())?);
            }
            branches.push(Query::Union(unioned));
        }
        for ne in &group.not_exists {
            if !binds(ne, var) {
                continue;
            }
            let inner = build_var(ne, var, &mut Vec::new())?;
            branches.push(inner.negate());
        }

        if branches.is_empty() {
            return Err(AdaptError::UnboundVariable(var.to_string()));
        }
        Ok(if branches.len() == 1 {
            branches.into_iter().next().expect("one branch")
        } else {
            Query::Intersection(branches)
        })
    })();

    in_progress.pop();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn adapt_str(s: &str) -> Result<Query, AdaptError> {
        adapt(&parse(s).expect("parses"))
    }

    #[test]
    fn single_triple_is_1p() {
        let q = adapt_str("SELECT ?x WHERE { e:3 r:1 ?x . }").unwrap();
        assert_eq!(q.render(), "P[r1](e3)");
    }

    #[test]
    fn chain_becomes_nested_projection() {
        let q = adapt_str("SELECT ?x WHERE { e:0 r:1 ?m . ?m r:2 ?x . }").unwrap();
        assert_eq!(q.render(), "P[r2](P[r1](e0))");
    }

    #[test]
    fn fig1_movie_query_shape() {
        // "Films directed by Oscar-winning American directors": two anchors
        // join on the director variable, then project to films (Fig. 1).
        let q = adapt_str("SELECT ?film WHERE { e:100 r:0 ?d . e:101 r:1 ?d . ?d r:2 ?film . }")
            .unwrap();
        assert_eq!(q.render(), "P[r2](I(P[r0](e100), P[r1](e101)))");
    }

    #[test]
    fn union_blocks_map_to_union() {
        let q = adapt_str("SELECT ?x WHERE { { e:1 r:0 ?x . } UNION { e:2 r:0 ?x . } }").unwrap();
        assert_eq!(q.render(), "U(P[r0](e1), P[r0](e2))");
    }

    #[test]
    fn minus_maps_to_difference() {
        let q = adapt_str("SELECT ?x WHERE { e:1 r:0 ?x . MINUS { e:2 r:1 ?x . } }").unwrap();
        assert_eq!(q.render(), "D(P[r0](e1), P[r1](e2))");
    }

    #[test]
    fn not_exists_maps_to_negation() {
        let q = adapt_str("SELECT ?x WHERE { e:1 r:0 ?x . FILTER NOT EXISTS { e:2 r:1 ?x . } }")
            .unwrap();
        assert_eq!(q.render(), "I(P[r0](e1), N(P[r1](e2)))");
    }

    #[test]
    fn all_five_operators_in_one_query() {
        let q = adapt_str(
            "SELECT ?x WHERE {
                ?d r:2 ?x .
                e:1 r:0 ?d .
                { e:3 r:3 ?x . } UNION { e:4 r:3 ?x . }
                MINUS { e:5 r:4 ?x . }
                FILTER NOT EXISTS { e:6 r:5 ?x . }
             }",
        )
        .unwrap();
        assert!(q.has_union() && q.has_difference() && q.has_negation());
        assert!(q.render().contains("P[r2](P[r0](e1))"));
    }

    #[test]
    fn unbound_variable_errors() {
        let err = adapt_str("SELECT ?x WHERE { ?y r:0 ?x . }").unwrap_err();
        assert_eq!(err, AdaptError::UnboundVariable("y".into()));
    }

    #[test]
    fn cyclic_pattern_errors() {
        let err = adapt_str("SELECT ?x WHERE { ?x r:0 ?y . ?y r:1 ?x . }").unwrap_err();
        assert!(matches!(err, AdaptError::CyclicPattern(_)));
    }

    #[test]
    fn ground_object_errors() {
        // Entities in object position are not part of the Adaptor's subset.
        let parsed = parse("SELECT ?x WHERE { ?x r:0 e:5 . }").unwrap();
        assert_eq!(adapt(&parsed).unwrap_err(), AdaptError::GroundObject);
    }

    #[test]
    fn block_must_bind_target() {
        let err = adapt_str("SELECT ?x WHERE { e:1 r:0 ?x . MINUS { e:2 r:1 ?z . } }").unwrap_err();
        assert!(matches!(err, AdaptError::BlockTargetMismatch(_)));
    }
}
