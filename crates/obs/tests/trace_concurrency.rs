//! The JSONL trace writer's concurrency contract: under arbitrary
//! concurrent spans, the file holds exactly one valid JSON object per
//! line, with per-thread monotonic timestamps and balanced open/close
//! events.
//!
//! Trace output is process-global, so every test in this binary funnels
//! through one mutex and a fresh target file per scenario (re-init is
//! supported and flushes the previous buffers first).

use proptest::prelude::*;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Serializes trace-file access across tests; tolerates poisoning so one
/// failing test doesn't cascade into the rest.
fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn trace_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("halk_obs_trace_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.jsonl"))
}

/// Runs `threads` concurrent workers, each emitting `spans_each` nested or
/// sequential spans plus instants, then returns the parsed trace lines.
fn run_scenario(tag: &str, threads: usize, spans_each: usize, nest: bool) -> Vec<Value> {
    let path = trace_path(tag);
    halk_obs::trace::init_trace(&path).unwrap();

    std::thread::scope(|s| {
        for w in 0..threads {
            s.spawn(move || {
                for i in 0..spans_each {
                    let _g = halk_obs::span!("outer");
                    if nest && i % 2 == 0 {
                        let _h = halk_obs::span!("inner", || format!("w{w} i{i} \"q\""));
                        halk_obs::trace::instant("tick");
                    }
                }
                // Scope exit waits for this closure, not for thread-local
                // destructors — flush before returning so the read below
                // sees every event.
                halk_obs::trace::flush();
            });
        }
    });
    // Flush the main thread too in case it traced anything.
    halk_obs::trace::flush();

    let text = std::fs::read_to_string(&path).unwrap();
    text.lines()
        .map(|line| {
            serde_json::from_str::<Value>(line)
                .unwrap_or_else(|e| panic!("invalid JSON line: {line:?} ({e:?})"))
        })
        .collect()
}

/// Asserts the structural invariants on parsed events.
fn check_invariants(events: &[Value], expect_spans: usize) {
    let mut last_ts: HashMap<i64, i64> = HashMap::new();
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    let mut closes = 0usize;
    for e in events {
        let ev = e["ev"].as_str().expect("ev field");
        let name = e["name"].as_str().expect("name field").to_string();
        let tid = e["tid"].as_i64().expect("tid field");
        let ts = e["ts_us"].as_i64().expect("ts_us field");
        let prev = last_ts.insert(tid, ts).unwrap_or(i64::MIN);
        assert!(
            ts >= prev,
            "per-thread timestamps regressed: {prev} -> {ts}"
        );
        match ev {
            "o" => stacks.entry(tid).or_default().push(name),
            "c" => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .expect("close without open");
                assert_eq!(open, name, "spans close LIFO");
                assert!(e["dur_us"].as_i64().is_some(), "close carries dur_us");
                closes += 1;
            }
            "i" => {}
            other => panic!("unknown event kind {other}"),
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unbalanced spans on thread {tid}");
    }
    assert_eq!(closes, expect_spans, "every span closed exactly once");
}

proptest! {
    // Each case spawns real threads; keep the count release-test friendly.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_spans_emit_one_json_object_per_line(
        threads in 1usize..6,
        spans_each in 1usize..40,
        nest in any::<bool>(),
    ) {
        let _guard = trace_lock();
        let events = run_scenario("proptest", threads, spans_each, nest);
        let inner = if nest { spans_each.div_ceil(2) } else { 0 };
        check_invariants(&events, threads * (spans_each + inner));
    }
}

#[test]
fn detail_strings_are_escaped() {
    let _guard = trace_lock();
    let events = run_scenario("escape", 2, 3, true);
    // Nested spans carry a detail field with an embedded quote; every line
    // already parsed, so the escaping held. Check one made it through.
    assert!(events
        .iter()
        .any(|e| e["detail"].as_str().is_some_and(|d| d.contains('"'))));
}

#[test]
fn reinit_points_subsequent_events_at_the_new_file() {
    let _guard = trace_lock();
    let first = run_scenario("reinit_a", 1, 2, false);
    check_invariants(&first, 2);
    let second = run_scenario("reinit_b", 1, 3, false);
    check_invariants(&second, 3);
    // The first file is untouched by the second run.
    let text = std::fs::read_to_string(trace_path("reinit_a")).unwrap();
    assert_eq!(text.lines().count(), first.len());
}
