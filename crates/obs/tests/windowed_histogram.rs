//! Integration tests for the windowed metrics ring (DESIGN.md §16).
//!
//! These run in their own process, so unlike the in-crate unit tests they
//! may arm the global `window::set_enabled` switch and drive rotation
//! concurrently with writers.

use halk_obs::metrics::{Histogram, N_BUCKETS};
use halk_obs::window::{WindowedHistogram, N_SLOTS, SLOT_SPAN_US};

/// Concurrent writers never lose a sample across epoch ticks, as long as
/// the ring does not complete a full revolution (each tick only zeroes the
/// slot that left the window).
#[test]
fn concurrent_writers_survive_rotation() {
    static H: WindowedHistogram = WindowedHistogram::new("rotation_torture_us");
    halk_obs::window::set_enabled(true);

    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 50_000;

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    H.record((w as u64) * 7 + (i % 1000));
                }
            });
        }
        // Rotator thread: ticks fewer than N_SLOTS times while the writers
        // hammer, so every slot a writer has touched is still inside the
        // window at the end.
        s.spawn(|| {
            for tick in 1..N_SLOTS as u64 {
                H.maybe_rotate(tick * SLOT_SPAN_US);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
    });

    let snap = H.snapshot();
    assert_eq!(
        snap.count,
        (WRITERS as u64) * PER_WRITER,
        "no sample may be lost while rotation stays within one revolution"
    );
}

/// On a single window (no rotation), the merged windowed snapshot agrees
/// exactly with a cumulative histogram fed the same samples: same count,
/// sum, buckets and quantiles.
#[test]
fn single_window_agrees_with_cumulative() {
    static W: WindowedHistogram = WindowedHistogram::new("agreement_us");
    let c: &'static Histogram = halk_obs::metrics::histogram("halk_window_agreement_us");
    halk_obs::window::set_enabled(true);

    let samples: Vec<u64> = (0..4096u64).map(|i| (i * i) % 90_000).collect();
    for &v in &samples {
        W.record(v);
        c.record(v);
    }

    let snap = W.snapshot();
    assert_eq!(snap.count, c.count());
    assert_eq!(snap.sum, c.sum());
    assert_eq!(snap.buckets, c.buckets());
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(snap.quantile(q), c.quantile(q), "quantile {q} diverged");
    }
}

/// An empty window (fresh, or fully evicted) snapshots to all-zero counts
/// and zero quantiles, and renders without panicking.
#[test]
fn empty_window_snapshot_is_zero() {
    static E: WindowedHistogram = WindowedHistogram::new("empty_us");
    let snap = E.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.sum, 0);
    assert_eq!(snap.buckets, [0u64; N_BUCKETS]);
    assert_eq!(snap.quantile(0.5), 0);
    assert_eq!(snap.quantile(0.99), 0);

    // Fill, then evict everything with a full-revolution tick: back to zero.
    E.record_unconditional(42);
    assert!(E.snapshot().count > 0);
    E.maybe_rotate(SLOT_SPAN_US * (N_SLOTS as u64 + 1));
    assert_eq!(E.snapshot().count, 0);
    assert_eq!(E.snapshot().quantile(0.99), 0);
}
