//! Run manifests: one JSON document stamping a training run or experiment
//! with everything needed to attribute its numbers later.
//!
//! Schema (DESIGN.md §11):
//!
//! ```json
//! {
//!   "run": "table1_2",
//!   "started_unix": 1754550000,
//!   "wall_s": 93.2,
//!   "git_rev": "64a8660d1c2e",
//!   "fields": { "threads": 4, "seed": 40, ... },
//!   "config": { "scale": "quick", "dim": 32, ... },
//!   "phases": { "train_FB15k": 41.0, "eval_FB15k": 12.2, ... },
//!   "metrics": { "mrr_avg_FB15k": 0.41, ... },
//!   "observability": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//! }
//! ```
//!
//! `observability` embeds the [`crate::metrics`] registry snapshot taken at
//! write time, so the manifest alone answers "how many rollbacks, how many
//! plan-cache misses, how busy were the workers". Writing the manifest also
//! flushes the calling thread's trace buffer — binaries that end with
//! [`Manifest::write`] need no separate shutdown call.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime};

/// A manifest value: the JSON scalar subset the schema needs.
#[derive(Debug, Clone)]
enum Val {
    Str(String),
    Num(f64),
    Int(u64),
    Bool(bool),
}

fn push_val(out: &mut String, v: &Val) {
    match v {
        Val::Str(s) => {
            out.push('"');
            crate::json_escape_into(out, s);
            out.push('"');
        }
        Val::Num(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n:?}");
            } else {
                out.push_str("null");
            }
        }
        Val::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Val::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn push_map(out: &mut String, entries: &[(String, Val)]) {
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        crate::json_escape_into(out, k);
        out.push_str("\":");
        push_val(out, v);
    }
    out.push('}');
}

/// Builder for one run's manifest. Create it at process start (so `wall_s`
/// covers the whole run), add config/phases/metrics as they become known,
/// then [`Manifest::write`] at the end.
#[derive(Debug)]
pub struct Manifest {
    run: String,
    started: Instant,
    started_unix: u64,
    fields: Vec<(String, Val)>,
    config: Vec<(String, Val)>,
    phases: Vec<(String, f64)>,
    metrics: Vec<(String, f64)>,
}

impl Manifest {
    /// A new manifest for run `run`, stamping the start time and (when
    /// resolvable) the git revision.
    pub fn new(run: &str) -> Manifest {
        let started_unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut m = Manifest {
            run: run.to_string(),
            started: Instant::now(),
            started_unix,
            fields: Vec::new(),
            config: Vec::new(),
            phases: Vec::new(),
            metrics: Vec::new(),
        };
        if let Some(rev) = git_rev() {
            m.fields.push(("git_rev".into(), Val::Str(rev)));
        }
        m
    }

    /// The run name.
    pub fn run(&self) -> &str {
        &self.run
    }

    fn upsert(list: &mut Vec<(String, Val)>, key: &str, v: Val) {
        match list.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = v,
            None => list.push((key.to_string(), v)),
        }
    }

    /// Sets a top-level string field.
    pub fn set_str(&mut self, key: &str, v: impl Into<String>) {
        Self::upsert(&mut self.fields, key, Val::Str(v.into()));
    }

    /// Sets a top-level integer field.
    pub fn set_int(&mut self, key: &str, v: u64) {
        Self::upsert(&mut self.fields, key, Val::Int(v));
    }

    /// Sets a top-level float field.
    pub fn set_num(&mut self, key: &str, v: f64) {
        Self::upsert(&mut self.fields, key, Val::Num(v));
    }

    /// Sets a top-level boolean field.
    pub fn set_bool(&mut self, key: &str, v: bool) {
        Self::upsert(&mut self.fields, key, Val::Bool(v));
    }

    /// Sets a `config` entry (string).
    pub fn config_str(&mut self, key: &str, v: impl Into<String>) {
        Self::upsert(&mut self.config, key, Val::Str(v.into()));
    }

    /// Sets a `config` entry (integer).
    pub fn config_int(&mut self, key: &str, v: u64) {
        Self::upsert(&mut self.config, key, Val::Int(v));
    }

    /// Sets a `config` entry (float).
    pub fn config_num(&mut self, key: &str, v: f64) {
        Self::upsert(&mut self.config, key, Val::Num(v));
    }

    /// Records (or accumulates into) a named phase timing.
    pub fn phase(&mut self, name: &str, wall: std::time::Duration) {
        let secs = wall.as_secs_f64();
        match self.phases.iter_mut().find(|(k, _)| k == name) {
            Some(slot) => slot.1 += secs,
            None => self.phases.push((name.to_string(), secs)),
        }
    }

    /// Records a final metric.
    pub fn metric(&mut self, name: &str, v: f64) {
        match self.metrics.iter_mut().find(|(k, _)| k == name) {
            Some(slot) => slot.1 = v,
            None => self.metrics.push((name.to_string(), v)),
        }
    }

    /// Renders the manifest as a JSON document (metrics-registry snapshot
    /// and wall time taken now).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"run\":\"");
        crate::json_escape_into(&mut out, &self.run);
        let _ = write!(
            out,
            "\",\"started_unix\":{},\"wall_s\":{:?}",
            self.started_unix,
            self.started.elapsed().as_secs_f64()
        );
        out.push_str(",\"fields\":");
        push_map(&mut out, &self.fields);
        out.push_str(",\"config\":");
        push_map(&mut out, &self.config);
        let phases: Vec<(String, Val)> = self
            .phases
            .iter()
            .map(|(k, v)| (k.clone(), Val::Num(*v)))
            .collect();
        out.push_str(",\"phases\":");
        push_map(&mut out, &phases);
        let metrics: Vec<(String, Val)> = self
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), Val::Num(*v)))
            .collect();
        out.push_str(",\"metrics\":");
        push_map(&mut out, &metrics);
        out.push_str(",\"observability\":");
        out.push_str(&crate::metrics::snapshot_json());
        out.push_str("}\n");
        out
    }

    /// Writes `results/<run>/manifest.json` relative to the current
    /// directory and flushes the trace buffer; returns the path.
    pub fn write(&self) -> io::Result<PathBuf> {
        self.write_to(Path::new("results").join(&self.run))
    }

    /// Writes `<dir>/manifest.json` (creating `dir`), flushes the calling
    /// thread's trace buffer, and returns the path.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, self.to_json())?;
        crate::trace::flush();
        Ok(path)
    }
}

/// The current git revision (short hash), via `git rev-parse`; falls back
/// to reading `.git/HEAD` directly, and `None` outside a repository.
pub fn git_rev() -> Option<String> {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
    {
        if out.status.success() {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !rev.is_empty() {
                return Some(rev);
            }
        }
    }
    // No git binary: chase .git/HEAD by hand from the current directory up.
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git/HEAD");
        if let Ok(text) = std::fs::read_to_string(&head) {
            let text = text.trim();
            if let Some(r) = text.strip_prefix("ref: ") {
                if let Ok(rev) = std::fs::read_to_string(dir.join(".git").join(r.trim())) {
                    return Some(rev.trim().chars().take(12).collect());
                }
            }
            return Some(text.chars().take(12).collect());
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_is_valid_and_complete() {
        let mut m = Manifest::new("unit_test");
        m.set_int("threads", 4);
        m.set_str("note", "with \"quotes\"");
        m.set_bool("smoke", true);
        m.config_str("scale", "smoke");
        m.config_int("dim", 8);
        m.config_num("lr", 0.001);
        m.phase("train", std::time::Duration::from_millis(1500));
        m.phase("train", std::time::Duration::from_millis(500));
        m.metric("mrr", 0.42);
        let js = m.to_json();
        let v: serde_json::Value = serde_json::from_str(&js).expect("manifest parses");
        assert_eq!(v["run"], "unit_test");
        assert_eq!(v["fields"]["threads"], 4);
        assert_eq!(v["config"]["dim"], 8);
        assert_eq!(v["phases"]["train"], 2.0);
        assert_eq!(v["metrics"]["mrr"], 0.42);
        assert!(v.get("observability").is_some());
        assert!(v["wall_s"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn write_to_creates_manifest_file() {
        let dir = std::env::temp_dir().join("halk_obs_manifest_test");
        let _ = std::fs::remove_dir_all(&dir);
        let m = Manifest::new("wtest");
        let path = m.write_to(&dir).unwrap();
        assert!(path.ends_with("manifest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["run"], "wtest");
    }

    #[test]
    fn git_rev_in_this_repo_resolves() {
        // The workspace is a git repository, so some revision must resolve.
        let rev = git_rev();
        assert!(rev.is_some_and(|r| !r.is_empty()));
    }
}
