//! Windowed metrics: rolling histograms and rate counters over the last
//! ~60 seconds, for live daemon telemetry (DESIGN.md §16).
//!
//! The cumulative registry in [`crate::metrics`] answers "what happened
//! since boot"; a long-lived daemon also needs "what is p99 *right now*".
//! A [`WindowedHistogram`] keeps a ring of [`N_SLOTS`] log2-bucket
//! histograms. Writers always record into the current slot — one relaxed
//! index load plus the same two relaxed adds as the cumulative histogram —
//! and never reset anything. Rotation is driven externally by
//! [`tick`]/[`WindowedHistogram::maybe_rotate`] on a coarse epoch tick
//! (every [`SLOT_SPAN_US`]): the winning rotator zeroes the *oldest* slot,
//! which writers have not touched for `N_SLOTS - 1` spans, then publishes
//! it as current. A merged snapshot sums all slots, so it always covers
//! the last `N_SLOTS × SLOT_SPAN_US` ≈ 60 s of samples.
//!
//! Samples can only be lost if a writer stalls for a full ring revolution
//! (~50 s) between loading the slot index and storing the sample — not a
//! realistic schedule; the rotation test in `tests/` hammers this.
//!
//! The whole layer is **off by default**: [`record`](WindowedHistogram::record)
//! is a single relaxed [`AtomicBool`](std::sync::atomic::AtomicBool) load
//! and branch until [`set_enabled`] arms it (the serve daemon does; batch
//! binaries never pay more than the branch). The `windowed_record` entries
//! of `bench_hotpath` pin both costs down.
//!
//! Rendering appends a `_window` suffix to the registered name:
//! `<name>_window{_bucket,_sum,_count}` plus `<name>_window_p50` /
//! `<name>_window_p99` gauges for histograms, and `<name>_window_total` /
//! `<name>_window_rate` (per second over the full window span) for
//! counters. [`snapshot_prometheus`] and [`snapshot_json`] mirror the
//! cumulative renderers so the scrape endpoint can concatenate both.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics::{quantile_from_buckets, N_BUCKETS};

/// Slots in the ring; the window covers `N_SLOTS × SLOT_SPAN_US`.
pub const N_SLOTS: usize = 6;

/// Wall-clock span of one slot, in microseconds (10 s × 6 slots ≈ 60 s).
pub const SLOT_SPAN_US: u64 = 10_000_000;

/// Full window span in microseconds.
pub const WINDOW_SPAN_US: u64 = N_SLOTS as u64 * SLOT_SPAN_US;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) windowed collection process-wide. The serve daemon
/// arms it at boot; everything else leaves it off and pays one relaxed
/// load per `record` call site.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// True when windowed collection is armed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One ring slot: the same shape as a cumulative log2 histogram.
#[derive(Debug)]
struct Slot {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
}

impl Slot {
    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A rolling log2-bucket histogram over the last [`WINDOW_SPAN_US`].
#[derive(Debug)]
pub struct WindowedHistogram {
    name: &'static str,
    slots: [Slot; N_SLOTS],
    cur: AtomicUsize,
    last_rotate_us: AtomicU64,
}

/// Merged view of the ring at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Samples in the window.
    pub count: u64,
    /// Sum of samples in the window.
    pub sum: u64,
    /// Merged per-bucket counts (same layout as the cumulative histogram).
    pub buckets: [u64; N_BUCKETS],
}

impl WindowSnapshot {
    /// Approximate `q`-quantile over the window (bucket upper bound, same
    /// semantics as [`crate::metrics::Histogram::quantile`]; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets, q)
    }
}

impl WindowedHistogram {
    /// A standalone windowed histogram (tests drive rotation explicitly;
    /// production handles come from [`histogram`]).
    pub const fn new(name: &'static str) -> WindowedHistogram {
        WindowedHistogram {
            name,
            slots: [const {
                Slot {
                    buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
                    sum: AtomicU64::new(0),
                }
            }; N_SLOTS],
            cur: AtomicUsize::new(0),
            last_rotate_us: AtomicU64::new(0),
        }
    }

    /// Records one sample into the current slot. One relaxed load + branch
    /// when the layer is disarmed; one extra relaxed load over the
    /// cumulative histogram's two adds when armed.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.record_unconditional(v);
    }

    /// Records regardless of the global arm switch (tests, and call sites
    /// that have already checked [`enabled`]).
    ///
    /// The slot-index load is `Acquire` to pair with the rotator's
    /// `Release` publish: a writer that observes the new index is
    /// guaranteed to see the slot already zeroed, so its adds cannot be
    /// wiped by a racing reset. (Free on x86; one `ldar` on aarch64.)
    #[inline]
    pub fn record_unconditional(&self, v: u64) {
        let slot = &self.slots[self.cur.load(Ordering::Acquire) % N_SLOTS];
        slot.buckets[crate::metrics::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Rotates the ring if at least one slot span has elapsed since the
    /// last rotation, zeroing one slot per elapsed span (capped at the
    /// ring length, so a long idle gap clears the whole window). Exactly
    /// one caller wins a given tick; everyone else returns 0 immediately.
    /// Returns the number of slots advanced.
    pub fn maybe_rotate(&self, now_us: u64) -> usize {
        let last = self.last_rotate_us.load(Ordering::Acquire);
        let elapsed = now_us.saturating_sub(last);
        if elapsed < SLOT_SPAN_US {
            return 0;
        }
        if self
            .last_rotate_us
            .compare_exchange(last, now_us, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return 0; // someone else is rotating this tick
        }
        let steps = ((elapsed / SLOT_SPAN_US) as usize).min(N_SLOTS);
        let mut cur = self.cur.load(Ordering::Relaxed);
        for _ in 0..steps {
            cur = (cur + 1) % N_SLOTS;
            self.slots[cur].reset();
            // Publish after the reset so writers never land in a slot that
            // is about to be zeroed under them.
            self.cur.store(cur, Ordering::Release);
        }
        steps
    }

    /// Merges every slot into one snapshot covering the whole window.
    pub fn snapshot(&self) -> WindowSnapshot {
        let mut buckets = [0u64; N_BUCKETS];
        let mut sum = 0u64;
        for slot in &self.slots {
            for (i, b) in slot.buckets.iter().enumerate() {
                buckets[i] += b.load(Ordering::Relaxed);
            }
            sum += slot.sum.load(Ordering::Relaxed);
        }
        WindowSnapshot {
            count: buckets.iter().sum(),
            sum,
            buckets,
        }
    }

    /// Registered name (without the `_window` rendering suffix).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A rolling event counter over the last [`WINDOW_SPAN_US`].
#[derive(Debug)]
pub struct WindowedCounter {
    name: &'static str,
    slots: [AtomicU64; N_SLOTS],
    cur: AtomicUsize,
    last_rotate_us: AtomicU64,
}

impl WindowedCounter {
    /// A standalone windowed counter (production handles come from
    /// [`counter`]).
    pub const fn new(name: &'static str) -> WindowedCounter {
        WindowedCounter {
            name,
            slots: [const { AtomicU64::new(0) }; N_SLOTS],
            cur: AtomicUsize::new(0),
            last_rotate_us: AtomicU64::new(0),
        }
    }

    /// Adds `n` events to the current slot (no-op branch when disarmed).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.add_unconditional(n);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds regardless of the global arm switch (tests, and call sites
    /// that have already checked [`enabled`]). `Acquire` index load for
    /// the same reason as [`WindowedHistogram::record_unconditional`].
    #[inline]
    pub fn add_unconditional(&self, n: u64) {
        self.slots[self.cur.load(Ordering::Acquire) % N_SLOTS].fetch_add(n, Ordering::Relaxed);
    }

    /// Same rotation protocol as [`WindowedHistogram::maybe_rotate`].
    pub fn maybe_rotate(&self, now_us: u64) -> usize {
        let last = self.last_rotate_us.load(Ordering::Acquire);
        let elapsed = now_us.saturating_sub(last);
        if elapsed < SLOT_SPAN_US {
            return 0;
        }
        if self
            .last_rotate_us
            .compare_exchange(last, now_us, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return 0;
        }
        let steps = ((elapsed / SLOT_SPAN_US) as usize).min(N_SLOTS);
        let mut cur = self.cur.load(Ordering::Relaxed);
        for _ in 0..steps {
            cur = (cur + 1) % N_SLOTS;
            self.slots[cur].store(0, Ordering::Relaxed);
            self.cur.store(cur, Ordering::Release);
        }
        steps
    }

    /// Total events in the window.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Events per second, averaged over the full window span.
    pub fn rate_per_sec(&self) -> f64 {
        self.total() as f64 / (WINDOW_SPAN_US as f64 / 1e6)
    }

    /// Registered name (without the `_window` rendering suffix).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

enum WEntry {
    C(&'static WindowedCounter),
    H(&'static WindowedHistogram),
}

fn registry() -> &'static Mutex<HashMap<String, WEntry>> {
    static REGISTRY: std::sync::OnceLock<Mutex<HashMap<String, WEntry>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Interns (or retrieves) the windowed histogram named `name`. Names share
/// a namespace with windowed counters but not with the cumulative
/// registry — the convention is to register the *same* base name in both
/// (rendering adds the `_window` suffix here).
///
/// # Panics
/// If `name` is already registered as a windowed counter.
pub fn histogram(name: &str) -> &'static WindowedHistogram {
    let mut reg = registry().lock().expect("windowed registry poisoned");
    if let Some(e) = reg.get(name) {
        match e {
            WEntry::H(h) => return h,
            WEntry::C(_) => {
                drop(reg);
                panic!("windowed metric {name} already registered with a different kind");
            }
        }
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let h: &'static WindowedHistogram = Box::leak(Box::new(WindowedHistogram::new(leaked)));
    reg.insert(leaked.to_string(), WEntry::H(h));
    h
}

/// Interns (or retrieves) the windowed counter named `name`.
///
/// # Panics
/// If `name` is already registered as a windowed histogram.
pub fn counter(name: &str) -> &'static WindowedCounter {
    let mut reg = registry().lock().expect("windowed registry poisoned");
    if let Some(e) = reg.get(name) {
        match e {
            WEntry::C(c) => return c,
            WEntry::H(_) => {
                drop(reg);
                panic!("windowed metric {name} already registered with a different kind");
            }
        }
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let c: &'static WindowedCounter = Box::leak(Box::new(WindowedCounter::new(leaked)));
    reg.insert(leaked.to_string(), WEntry::C(c));
    c
}

/// Rotates every registered windowed metric that is due at `now_us`
/// (typically [`crate::trace::now_us`]). Called from the daemon's obs
/// thread about once a second and opportunistically before snapshots; the
/// cost is one registry lock plus a relaxed load per metric when nothing
/// is due.
pub fn tick(now_us: u64) {
    let reg = registry().lock().expect("windowed registry poisoned");
    for e in reg.values() {
        match e {
            WEntry::C(c) => {
                c.maybe_rotate(now_us);
            }
            WEntry::H(h) => {
                h.maybe_rotate(now_us);
            }
        }
    }
}

type CounterRow = (&'static str, u64, f64);
type HistogramRow = (&'static str, WindowSnapshot);

fn sorted_entries() -> (Vec<CounterRow>, Vec<HistogramRow>) {
    let reg = registry().lock().expect("windowed registry poisoned");
    let mut counters = Vec::new();
    let mut histograms = Vec::new();
    for e in reg.values() {
        match e {
            WEntry::C(c) => counters.push((c.name(), c.total(), c.rate_per_sec())),
            WEntry::H(h) => histograms.push((h.name(), h.snapshot())),
        }
    }
    counters.sort_by_key(|(n, _, _)| *n);
    histograms.sort_by_key(|(n, _)| *n);
    (counters, histograms)
}

/// Renders the windowed registry in Prometheus exposition format, with a
/// `_window` suffix on every series so it can be concatenated with the
/// cumulative [`crate::metrics::snapshot_prometheus`] output.
pub fn snapshot_prometheus() -> String {
    let (counters, histograms) = sorted_entries();
    let mut out = String::new();
    for (name, total, rate) in counters {
        let _ = writeln!(out, "# TYPE {name}_window_total gauge");
        let _ = writeln!(out, "{name}_window_total {total}");
        let _ = writeln!(out, "# TYPE {name}_window_rate gauge");
        let _ = writeln!(out, "{name}_window_rate {rate:.3}");
    }
    for (name, snap) in histograms {
        let _ = writeln!(out, "# TYPE {name}_window histogram");
        let mut cumulative = 0u64;
        for (i, b) in snap.buckets.iter().enumerate() {
            cumulative += b;
            let le = if i == 0 { 1u64 } else { 1u64 << i };
            if i == N_BUCKETS - 1 {
                let _ = writeln!(out, "{name}_window_bucket{{le=\"+Inf\"}} {cumulative}");
            } else {
                let _ = writeln!(out, "{name}_window_bucket{{le=\"{le}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{name}_window_sum {}", snap.sum);
        let _ = writeln!(out, "{name}_window_count {}", snap.count);
        let _ = writeln!(out, "# TYPE {name}_window_p50 gauge");
        let _ = writeln!(out, "{name}_window_p50 {}", snap.quantile(0.50));
        let _ = writeln!(out, "# TYPE {name}_window_p99 gauge");
        let _ = writeln!(out, "{name}_window_p99 {}", snap.quantile(0.99));
    }
    out
}

/// Renders the windowed registry as a JSON object:
/// `{"window_us":N,"counters":{name:{total,rate}},"histograms":{name:{count,sum,p50,p99,buckets}}}`.
pub fn snapshot_json() -> String {
    let (counters, histograms) = sorted_entries();
    let mut out = String::new();
    let _ = write!(out, "{{\"window_us\":{WINDOW_SPAN_US},\"counters\":{{");
    for (i, (name, total, rate)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{{\"total\":{total},\"rate\":{rate:.3}}}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, snap)) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
            snap.count,
            snap.sum,
            snap.quantile(0.50),
            snap.quantile(0.99)
        );
        for (j, b) in snap.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // No unit test calls `set_enabled` — the flag is process-global and
    // tests run concurrently; the armed path is covered via the
    // `_unconditional` variants and by the serve integration tests.

    #[test]
    fn disarmed_record_is_inert() {
        let h = WindowedHistogram::new("unit_disarmed");
        assert!(!enabled(), "windowed layer must start disarmed");
        h.record(7);
        assert_eq!(h.snapshot().count, 0);
        h.record_unconditional(7);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn rotation_evicts_only_the_oldest_slots() {
        let h = WindowedHistogram::new("unit_rotate");
        h.record_unconditional(8);
        // One span later: one slot advances, the sample survives.
        assert_eq!(h.maybe_rotate(SLOT_SPAN_US), 1);
        assert_eq!(h.snapshot().count, 1);
        // After a full extra revolution the ring is cleared.
        assert_eq!(h.maybe_rotate(SLOT_SPAN_US * (N_SLOTS as u64 + 1)), N_SLOTS);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn sub_span_ticks_do_not_rotate() {
        let h = WindowedHistogram::new("unit_subspan");
        h.record_unconditional(1);
        assert_eq!(h.maybe_rotate(SLOT_SPAN_US - 1), 0);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn counter_rate_covers_the_window() {
        let c = WindowedCounter::new("unit_rate");
        c.add_unconditional(120);
        assert_eq!(c.total(), 120);
        assert!((c.rate_per_sec() - 2.0).abs() < 1e-9, "120 events / 60 s");
        c.maybe_rotate(WINDOW_SPAN_US * 2);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn registry_renders_both_formats() {
        let h = histogram("halk_window_test_us");
        let c = counter("halk_window_test_total");
        h.record_unconditional(100);
        c.add_unconditional(1);
        assert!(std::ptr::eq(h, histogram("halk_window_test_us")));
        let prom = snapshot_prometheus();
        assert!(prom.contains("halk_window_test_us_window_p99 127"));
        assert!(prom.contains("halk_window_test_us_window_count 1"));
        assert!(prom.contains("halk_window_test_total_window_total 1"));
        let js = snapshot_json();
        assert!(js.contains("\"halk_window_test_us\":{\"count\":1"));
        assert!(js.contains(&format!("\"window_us\":{WINDOW_SPAN_US}")));
        let parsed: serde_json::Value = serde_json::from_str(&js)
            .unwrap_or_else(|e| panic!("snapshot_json must be valid JSON: {e}\n{js}"));
        assert!(parsed["histograms"]["halk_window_test_us"]["p99"]
            .as_f64()
            .is_some());
        assert!(parsed["counters"]["halk_window_test_total"]["total"]
            .as_f64()
            .is_some());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        histogram("halk_window_test_kind_clash");
        counter("halk_window_test_kind_clash");
    }
}
