//! Request deadlines over an injectable monotonic clock.
//!
//! Serving work must never block forever: plan execution and entity
//! scoring accept a [`Deadline`] and check it at coarse boundaries (plan
//! slots, 1024-row scoring slices), degrading to a partial answer or a
//! typed error instead of wedging a worker. The clock is injectable so the
//! expiry logic is testable without sleeping: [`Clock::mock`] returns a
//! clock whose "now" is an atomic the test advances by hand, and the same
//! [`Deadline`] type flows through production and tests.
//!
//! Cost discipline matches the rest of this crate: [`Deadline::never`]
//! never reads a clock, and an armed deadline is one `Instant::elapsed`
//! call (or one atomic load under a mock) per check — cheap enough for
//! per-slice polling but not for per-entity polling, which is why callers
//! check at slice boundaries only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock: real time anchored at construction, or a
/// hand-advanced atomic for deterministic tests.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Real monotonic time, measured from the anchor instant.
    Monotonic(Instant),
    /// Test clock: "now" is whatever the owner stored, in nanoseconds.
    Mock(Arc<AtomicU64>),
}

impl Clock {
    /// A real monotonic clock anchored at the call.
    pub fn monotonic() -> Clock {
        Clock::Monotonic(Instant::now())
    }

    /// A mock clock starting at 0 ns plus the handle that advances it.
    pub fn mock() -> (Clock, Arc<AtomicU64>) {
        let now = Arc::new(AtomicU64::new(0));
        (Clock::Mock(now.clone()), now)
    }

    /// Nanoseconds on this clock's timeline.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Monotonic(anchor) => anchor.elapsed().as_nanos() as u64,
            Clock::Mock(now) => now.load(Ordering::SeqCst),
        }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::monotonic()
    }
}

/// An absolute expiry on a [`Clock`]'s timeline. Cheap to clone and pass
/// down a call stack; `u64::MAX` means "never expires" and short-circuits
/// before touching the clock.
#[derive(Debug, Clone)]
pub struct Deadline {
    clock: Clock,
    at_ns: u64,
}

impl Deadline {
    /// A deadline that never expires (checks cost no clock read).
    pub fn never() -> Deadline {
        Deadline {
            // Anchor is irrelevant: expiry short-circuits on `at_ns`.
            clock: Clock::Monotonic(Instant::now()),
            at_ns: u64::MAX,
        }
    }

    /// A deadline `timeout` from the clock's current now.
    pub fn after(clock: &Clock, timeout: Duration) -> Deadline {
        let at_ns = clock
            .now_ns()
            .saturating_add(timeout.as_nanos().min(u64::MAX as u128 - 1) as u64);
        Deadline {
            clock: clock.clone(),
            at_ns,
        }
    }

    /// A deadline at an absolute nanosecond mark on the clock's timeline.
    pub fn at_ns(clock: &Clock, at_ns: u64) -> Deadline {
        Deadline {
            clock: clock.clone(),
            at_ns,
        }
    }

    /// True once the clock has reached (or passed) the expiry.
    #[inline]
    pub fn expired(&self) -> bool {
        self.at_ns != u64::MAX && self.clock.now_ns() >= self.at_ns
    }

    /// Nanoseconds left before expiry: 0 when expired, `u64::MAX` when the
    /// deadline never expires.
    pub fn remaining_ns(&self) -> u64 {
        if self.at_ns == u64::MAX {
            return u64::MAX;
        }
        self.at_ns.saturating_sub(self.clock.now_ns())
    }

    /// True when this deadline can expire at all.
    pub fn is_armed(&self) -> bool {
        self.at_ns != u64::MAX
    }

    /// The clock this deadline reads.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_does_not_expire() {
        let d = Deadline::never();
        assert!(!d.expired());
        assert!(!d.is_armed());
        assert_eq!(d.remaining_ns(), u64::MAX);
    }

    #[test]
    fn mock_clock_drives_expiry_deterministically() {
        let (clock, now) = Clock::mock();
        let d = Deadline::after(&clock, Duration::from_nanos(1_000));
        assert!(d.is_armed());
        assert!(!d.expired());
        assert_eq!(d.remaining_ns(), 1_000);
        now.store(999, Ordering::SeqCst);
        assert!(!d.expired());
        assert_eq!(d.remaining_ns(), 1);
        now.store(1_000, Ordering::SeqCst);
        assert!(d.expired());
        assert_eq!(d.remaining_ns(), 0);
        now.store(5_000, Ordering::SeqCst);
        assert!(d.expired());
    }

    #[test]
    fn monotonic_deadline_eventually_expires() {
        let clock = Clock::monotonic();
        let d = Deadline::after(&clock, Duration::ZERO);
        // A zero timeout is expired as soon as the clock ticks once.
        while !d.expired() {
            std::hint::spin_loop();
        }
        assert!(d.expired());
    }

    #[test]
    fn after_saturates_instead_of_overflowing() {
        let (clock, now) = Clock::mock();
        now.store(u64::MAX - 10, Ordering::SeqCst);
        let d = Deadline::after(&clock, Duration::from_secs(u64::MAX / 2));
        // Saturates into the unreachable top of the clock's range instead
        // of wrapping into the past.
        assert!(!d.expired());
    }
}
