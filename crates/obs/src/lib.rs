//! Dependency-free observability for the HaLk workspace, in the style of
//! `halk-par`: no external crates, no `unsafe`, nothing but `std`.
//!
//! Three layers, all off by default and all cheap enough to leave compiled
//! into release binaries:
//!
//! - **[`trace`]** — span/event tracing to a JSONL file selected by the
//!   `HALK_TRACE=path` environment variable (or [`trace::init_trace`]).
//!   [`span!`] returns an RAII guard that emits balanced open/close events
//!   with monotonic microsecond timestamps and a per-process thread id.
//!   Events accumulate in a lock-free per-thread buffer that flushes to the
//!   shared writer on overflow and on thread exit. When tracing is
//!   disabled the entire span is one relaxed [`AtomicBool`] load — the
//!   `tracing_overhead` entry of `bench_hotpath` pins this down.
//!
//! - **[`metrics`]** — a process-global registry of named counters, gauges
//!   and fixed-log2-bucket histograms. The hot path is one relaxed atomic
//!   op and never allocates; handles are interned once per call site by the
//!   [`counter!`]/[`gauge!`]/[`histogram!`] macros. Snapshots render in
//!   Prometheus exposition format or JSON.
//!
//! - **[`window`]** — rolling counterparts to the cumulative metrics: a
//!   ring of log2-bucket histograms rotated on a coarse epoch tick gives
//!   p50/p99 and rates over the last ~60 s instead of process lifetime.
//!   Armed only by the serve daemon ([`window::set_enabled`]); everywhere
//!   else the record path is one relaxed atomic load and a branch.
//!
//! - **[`log`]** — a leveled [`log!`] macro filtered by
//!   `HALK_LOG=error|warn|info|debug` (default `error`), so warnings that
//!   used to be unconditional `eprintln!` calls are quiet by default and
//!   complete at `debug`.
//!
//! [`manifest::Manifest`] ties a run together: config, seed, git revision,
//! thread count, wall/phase timings and final metrics, written as
//! `results/<run>/manifest.json` (see DESIGN.md §11 for the schema).
//!
//! The batch executor (`halk_core::exec`, DESIGN.md §15) is the one choke
//! point every surface's group lifecycle passes through, so its
//! instrumentation — the `exec_group` span, `halk_exec_jobs_total` /
//! `halk_exec_groups_total` / `halk_exec_group_size` and the cache
//! build/hit counters — covers training, evaluation and serving with a
//! single set of names.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

pub mod deadline;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod trace;
pub mod window;

pub use deadline::{Clock, Deadline};
pub use manifest::Manifest;

/// Starts a traced span; the returned RAII guard closes it on drop.
///
/// `span!("name")` takes a `&'static str` span name; the optional second
/// argument is a closure producing a detail string, evaluated **only when
/// tracing is enabled** so formatting costs nothing in the default mode.
///
/// ```
/// let _g = halk_obs::span!("embed_plan");
/// // ... traced work ...
/// drop(_g); // or let it fall out of scope
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
    ($name:expr, $detail:expr) => {
        $crate::trace::span_detail($name, $detail)
    };
}

/// Logs a leveled message to stderr, filtered by `HALK_LOG`.
///
/// ```
/// halk_obs::log!(Warn, "attempt budget exhausted after {} tries", 40);
/// ```
#[macro_export]
macro_rules! log {
    ($lvl:ident, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::$lvl) {
            $crate::log::emit($crate::log::Level::$lvl, format_args!($($arg)*));
        }
    };
}

/// Interns a [`metrics::Counter`] once per call site and returns the
/// `&'static` handle (one `OnceLock` load after the first call).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Interns a [`metrics::Gauge`] once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Interns a [`metrics::Histogram`] once per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// Interns a [`window::WindowedHistogram`] once per call site. The
/// convention is to register the same base name as the cumulative
/// histogram at the same call site; the windowed renderers add a
/// `_window` suffix.
#[macro_export]
macro_rules! windowed_histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::window::WindowedHistogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::window::histogram($name))
    }};
}

/// Interns a [`window::WindowedCounter`] once per call site.
#[macro_export]
macro_rules! windowed_counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::window::WindowedCounter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::window::counter($name))
    }};
}

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn macros_return_usable_handles() {
        let c = counter!("halk_lib_test_total");
        c.inc();
        c.add(2);
        assert!(c.get() >= 3);
        let g = gauge!("halk_lib_test_gauge");
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        let h = histogram!("halk_lib_test_us");
        h.record(7);
        assert!(h.count() >= 1);
        // Disabled span and filtered log are no-ops that still compile.
        let _g = span!("lib_test_span");
        log!(Debug, "not printed unless HALK_LOG=debug: {}", 1);
    }
}
