//! JSONL span/event tracing with per-thread buffers.
//!
//! One JSON object per line. Three event kinds:
//!
//! ```json
//! {"ev":"o","name":"eval_structure","ts_us":1203,"tid":2,"detail":"2p"}
//! {"ev":"c","name":"eval_structure","ts_us":5120,"tid":2,"dur_us":3917}
//! {"ev":"i","name":"rollback","ts_us":99,"tid":0}
//! ```
//!
//! `ts_us` is microseconds since the first trace call of the process
//! (monotonic per thread — buffers flush independently, so *file order*
//! across threads is not chronological); `tid` is a small per-process
//! thread ordinal. Open/close events are balanced per thread: the
//! [`SpanGuard`] emits the close in its `Drop`, and guards nest LIFO.
//!
//! Every event is formatted into a thread-local `String` (no locks on the
//! emit path) and flushed to the shared file when the buffer exceeds
//! [`FLUSH_AT`] bytes or the thread exits. Long-lived threads — `main` in
//! particular, whose thread-local destructors are not guaranteed to run —
//! must call [`flush`] before the process ends; the manifest writer and
//! the experiment harness do this for every binary.
//!
//! Short-lived worker threads (e.g. a `std::thread::scope` body) should
//! also call [`flush`] as the last statement of their closure: scope exit
//! waits for the closure to *return*, not for the thread's thread-local
//! destructors, so a drop-only flush can land after the spawner has
//! already read the file. The `halk-par` pool workers do this whenever
//! tracing is enabled.
//!
//! When no trace file is configured, [`span`] is a single relaxed atomic
//! load returning an inert guard.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Buffer size that triggers a mid-run flush to the shared writer.
const FLUSH_AT: usize = 32 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static WRITER: Mutex<Option<File>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static BUF: RefCell<TraceBuf> = const { RefCell::new(TraceBuf { buf: String::new() }) };
}

struct TraceBuf {
    buf: String,
}

impl Drop for TraceBuf {
    fn drop(&mut self) {
        flush_str(&mut self.buf);
    }
}

fn flush_str(buf: &mut String) {
    if buf.is_empty() {
        return;
    }
    if let Ok(mut w) = WRITER.lock() {
        if let Some(f) = w.as_mut() {
            // Whole buffers are line-aligned, so concurrent flushes can
            // interleave without ever splitting a JSON line.
            let _ = f.write_all(buf.as_bytes());
        }
    }
    buf.clear();
}

/// True when a trace file is configured; the only cost a disabled span
/// pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process's trace epoch (pinned at init).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// The calling thread's per-process trace ordinal.
pub fn thread_ordinal() -> u64 {
    TID.with(|t| *t)
}

/// Starts tracing to `path` (truncating it). Usually reached via
/// [`init_from_env`]; calling it again redirects subsequent events to the
/// new file (earlier buffered events are flushed to the old writer first).
pub fn init_trace(path: impl AsRef<Path>) -> io::Result<()> {
    flush();
    let f = File::create(path)?;
    EPOCH.get_or_init(Instant::now);
    *WRITER.lock().expect("trace writer poisoned") = Some(f);
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Enables tracing when `HALK_TRACE=path` is set and non-empty; errors
/// opening the file are reported once on stderr rather than panicking.
pub fn init_from_env() {
    if let Ok(path) = std::env::var("HALK_TRACE") {
        if !path.is_empty() {
            if let Err(e) = init_trace(&path) {
                eprintln!("warn: cannot open HALK_TRACE file {path}: {e}");
            }
        }
    }
}

/// Flushes the calling thread's buffered events to the trace file. Must be
/// called from the main thread before process exit (thread-local
/// destructors flush worker threads automatically).
pub fn flush() {
    BUF.with(|b| flush_str(&mut b.borrow_mut().buf));
}

fn emit(f: impl FnOnce(&mut String)) {
    BUF.with(|b| {
        let buf = &mut b.borrow_mut().buf;
        f(buf);
        buf.push('\n');
        if buf.len() >= FLUSH_AT {
            flush_str(buf);
        }
    });
}

fn emit_head(buf: &mut String, ev: char, name: &str, ts: u64) {
    let _ = write!(buf, "{{\"ev\":\"{ev}\",\"name\":\"");
    crate::json_escape_into(buf, name);
    let _ = write!(buf, "\",\"ts_us\":{ts},\"tid\":{}", thread_ordinal());
}

/// RAII guard for one span: created by [`span`]/[`crate::span!`], emits the
/// balanced close event (with `dur_us`) when dropped. Inert when tracing
/// was disabled at open time.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start_us: u64,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let ts = now_us();
        let dur = ts.saturating_sub(self.start_us);
        emit(|buf| {
            emit_head(buf, 'c', self.name, ts);
            let _ = write!(buf, ",\"dur_us\":{dur}}}");
        });
    }
}

impl SpanGuard {
    /// True when this guard will emit a close event (tracing was on at
    /// open time).
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

/// Opens a span. Prefer the [`crate::span!`] macro.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start_us: 0,
            armed: false,
        };
    }
    span_open(name, None)
}

/// Opens a span with a lazily-built detail string (evaluated only when
/// tracing is enabled).
#[inline]
pub fn span_detail(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start_us: 0,
            armed: false,
        };
    }
    span_open(name, Some(detail()))
}

fn span_open(name: &'static str, detail: Option<String>) -> SpanGuard {
    let ts = now_us();
    emit(|buf| {
        emit_head(buf, 'o', name, ts);
        if let Some(d) = &detail {
            buf.push_str(",\"detail\":\"");
            crate::json_escape_into(buf, d);
            buf.push('"');
        }
        buf.push('}');
    });
    SpanGuard {
        name,
        start_us: ts,
        armed: true,
    }
}

/// Emits an instant event (no duration).
#[inline]
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    let ts = now_us();
    emit(|buf| {
        emit_head(buf, 'i', name, ts);
        buf.push('}');
    });
}

/// Emits an instant event with a lazily-built detail string.
#[inline]
pub fn instant_detail(name: &'static str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let ts = now_us();
    let d = detail();
    emit(|buf| {
        emit_head(buf, 'i', name, ts);
        buf.push_str(",\"detail\":\"");
        crate::json_escape_into(buf, &d);
        buf.push_str("\"}");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // Tracing is never initialized in this unit-test process.
        assert!(!enabled());
        let g = span("unit_disabled");
        assert!(!g.is_armed());
        drop(g);
        instant("unit_disabled_instant");
        flush(); // no writer: a no-op
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let here = thread_ordinal();
        let there = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, thread_ordinal(), "ordinal is stable per thread");
    }
}
