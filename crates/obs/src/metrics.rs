//! Process-global metrics registry: counters, gauges and log2-bucket
//! histograms.
//!
//! Handles are interned by name on first use and live for the process
//! (`Box::leak`); after interning, every update is a single relaxed atomic
//! operation with no allocation — safe to leave in hot paths. The
//! [`crate::counter!`]/[`crate::gauge!`]/[`crate::histogram!`] macros cache
//! the interned handle per call site behind a `OnceLock`, so steady-state
//! cost is one atomic load plus the update.
//!
//! Histograms use fixed base-2 buckets: bucket 0 counts zeros, bucket `i`
//! (1 ≤ i ≤ 31) counts values in `[2^(i-1), 2^i)`, and the last bucket
//! absorbs everything at or above `2^30`. Values are unitless `u64`s; the
//! workspace convention is microseconds for timings.
//!
//! [`snapshot_prometheus`] renders the registry in Prometheus exposition
//! format, [`snapshot_json`] as a JSON object; [`write_snapshot`] picks the
//! format from the file extension (`.prom` → text, anything else → JSON).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets (bucket 0 plus 31 powers of two).
pub const N_BUCKETS: usize = 32;

/// A monotonically-increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`, capped.
/// Shared with the windowed ring in [`crate::window`].
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

impl Histogram {
    /// Records one sample (two relaxed atomic adds, no allocation).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (bucket 0 = zeros, bucket i = `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> [u64; N_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`) from the log2 buckets:
    /// the upper bound of the first bucket whose cumulative count reaches
    /// `q · count` (so the true quantile is ≤ the returned value, within a
    /// factor of 2). Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets(), q)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Approximate `q`-quantile of a log2 bucket array: the upper bound of
/// the first bucket whose cumulative count reaches `q · count` (so the
/// true quantile is ≤ the returned value, within a factor of 2). Returns
/// 0 when empty. Shared by [`Histogram::quantile`] and the windowed
/// snapshots in [`crate::window`].
pub(crate) fn quantile_from_buckets(buckets: &[u64; N_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cumulative += b;
        if cumulative >= rank {
            // Bucket 0 holds exact zeros; bucket i covers [2^(i-1), 2^i).
            return if i == 0 { 0 } else { (1u64 << i) - 1 };
        }
    }
    u64::MAX
}

enum Entry {
    C(&'static Counter),
    G(&'static Gauge),
    H(&'static Histogram),
}

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    static REGISTRY: std::sync::OnceLock<Mutex<HashMap<String, Entry>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn leak_name(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

/// Interns (or retrieves) the counter named `name`.
///
/// # Panics
/// If `name` is already registered as a gauge or histogram.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(e) = reg.get(name) {
        match e {
            Entry::C(c) => return c,
            _ => {
                drop(reg); // release before panicking: don't poison the registry
                panic!("metric {name} already registered with a different kind");
            }
        }
    }
    let leaked = leak_name(name);
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name: leaked,
        value: AtomicU64::new(0),
    }));
    reg.insert(leaked.to_string(), Entry::C(c));
    c
}

/// Interns (or retrieves) the gauge named `name`.
///
/// # Panics
/// If `name` is already registered as a counter or histogram.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(e) = reg.get(name) {
        match e {
            Entry::G(g) => return g,
            _ => {
                drop(reg); // release before panicking: don't poison the registry
                panic!("metric {name} already registered with a different kind");
            }
        }
    }
    let leaked = leak_name(name);
    let g: &'static Gauge = Box::leak(Box::new(Gauge {
        name: leaked,
        bits: AtomicU64::new(0f64.to_bits()),
    }));
    reg.insert(leaked.to_string(), Entry::G(g));
    g
}

/// Interns (or retrieves) the histogram named `name`.
///
/// # Panics
/// If `name` is already registered as a counter or gauge.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(e) = reg.get(name) {
        match e {
            Entry::H(h) => return h,
            _ => {
                drop(reg); // release before panicking: don't poison the registry
                panic!("metric {name} already registered with a different kind");
            }
        }
    }
    let leaked = leak_name(name);
    let h: &'static Histogram = Box::leak(Box::new(Histogram {
        name: leaked,
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        sum: AtomicU64::new(0),
    }));
    reg.insert(leaked.to_string(), Entry::H(h));
    h
}

type CounterRow = (&'static str, u64);
type GaugeRow = (&'static str, f64);
type HistogramRow = (&'static str, u64, u64, [u64; N_BUCKETS]);

/// Snapshot of every registered metric, sorted by name for deterministic
/// output. Internal building block for the two renderers.
fn sorted_entries() -> (Vec<CounterRow>, Vec<GaugeRow>, Vec<HistogramRow>) {
    let reg = registry().lock().expect("metrics registry poisoned");
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for e in reg.values() {
        match e {
            Entry::C(c) => counters.push((c.name(), c.get())),
            Entry::G(g) => gauges.push((g.name(), g.get())),
            Entry::H(h) => histograms.push((h.name(), h.count(), h.sum(), h.buckets())),
        }
    }
    counters.sort_by_key(|(n, _)| *n);
    gauges.sort_by_key(|(n, _)| *n);
    histograms.sort_by_key(|(n, _, _, _)| *n);
    (counters, gauges, histograms)
}

/// Writes a finite f64 as a JSON number (`null` for NaN/inf).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Renders the registry in Prometheus exposition format. Histograms use
/// the cumulative `_bucket{le="..."}` convention with power-of-two bounds.
pub fn snapshot_prometheus() -> String {
    let (counters, gauges, histograms) = sorted_entries();
    let mut out = String::new();
    for (name, v) in counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        if v.is_finite() {
            let _ = writeln!(out, "{name} {v}");
        } else {
            let _ = writeln!(out, "{name} NaN");
        }
    }
    for (name, count, sum, buckets) in histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            cumulative += b;
            // Bucket i counts values < 2^i (bucket 0: the zeros).
            let le = if i == 0 { 1u64 } else { 1u64 << i };
            if i == N_BUCKETS - 1 {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            } else {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    }
    out
}

/// Renders the registry as a JSON object:
/// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,buckets}}}`.
pub fn snapshot_json() -> String {
    let (counters, gauges, histograms) = sorted_entries();
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":");
        push_json_f64(&mut out, *v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, count, sum, buckets)) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{name}\":{{\"count\":{count},\"sum\":{sum},\"buckets\":["
        );
        for (j, b) in buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// Writes a snapshot to `path`: Prometheus text for `.prom`, JSON
/// otherwise. Parent directories are created as needed.
pub fn write_snapshot(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let text = if path.extension().is_some_and(|e| e == "prom") {
        snapshot_prometheus()
    } else {
        snapshot_json() + "\n"
    };
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1 << 29), 30);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("halk_metrics_test_total");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Re-interning returns the same handle.
        assert!(std::ptr::eq(c, counter("halk_metrics_test_total")));

        let g = gauge("halk_metrics_test_gauge");
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = histogram("halk_metrics_test_hist_us");
        let (c0, s0) = (h.count(), h.sum());
        h.record(0);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(), c0 + 3);
        assert_eq!(h.sum(), s0 + 1003);
        let b = h.buckets();
        assert!(b[0] >= 1, "zero lands in bucket 0");
        assert!(b[2] >= 1, "3 lands in bucket 2");
        assert!(b[10] >= 1, "1000 lands in bucket 10 ([512,1024))");
    }

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let h = histogram("halk_metrics_test_quantile_us");
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        for _ in 0..99 {
            h.record(3); // bucket 2: [2, 4)
        }
        h.record(1000); // bucket 10: [512, 1024)
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(0.99), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("halk_metrics_test_kind_clash");
        gauge("halk_metrics_test_kind_clash");
    }

    #[test]
    fn snapshots_are_well_formed() {
        counter("halk_metrics_test_snap_total").add(2);
        gauge("halk_metrics_test_snap_gauge").set(0.5);
        histogram("halk_metrics_test_snap_us").record(42);
        let prom = snapshot_prometheus();
        assert!(prom.contains("halk_metrics_test_snap_total 2"));
        assert!(prom.contains("# TYPE halk_metrics_test_snap_us histogram"));
        assert!(prom.contains("halk_metrics_test_snap_us_bucket{le=\"+Inf\"}"));
        let js = snapshot_json();
        assert!(js.contains("\"halk_metrics_test_snap_total\":2"));
        assert!(js.contains("\"halk_metrics_test_snap_gauge\":0.5"));
    }
}
