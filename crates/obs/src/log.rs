//! Leveled stderr logging filtered by `HALK_LOG`.
//!
//! Levels order `Error < Warn < Info < Debug`; a message prints when its
//! level is at or below the configured one. The default is `error`, so
//! stderr stays quiet unless something is genuinely broken — the ad-hoc
//! warnings the workspace used to print unconditionally (eval attempt
//! budget truncation, divergence rollback, TSV shape inference) now route
//! through [`crate::log!`] at `Warn` and appear with `HALK_LOG=warn` or
//! lower. `HALK_LOG=debug` shows everything.
//!
//! The filter check is one relaxed atomic load; formatting happens only
//! for messages that pass. When tracing is enabled, every printed message
//! is mirrored into the trace file as an instant event, so a debug run's
//! trace is self-contained.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Message severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions. Always printed.
    Error = 0,
    /// Degraded results the caller should know about.
    Warn = 1,
    /// Progress and configuration notes.
    Info = 2,
    /// Everything, including per-phase chatter.
    Debug = 3,
}

impl Level {
    /// Lower-case display name (also the `HALK_LOG` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_env(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

const UNINIT: usize = usize::MAX;
static LEVEL: AtomicUsize = AtomicUsize::new(UNINIT);

/// The active level: `HALK_LOG` on first call, [`Level::Error`] otherwise.
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != UNINIT {
        return match raw {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        };
    }
    let resolved = std::env::var("HALK_LOG")
        .ok()
        .and_then(|s| Level::from_env(&s))
        .unwrap_or(Level::Error);
    LEVEL.store(resolved as usize, Ordering::Relaxed);
    resolved
}

/// Overrides the level programmatically (tests, `--verbose`-style flags).
pub fn set_level(l: Level) {
    LEVEL.store(l as usize, Ordering::Relaxed);
}

/// True when a message at `l` would print. The [`crate::log!`] macro
/// checks this before formatting.
#[inline]
pub fn enabled(l: Level) -> bool {
    l <= level()
}

/// Prints a pre-filtered message (use [`crate::log!`], which checks
/// [`enabled`] first). Mirrors into the trace file when tracing is on.
pub fn emit(l: Level, args: fmt::Arguments<'_>) {
    if crate::trace::enabled() {
        let text = args.to_string();
        crate::trace::instant_detail("log", || format!("{}: {text}", l.name()));
        eprintln!("{}: {text}", l.name());
    } else {
        eprintln!("{}: {args}", l.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_and_ordering() {
        assert_eq!(Level::from_env("warn"), Some(Level::Warn));
        assert_eq!(Level::from_env(" DEBUG "), Some(Level::Debug));
        assert_eq!(Level::from_env("warning"), Some(Level::Warn));
        assert_eq!(Level::from_env("loud"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn set_level_controls_enabled() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        // Restore the quiet default for other tests in this process.
        set_level(Level::Error);
    }
}
