//! Property tests for the hardened frame parser: no byte stream — random,
//! truncated, oversized, or adversarially chunked — may panic the decoder
//! or make it allocate beyond its declared cap.

use halk_serve::protocol::{encode_frame, FrameDecoder, FrameError, Request, Response};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics, and every emitted payload
    /// respects the cap. (An allocation past the cap would show up as an
    /// oversized payload — the decoder only buffers after validating the
    /// header.)
    #[test]
    fn random_streams_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        max in 1usize..512,
    ) {
        let mut dec = FrameDecoder::new(max);
        let mut out = Vec::new();
        let result = dec.push(&bytes, &mut out);
        for payload in &out {
            prop_assert!(payload.len() <= max);
        }
        if let Err(FrameError::TooLarge { declared, max: m }) = result {
            prop_assert!(declared > m);
        }
    }

    /// Valid frames survive any fragmentation of the byte stream: split
    /// the wire image at arbitrary points and the same payloads come out.
    #[test]
    fn chunking_is_invisible(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..8),
        cut_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
        }
        let mut dec = FrameDecoder::new(64);
        let mut out = Vec::new();
        // Derive deterministic cut points from the seed.
        let mut pos = 0usize;
        let mut s = cut_seed;
        while pos < wire.len() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let step = 1 + (s % 7) as usize;
            let end = (pos + step).min(wire.len());
            dec.push(&wire[pos..end], &mut out).unwrap();
            pos = end;
        }
        prop_assert_eq!(out, payloads);
        prop_assert!(!dec.is_mid_frame());
    }

    /// A truncated wire image never yields a phantom payload: every
    /// complete frame before the cut is emitted, nothing after.
    #[test]
    fn truncation_yields_only_complete_frames(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
            boundaries.push(wire.len());
        }
        let cut = (cut_seed % wire.len() as u64) as usize;
        let mut dec = FrameDecoder::new(64);
        let mut out = Vec::new();
        dec.push(&wire[..cut], &mut out).unwrap();
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(out.len(), complete);
        let at_boundary = cut == 0 || boundaries.contains(&cut);
        prop_assert_eq!(dec.is_mid_frame(), !at_boundary);
    }

    /// An oversized declaration is rejected from the header alone; no
    /// payload bytes are ever buffered for it.
    #[test]
    fn oversized_is_rejected_at_the_header(
        max in 1usize..1024,
        excess in 1usize..4096,
    ) {
        let declared = max + excess;
        let mut dec = FrameDecoder::new(max);
        let mut out = Vec::new();
        let err = dec.push(&(declared as u32).to_le_bytes(), &mut out).unwrap_err();
        prop_assert_eq!(err, FrameError::TooLarge { declared, max });
        prop_assert!(out.is_empty());
    }

    /// Request/Response text parsing never panics on arbitrary UTF-8
    /// (lossily decoded byte soup covers multi-byte boundaries too).
    #[test]
    fn message_parsing_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Request::parse(&text);
        let _ = Response::parse(&text);
    }
}
