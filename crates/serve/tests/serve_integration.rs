//! End-to-end daemon tests over real sockets: correctness (answers
//! bit-identical to the one-shot path), fault isolation (panics, garbage,
//! disconnects), backpressure (typed Overloaded), and graceful shutdown.

use halk_core::{top_k_indices, HalkConfig, HalkModel};
use halk_kg::{generate, Graph, SynthConfig};
use halk_serve::protocol::{encode_frame, AskEngine, ErrorKind, Response};
use halk_serve::{Client, Engine, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::time::Duration;

fn small_graph(seed: u64) -> Graph {
    generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(seed))
}

fn trained_model(g: &Graph) -> HalkModel {
    let mut model = HalkModel::new(g, HalkConfig::tiny());
    let tc = halk_core::TrainConfig {
        steps: 15,
        threads: 1,
        ..halk_core::TrainConfig::tiny()
    };
    halk_core::train_model(&mut model, g, &[halk_logic::Structure::P1], &tc).unwrap();
    model
}

fn start(engine: Engine, cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(engine, cfg).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn fast_cfg() -> ServeConfig {
    ServeConfig {
        read_timeout: Duration::from_millis(20),
        stall: Duration::from_millis(200),
        drain: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

#[test]
fn served_answers_match_one_shot_bit_for_bit() {
    let g = small_graph(50);
    let model = trained_model(&g);
    let t = g.triples()[0];
    let sparql = format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t.h.0, t.r.0);

    // One-shot reference: the same paths `halk ask` runs.
    let query = halk_sparql::sparql_to_query(&sparql).unwrap();
    let shape = halk_logic::plan::PlanShape::compile(&query);
    let exact_ref =
        halk_logic::plan::execute_set(&shape, &halk_logic::plan::PlanBindings::of(&query), &g);
    let scores_ref = model.score_all(&query);
    let top_ref = top_k_indices(&scores_ref, 10);

    let (server, addr) = start(Engine::new(g, Some(model)), fast_cfg());
    let mut c = Client::connect(&addr).unwrap();

    match c.ask(AskEngine::Exact, 10, 0, &sparql).unwrap() {
        Response::Answers { total, ids } => {
            assert_eq!(total, exact_ref.len());
            let want: Vec<u32> = exact_ref.iter().take(10).map(|e| e.0).collect();
            assert_eq!(ids, want);
        }
        other => panic!("unexpected {other:?}"),
    }
    match c.ask(AskEngine::Halk, 10, 0, &sparql).unwrap() {
        Response::Scores {
            truncated,
            scored_rows,
            hits,
        } => {
            assert!(!truncated);
            assert_eq!(scored_rows, scores_ref.len());
            assert_eq!(hits.len(), top_ref.len());
            for (&want_id, &(got_id, got_score)) in top_ref.iter().zip(&hits) {
                assert_eq!(got_id, want_id);
                // Bit-identical across scoring, formatting and the wire.
                assert_eq!(got_score.to_bits(), scores_ref[want_id as usize].to_bits());
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    server.join();
}

#[test]
fn sharded_engine_serves_bit_identical_answers() {
    let g = small_graph(56);
    let model = trained_model(&g);
    let t = g.triples()[1];
    let sparql = format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t.h.0, t.r.0);
    let query = halk_sparql::sparql_to_query(&sparql).unwrap();
    let scores_ref = model.score_all(&query);
    let top_ref = top_k_indices(&scores_ref, 10);

    // Four shards on a single worker: the merge-k path with several real
    // partitions, no parallelism needed for correctness.
    let engine = Engine::new(g, Some(model)).shards(4);
    assert_eq!(engine.n_shards(), 4);
    let cfg = ServeConfig {
        workers: 1,
        ..fast_cfg()
    };
    let (server, addr) = start(engine, cfg);
    let mut c = Client::connect(&addr).unwrap();
    match c.ask(AskEngine::Halk, 10, 0, &sparql).unwrap() {
        Response::Scores {
            truncated,
            scored_rows,
            hits,
        } => {
            assert!(!truncated);
            assert_eq!(scored_rows, scores_ref.len());
            assert_eq!(hits.len(), top_ref.len());
            for (&want_id, &(got_id, got_score)) in top_ref.iter().zip(&hits) {
                assert_eq!(got_id, want_id);
                assert_eq!(got_score.to_bits(), scores_ref[want_id as usize].to_bits());
            }
        }
        other => panic!("unexpected {other:?}"),
    }
    server.join();
}

#[test]
fn stacked_same_skeleton_asks_batch_and_stay_bit_identical() {
    let g = small_graph(57);
    let model = trained_model(&g);

    // Five same-skeleton questions with different groundings — the shape
    // cache hands every session the same Arc<PlanShape>, so once they are
    // all queued behind the sleeper, the single worker drains them as one
    // batched group (one kernel pass per shard for the whole group).
    let mut asks = Vec::new();
    for t in g.triples().iter().take(64) {
        let sparql = format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t.h.0, t.r.0);
        if asks.iter().any(|(s, _)| s == &sparql) {
            continue;
        }
        let query = halk_sparql::sparql_to_query(&sparql).unwrap();
        asks.push((sparql, model.score_all(&query)));
        if asks.len() == 5 {
            break;
        }
    }
    assert_eq!(asks.len(), 5);

    let engine = Engine::new(g, Some(model)).shards(4).test_faults(true);
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 16,
        ..fast_cfg()
    };
    let (server, addr) = start(engine, cfg);

    // Occupy the single worker so the five asks stack up in the queue.
    let addr_busy = addr.clone();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_busy).unwrap();
        c.ask(AskEngine::Exact, 1, 5_000, "__sleep__:500").unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    let handles: Vec<_> = asks
        .iter()
        .map(|(sparql, _)| {
            let addr = addr.clone();
            let sparql = sparql.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.ask(AskEngine::Halk, 10, 0, &sparql).unwrap()
            })
        })
        .collect();

    for (h, (sparql, scores_ref)) in handles.into_iter().zip(&asks) {
        let top_ref = top_k_indices(scores_ref, 10);
        match h.join().unwrap() {
            Response::Scores {
                truncated,
                scored_rows,
                hits,
            } => {
                assert!(!truncated, "{sparql}");
                assert_eq!(scored_rows, scores_ref.len(), "{sparql}");
                assert_eq!(hits.len(), top_ref.len(), "{sparql}");
                for (&want_id, &(got_id, got_score)) in top_ref.iter().zip(&hits) {
                    assert_eq!(got_id, want_id, "{sparql}");
                    assert_eq!(
                        got_score.to_bits(),
                        scores_ref[want_id as usize].to_bits(),
                        "{sparql}: batched answers must be bit-identical"
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(busy.join().unwrap(), Response::Pong);

    // The daemon's own counters saw at least one multi-request group.
    let mut c = Client::connect(&addr).unwrap();
    match c.stats().unwrap() {
        Response::Stats { pairs } => {
            let get = |k: &str| {
                pairs
                    .iter()
                    .find(|(n, _)| n == k)
                    .map(|&(_, v)| v)
                    .unwrap_or_else(|| panic!("missing stat {k}"))
            };
            assert!(get("requests_total") >= 6);
            assert!(
                get("batched_groups") >= 1,
                "queued same-skeleton asks must have batched: {pairs:?}"
            );
            // p99 shares the process-global registry with the other tests
            // in this binary, so only sanity-check it.
            assert!(get("batch_size_p99") >= 1);
        }
        other => panic!("unexpected {other:?}"),
    }
    server.join();
}

#[test]
fn daemon_survives_panics_garbage_and_disconnects() {
    let g = small_graph(51);
    let (server, addr) = start(Engine::new(g, None).test_faults(true), fast_cfg());

    // 1. A panicking request gets a typed error; the daemon keeps serving.
    let mut c = Client::connect(&addr).unwrap();
    match c.ask(AskEngine::Exact, 5, 0, "__panic__").unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Panic),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(c.ping().unwrap(), Response::Pong);

    // 2. Garbage inside a valid frame: typed protocol error, then close.
    let mut c2 = Client::connect(&addr).unwrap();
    c2.stream_mut()
        .write_all(&encode_frame(b"EXPLODE NOW"))
        .unwrap();
    match c2.ping() {
        Ok(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Protocol),
        Ok(other) => panic!("unexpected {other:?}"),
        // The server may close before our second request lands.
        Err(_) => {}
    }

    // 3. An oversized frame header: rejected without allocation.
    let mut c3 = Client::connect(&addr).unwrap();
    c3.stream_mut().write_all(&u32::MAX.to_le_bytes()).unwrap();
    match c3.ping() {
        Ok(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Protocol),
        Ok(other) => panic!("unexpected {other:?}"),
        Err(_) => {}
    }

    // 4. Mid-frame disconnect: write half a frame and vanish.
    {
        let mut c4 = Client::connect(&addr).unwrap();
        c4.stream_mut().write_all(&[8, 0, 0, 0, b'P']).unwrap();
        // c4 drops here — mid-request disconnect.
    }

    // 5. A slowloris writer (half a frame, then silence) is cut off after
    // the stall budget rather than pinning a session forever.
    let mut c5 = Client::connect(&addr).unwrap();
    c5.stream_mut().write_all(&[8, 0, 0, 0, b'P']).unwrap();
    std::thread::sleep(Duration::from_millis(400));

    // After all of that, a fresh client still gets served.
    let mut c6 = Client::connect(&addr).unwrap();
    assert_eq!(c6.ping().unwrap(), Response::Pong);
    server.join();
}

#[test]
fn overload_sheds_with_typed_rejection() {
    let g = small_graph(52);
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..fast_cfg()
    };
    let (server, addr) = start(Engine::new(g, None).test_faults(true), cfg);

    // Occupy the single worker with a long sleep, fill the queue of 1,
    // then watch the next request bounce.
    let addr2 = addr.clone();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&addr2).unwrap();
        c.ask(AskEngine::Exact, 1, 5_000, "__sleep__:600").unwrap()
    });
    std::thread::sleep(Duration::from_millis(150)); // busy request is running
    let addr3 = addr.clone();
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(&addr3).unwrap();
        c.ask(AskEngine::Exact, 1, 5_000, "__sleep__:10").unwrap()
    });
    std::thread::sleep(Duration::from_millis(150)); // it is now queued

    let mut c = Client::connect(&addr).unwrap();
    match c.ask(AskEngine::Exact, 1, 5_000, "__sleep__:10").unwrap() {
        Response::Error { kind, detail } => {
            assert_eq!(kind, ErrorKind::Overloaded, "{detail}");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The well-formed in-budget requests still complete correctly.
    assert_eq!(busy.join().unwrap(), Response::Pong);
    assert_eq!(queued.join().unwrap(), Response::Pong);
    server.join();
}

#[test]
fn deadline_sheds_queued_work_and_truncates_scoring() {
    let g = small_graph(53);
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 8,
        ..fast_cfg()
    };
    let (server, addr) = start(Engine::new(g, None).test_faults(true), cfg);

    // Tie up the worker long enough that a short-deadline queued request
    // expires before execution — it must be shed with ERR deadline.
    let addr2 = addr.clone();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&addr2).unwrap();
        c.ask(AskEngine::Exact, 1, 5_000, "__sleep__:400").unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(&addr).unwrap();
    match c.ask(AskEngine::Exact, 1, 100, "__sleep__:10").unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Deadline),
        other => panic!("expected Deadline, got {other:?}"),
    }
    assert_eq!(busy.join().unwrap(), Response::Pong);
    server.join();
}

#[test]
fn shutdown_frame_drains_and_join_returns() {
    let g = small_graph(54);
    let (server, addr) = start(Engine::new(g, None), fast_cfg());
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.shutdown().unwrap(), Response::Bye);
    assert!(server.shutdown_requested());
    // Join must return promptly (drain is 500ms in fast_cfg).
    let t0 = std::time::Instant::now();
    server.join();
    assert!(t0.elapsed() < Duration::from_secs(10));

    // New connections are refused (or immediately closed) after drain.
    if let Ok(mut c2) = Client::connect(&addr) {
        assert!(c2.ping().is_err());
    }
}

#[test]
fn requests_during_drain_get_typed_shutdown() {
    let g = small_graph(55);
    let (server, addr) = start(Engine::new(g, None), fast_cfg());
    let mut c = Client::connect(&addr).unwrap();
    // Open a session first, then trigger shutdown from another client.
    let mut c2 = Client::connect(&addr).unwrap();
    assert_eq!(c2.shutdown().unwrap(), Response::Bye);
    // The already-open session's next request is refused as Shutdown —
    // or the server already closed it; both are graceful.
    match c.ask(AskEngine::Exact, 1, 0, "SELECT ?x WHERE { e:0 r:0 ?x . }") {
        Ok(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Shutdown),
        Ok(other) => panic!("unexpected {other:?}"),
        Err(_) => {}
    }
    server.join();
}

#[test]
fn batch_cap_is_configurable_and_surfaced_in_stats() {
    let g = small_graph(58);
    let model = trained_model(&g);

    // Five same-skeleton asks, as in the batching test above, but with the
    // drain cap squeezed to 2: the worker (and the executor beneath it)
    // may group at most two jobs per kernel pass, and every answer must
    // still be bit-identical to the one-shot reference.
    let mut asks = Vec::new();
    for t in g.triples().iter().take(64) {
        let sparql = format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t.h.0, t.r.0);
        if asks.iter().any(|(s, _)| s == &sparql) {
            continue;
        }
        let query = halk_sparql::sparql_to_query(&sparql).unwrap();
        asks.push((sparql, model.score_all(&query)));
        if asks.len() == 5 {
            break;
        }
    }
    let engine = Engine::new(g, Some(model)).batch_cap(2).test_faults(true);
    assert_eq!(engine.max_batch(), 2);
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 16,
        ..fast_cfg()
    };
    let (server, addr) = start(engine, cfg);

    // Stack the asks behind a sleeper so the drain actually has a queue.
    let addr_busy = addr.clone();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_busy).unwrap();
        c.ask(AskEngine::Exact, 1, 5_000, "__sleep__:300").unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));

    let handles: Vec<_> = asks
        .iter()
        .map(|(sparql, _)| {
            let addr = addr.clone();
            let sparql = sparql.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.ask(AskEngine::Halk, 10, 0, &sparql).unwrap()
            })
        })
        .collect();
    for (h, (sparql, scores_ref)) in handles.into_iter().zip(&asks) {
        let top_ref = top_k_indices(scores_ref, 10);
        match h.join().unwrap() {
            Response::Scores { hits, .. } => {
                let got: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
                assert_eq!(
                    got, top_ref,
                    "{sparql}: capped batches must stay bit-identical"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(busy.join().unwrap(), Response::Pong);

    let mut c = Client::connect(&addr).unwrap();
    match c.stats().unwrap() {
        Response::Stats { pairs } => {
            let cap = pairs
                .iter()
                .find(|(n, _)| n == "batch_cap")
                .map(|&(_, v)| v)
                .expect("STATS must surface the batch cap");
            assert_eq!(cap, 2);
        }
        other => panic!("unexpected {other:?}"),
    }
    server.join();
}

#[test]
fn obs_endpoint_serves_metrics_and_healthz() {
    fn http_get(addr: &std::net::SocketAddr, path: &str) -> String {
        use std::io::Read;
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    let g = small_graph(59);
    let t = g.triples()[0];
    let sparql = format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t.h.0, t.r.0);
    let engine = Engine::new(g, None);
    let cfg = ServeConfig {
        obs_addr: Some("127.0.0.1:0".to_string()),
        ..fast_cfg()
    };
    let (server, addr) = start(engine, cfg);
    let obs = server.obs_addr().expect("obs endpoint must be bound");

    // Traffic first, so the windowed series have something to show.
    let mut c = Client::connect(&addr).unwrap();
    for _ in 0..3 {
        match c.ask(AskEngine::Exact, 5, 0, &sparql).unwrap() {
            Response::Answers { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    let metrics = http_get(&obs, "/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"));
    assert!(
        metrics.contains("halk_serve_requests_total"),
        "cumulative series must be exposed"
    );
    assert!(
        metrics.contains("halk_serve_latency_us_window_p99"),
        "windowed quantile series must be exposed:\n{metrics}"
    );

    let json = http_get(&obs, "/metrics.json");
    assert!(json.contains("\"cumulative\":{"));
    assert!(json.contains("\"window_us\":"));
    assert!(json.contains("\"health\":{"));

    let health = http_get(&obs, "/healthz");
    assert!(health.contains("\"ok\":true"));
    assert!(health.contains("\"draining\":false"));
    assert!(health.contains("\"queue_cap\":64"));

    let missing = http_get(&obs, "/nope");
    assert!(missing.starts_with("HTTP/1.0 404"));

    // STATS carries the rolling quantiles and queue depth for load_gen.
    match c.stats().unwrap() {
        Response::Stats { pairs } => {
            for key in ["latency_p50_us", "latency_p99_us", "queue_depth"] {
                assert!(
                    pairs.iter().any(|(n, _)| n == key),
                    "STATS must carry {key}: {pairs:?}"
                );
            }
            let p99 = pairs
                .iter()
                .find(|(n, _)| n == "latency_p99_us")
                .map(|&(_, v)| v)
                .unwrap();
            assert!(p99 > 0, "three answered requests must leave a rolling p99");
        }
        other => panic!("unexpected {other:?}"),
    }
    server.join();
}
