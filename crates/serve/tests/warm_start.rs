//! Warm-start contract: every expensive table the scoring path needs is
//! built at engine construction, so request 1 runs exactly the same warmed
//! path as request 100 — no lazy initialization hides in the request loop.
//!
//! Pinned two ways: the `halk_trig_builds_total` counter (incremented by
//! every shard-table build in `halk_core`) must not move across requests,
//! and responses must be identical from the first request to the last.
//! This file is its own test binary, so the process-global counter is not
//! shared with unrelated engine constructions.

use halk_core::{HalkConfig, HalkModel, Precision};
use halk_kg::{generate, SynthConfig};
use halk_obs::{Clock, Deadline};
use halk_serve::{AskEngine, Engine, Response};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn deployment() -> Engine {
    let cfg = SynthConfig {
        n_entities: 600,
        ..SynthConfig::fb237_like()
    };
    let graph = generate(&cfg, &mut StdRng::seed_from_u64(21));
    let model = HalkModel::new(&graph, HalkConfig::tiny());
    Engine::with_options(graph, Some(model), Some(4), Precision::F32)
}

#[test]
fn request_1_equals_request_100_with_no_table_builds_between() {
    let builds = halk_obs::metrics::counter("halk_trig_builds_total");

    let before_boot = builds.get();
    let engine = deployment();
    assert!(
        builds.get() > before_boot,
        "boot must build the trig tables eagerly"
    );
    assert!(engine.trig_resident_bytes() > 0);

    // A mock clock keeps deadlines deterministic: time never advances, so
    // no request can be truncated and any response difference would come
    // from the execution path itself.
    let (clock, _now) = Clock::mock();
    let after_boot = builds.get();

    let sparql = "SELECT ?x WHERE { e:3 r:1 ?x . }";
    let first = engine.execute(
        AskEngine::Halk,
        10,
        sparql,
        &Deadline::after(&clock, std::time::Duration::from_secs(1)),
    );
    assert!(
        matches!(
            first,
            Response::Scores {
                truncated: false,
                ..
            }
        ),
        "warm engine answers untruncated: {first:?}"
    );
    for i in 2..=100 {
        let resp = engine.execute(
            AskEngine::Halk,
            10,
            sparql,
            &Deadline::after(&clock, std::time::Duration::from_secs(1)),
        );
        assert_eq!(resp, first, "request {i} diverged from request 1");
    }
    assert_eq!(
        builds.get(),
        after_boot,
        "the request path must never rebuild a trig table"
    );
}

#[test]
fn quantized_engine_warms_smaller_tables_at_boot() {
    let exact = deployment();
    let builds = halk_obs::metrics::counter("halk_trig_builds_total");

    let cfg = SynthConfig {
        n_entities: 600,
        ..SynthConfig::fb237_like()
    };
    let graph = generate(&cfg, &mut StdRng::seed_from_u64(21));
    let model = HalkModel::new(&graph, HalkConfig::tiny());
    let quant = Engine::with_options(graph, Some(model), Some(4), Precision::I16);

    assert_eq!(quant.scoring_precision(), Precision::I16);
    assert_eq!(quant.trig_resident_bytes() * 2, exact.trig_resident_bytes());
    assert_eq!(quant.trig_shard_bytes().len(), 4);

    // Same warm-start contract at reduced precision.
    let after_boot = builds.get();
    let (clock, _now) = Clock::mock();
    let sparql = "SELECT ?x WHERE { e:3 r:1 ?x . }";
    let first = quant.execute(
        AskEngine::Halk,
        10,
        sparql,
        &Deadline::after(&clock, std::time::Duration::from_secs(1)),
    );
    for _ in 2..=100 {
        let resp = quant.execute(
            AskEngine::Halk,
            10,
            sparql,
            &Deadline::after(&clock, std::time::Duration::from_secs(1)),
        );
        assert_eq!(resp, first);
    }
    assert_eq!(builds.get(), after_boot);
}
