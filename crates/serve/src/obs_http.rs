//! The telemetry scrape endpoint: a dependency-free HTTP/1.0 server on a
//! dedicated thread, enabled by `halk serve --obs-addr HOST:PORT`.
//!
//! Three read-only routes, all answerable while the query plane is
//! saturated (this thread never touches the request queue beyond reading
//! its depth):
//!
//! * `GET /metrics` — Prometheus exposition text: the cumulative registry
//!   ([`halk_obs::metrics::snapshot_prometheus`]) concatenated with the
//!   windowed one (`*_window_*` series, last ~60 s).
//! * `GET /metrics.json` — one JSON object with `cumulative`, `window`
//!   and `health` sub-objects; this is what `halk top` polls.
//! * `GET /healthz` — liveness plus capacity facts: queue depth/cap,
//!   session count, drain state, shard count, scoring precision,
//!   resident table bytes.
//!
//! The framing is deliberately minimal — request line parsed, headers
//! ignored, `Connection: close` on every response — because the clients
//! are scrapers and `halk top`, not browsers. Malformed requests get a
//! 400, unknown paths a 404; neither can wedge the thread (read timeout,
//! bounded request buffer).

use crate::server::Shared;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Most bytes of request head we will buffer before answering anyway.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Binds the scrape listener and spawns its serving thread. The thread
/// exits when the daemon's shutdown flag rises (checked every accept
/// tick), so [`crate::server::Server::join`] can join it in bounded time.
pub(crate) fn spawn(addr: &str, shared: Arc<Shared>) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("halk-serve-obs".to_string())
        .spawn(move || serve_loop(&listener, &shared))
        .expect("spawn obs thread");
    Ok((local, handle))
}

fn serve_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Rotate due window slots even when nobody is scraping, so rates
        // decay in real time rather than on the next request.
        halk_obs::window::tick(halk_obs::trace::now_us());
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Accepted sockets can inherit the listener's nonblocking mode on
    // some platforms; force blocking-with-timeout semantics.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                let complete = head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n");
                if complete || head.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            // Timeout or disconnect: answer with whatever arrived.
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&head);
    let (status, reason, ctype, body) = match parse_path(&text) {
        Some(path) => match path.as_str() {
            "/metrics" => (200, "OK", "text/plain; version=0.0.4", render_prometheus()),
            "/metrics.json" => (200, "OK", "application/json", render_json(shared)),
            "/healthz" => (200, "OK", "application/json", render_healthz(shared)),
            _ => (404, "Not Found", "text/plain", "not found\n".to_string()),
        },
        None => (
            400,
            "Bad Request",
            "text/plain",
            "bad request\n".to_string(),
        ),
    };
    let header = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
}

/// Extracts the path from an HTTP request head: `GET <path> ...` on the
/// first line. Query strings are stripped; non-GET methods are rejected.
fn parse_path(head: &str) -> Option<String> {
    let line = head.lines().next()?;
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some(path.to_string())
}

fn render_prometheus() -> String {
    halk_obs::window::tick(halk_obs::trace::now_us());
    let mut out = halk_obs::metrics::snapshot_prometheus();
    out.push_str(&halk_obs::window::snapshot_prometheus());
    out
}

fn render_json(shared: &Arc<Shared>) -> String {
    halk_obs::window::tick(halk_obs::trace::now_us());
    format!(
        "{{\"cumulative\":{},\"window\":{},\"health\":{}}}",
        halk_obs::metrics::snapshot_json(),
        halk_obs::window::snapshot_json(),
        render_healthz(shared)
    )
}

fn render_healthz(shared: &Arc<Shared>) -> String {
    let e = &shared.engine;
    format!(
        "{{\"ok\":true,\"draining\":{},\"queue_depth\":{},\"queue_cap\":{},\
         \"sessions\":{},\"max_sessions\":{},\"workers\":{},\"has_model\":{},\
         \"shards\":{},\"precision\":\"{}\",\"batch_cap\":{},\
         \"trig_resident_bytes\":{}}}",
        shared.shutdown.load(Ordering::SeqCst),
        shared.queue_len(),
        shared.cfg.queue_cap,
        shared.sessions.load(Ordering::SeqCst),
        shared.cfg.max_sessions,
        shared.cfg.workers,
        e.has_model(),
        e.n_shards(),
        e.scoring_precision().name(),
        e.max_batch(),
        e.trig_resident_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_path_handles_the_usual_shapes() {
        assert_eq!(
            parse_path("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").as_deref(),
            Some("/metrics")
        );
        assert_eq!(
            parse_path("GET /metrics.json?pretty=1 HTTP/1.0\r\n\r\n").as_deref(),
            Some("/metrics.json")
        );
        assert_eq!(parse_path("GET /healthz\n\n").as_deref(), Some("/healthz"));
        assert_eq!(parse_path("POST /metrics HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_path(""), None);
        assert_eq!(parse_path("garbage"), None);
    }
}
