//! The daemon: one acceptor, a bounded session pool, a bounded request
//! queue, and a worker pool — every stage designed to fail small.
//!
//! ```text
//!            accept            frame/parse       bounded queue
//!  clients ─────────▶ sessions ───────────▶ admit ─────────▶ workers
//!                      (≤ max_sessions)      │                 │
//!                      read/write timeouts   │ Overloaded      │ catch_unwind
//!                      stall budget          ▼                 ▼ deadline shed
//!                                         typed ERR        typed ERR
//! ```
//!
//! Robustness invariants, each pinned by a test or the CI fault drill:
//!
//! * **No unbounded anything.** Sessions, queue depth, frame size and
//!   per-request time are all capped; past every cap is a typed error
//!   frame, not latency.
//! * **Workers never touch sockets.** Sessions own their socket and its
//!   timeouts; workers answer through an in-memory channel, so a client
//!   that stops reading stalls only its own session thread (bounded by
//!   the write timeout), never a worker.
//! * **Admission is predictive.** [`admit`] rejects when the queue is
//!   full *or* when an EWMA of recent service times says the request
//!   would miss its deadline anyway — shedding early is cheaper than
//!   computing an answer nobody can use (`halk_serve_overloaded_total`).
//! * **Panics stay inside the request.** Each execution runs under
//!   `catch_unwind`; the requester gets `ERR panic`, the daemon keeps
//!   serving (`halk_serve_panics_total`).
//! * **Shutdown drains.** [`Server::begin_shutdown`] stops the acceptor,
//!   lets queued work finish until the drain deadline, then flushes the
//!   remainder as `ERR shutdown` — [`Server::join`] returns in bounded
//!   time.

use crate::engine::{BatchItem, Engine, PreparedAsk};
use crate::protocol::{encode_frame, ErrorKind, FrameDecoder, Request, Response, MAX_FRAME};
use halk_obs::{Clock, Deadline};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Optional telemetry scrape address (`halk serve --obs-addr`): when
    /// set, a dedicated thread serves `GET /metrics`, `/metrics.json` and
    /// `/healthz` there (the `obs_http` module).
    pub obs_addr: Option<String>,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded request queue depth; past it requests are shed.
    pub queue_cap: usize,
    /// Maximum concurrent client connections.
    pub max_sessions: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// How long [`Server::join`] lets queued work finish after shutdown
    /// begins before flushing it as `ERR shutdown`.
    pub drain: Duration,
    /// Session poll tick: socket read timeout, worker wakeup cadence.
    pub read_timeout: Duration,
    /// Socket write timeout — the slow-client bound.
    pub write_timeout: Duration,
    /// How long a connection may stall mid-frame before it is dropped as
    /// a slowloris (idle *between* frames is always fine).
    pub stall: Duration,
    /// Frame payload cap (see [`FrameDecoder`]).
    pub max_frame: usize,
    /// The clock deadlines run on — injectable for tests.
    pub clock: Clock,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            obs_addr: None,
            workers: 2,
            queue_cap: 64,
            max_sessions: 64,
            default_deadline: Duration::from_secs(2),
            drain: Duration::from_secs(5),
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            stall: Duration::from_secs(2),
            max_frame: MAX_FRAME,
            clock: Clock::Monotonic(Instant::now()),
        }
    }
}

/// Why [`admit`] turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The queue is at capacity.
    QueueFull,
    /// Predicted wait (EWMA service time × queue length) exceeds the
    /// request's remaining deadline — it would be shed later anyway.
    DeadlineUnmeetable,
}

/// The admission decision, as a pure function so backpressure behavior is
/// unit-testable without sockets or clocks: given the current queue
/// length, its cap, the EWMA of recent service times and the request's
/// remaining deadline budget, may this request enter the queue?
pub fn admit(
    queue_len: usize,
    queue_cap: usize,
    ewma_service_ns: u64,
    remaining_ns: u64,
) -> Result<(), Rejection> {
    if queue_len >= queue_cap {
        return Err(Rejection::QueueFull);
    }
    // Everything ahead of us plus our own execution, at recent pace. With
    // no history (ewma 0) or no deadline (u64::MAX) the prediction is
    // vacuous and only the queue cap applies.
    if ewma_service_ns > 0 && remaining_ns != u64::MAX {
        let predicted = ewma_service_ns.saturating_mul(queue_len as u64 + 1);
        if predicted > remaining_ns {
            return Err(Rejection::DeadlineUnmeetable);
        }
    }
    Ok(())
}

/// Mints request-scoped trace ids ([`handle_ask`]); id 0 is reserved for
/// "no identity" (CLI one-shots, tests), so the first request is 1.
static NEXT_REQ_ID: AtomicU64 = AtomicU64::new(1);

/// One queued request, carrying its reply channel. The query was already
/// parsed, validated and shape-resolved in the session thread
/// ([`Engine::prepare`]), so the queue holds only executable work and the
/// shape pointer doubles as the skeleton-batching key.
struct Job {
    prepared: PreparedAsk,
    top: usize,
    deadline: Deadline,
    reply: mpsc::Sender<Response>,
    /// The request's trace id, minted at accept.
    req: u64,
    /// `cfg.clock` ns when the job entered the queue (queue-wait basis).
    enqueued_ns: u64,
}

/// State shared by the acceptor, sessions, workers and the telemetry
/// endpoint ([`crate::obs_http`] reads it for `/healthz`).
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) cfg: ServeConfig,
    pub(crate) shutdown: AtomicBool,
    /// Drain deadline (ns on `cfg.clock`) once shutdown began; 0 = unset.
    drain_by_ns: AtomicU64,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// EWMA of worker service time in ns (α = 1/8), 0 until the first
    /// request completes.
    ewma_ns: AtomicU64,
    pub(crate) sessions: AtomicUsize,
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let by = self
                .cfg
                .clock
                .now_ns()
                .saturating_add(self.cfg.drain.as_nanos() as u64)
                .max(1);
            self.drain_by_ns.store(by, Ordering::SeqCst);
        }
        self.queue_cv.notify_all();
    }

    fn draining_expired(&self) -> bool {
        let by = self.drain_by_ns.load(Ordering::SeqCst);
        by != 0 && self.cfg.clock.now_ns() >= by
    }

    /// Current queue depth, for `STATS` and `/healthz`.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.lock().expect("queue").len()
    }

    fn observe_service(&self, ns: u64) {
        let prev = self.ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            prev - prev / 8 + ns / 8
        };
        self.ewma_ns.store(next, Ordering::Relaxed);
    }
}

/// A running daemon. Dropping it without [`Server::join`] leaks threads;
/// call `join` (which drains) or keep it for the process lifetime.
pub struct Server {
    local_addr: SocketAddr,
    obs_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    obs_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    session_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately; the daemon serves until [`Server::begin_shutdown`].
    pub fn start(engine: Engine, cfg: ServeConfig) -> io::Result<Server> {
        // A daemon is inherently live: arm windowed collection so the
        // rolling STATS quantiles work even without `--obs-addr`. Batch
        // binaries never arm it and pay only a relaxed-load branch.
        halk_obs::window::set_enabled(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            shutdown: AtomicBool::new(false),
            drain_by_ns: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            ewma_ns: AtomicU64::new(0),
            sessions: AtomicUsize::new(0),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("halk-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let session_handles = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = shared.clone();
            let handles = session_handles.clone();
            std::thread::Builder::new()
                .name("halk-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared, &handles))
                .expect("spawn acceptor")
        };
        let (obs_addr, obs_thread) = match shared.cfg.obs_addr.clone() {
            Some(addr) => {
                let (a, h) = crate::obs_http::spawn(&addr, shared.clone())?;
                (Some(a), Some(h))
            }
            None => (None, None),
        };
        Ok(Server {
            local_addr,
            obs_addr,
            shared,
            acceptor: Some(acceptor),
            obs_thread,
            workers,
            session_handles,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` had 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The telemetry endpoint's bound address, when `obs_addr` was
    /// configured (with the OS-assigned port when it had port 0).
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs_addr
    }

    /// Starts graceful shutdown: the acceptor stops, queued work drains
    /// until the drain deadline. Idempotent; also triggered by a client
    /// `SHUTDOWN` frame.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// True once shutdown began (signal, control frame, or explicit call).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Drains and joins every thread. Returns in bounded time: in-flight
    /// work finishes within the drain window, the rest is flushed with
    /// `ERR shutdown`.
    pub fn join(mut self) {
        self.begin_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(o) = self.obs_thread.take() {
            let _ = o.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.session_handles.lock().expect("sessions"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.sessions.load(Ordering::SeqCst) >= shared.cfg.max_sessions {
                    // Full house: a typed rejection is kinder than an
                    // unexplained RST, and it must not block the acceptor.
                    halk_obs::counter!("halk_serve_overloaded_total").inc();
                    halk_obs::windowed_counter!("halk_serve_overloaded_total").inc();
                    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
                    let resp = Response::Error {
                        kind: ErrorKind::Overloaded,
                        detail: "session limit reached".to_string(),
                    };
                    let mut stream = stream;
                    let _ = stream.write_all(&encode_frame(resp.encode().as_bytes()));
                    continue;
                }
                shared.sessions.fetch_add(1, Ordering::SeqCst);
                halk_obs::gauge!("halk_serve_sessions")
                    .set(shared.sessions.load(Ordering::SeqCst) as f64);
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("halk-serve-session".to_string())
                    .spawn(move || {
                        session_loop(&shared, stream);
                        shared.sessions.fetch_sub(1, Ordering::SeqCst);
                        halk_obs::gauge!("halk_serve_sessions")
                            .set(shared.sessions.load(Ordering::SeqCst) as f64);
                    })
                    .expect("spawn session");
                handles.lock().expect("sessions").push(handle);
            }
            // Nonblocking accept: idle tick, check the shutdown flag.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Writes one response frame; an error means the client is gone or too
/// slow (write timeout) and the session should end.
fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    stream.write_all(&encode_frame(resp.encode().as_bytes()))
}

fn protocol_error(stream: &mut TcpStream, detail: &str) {
    halk_obs::counter!("halk_serve_protocol_errors_total").inc();
    let resp = Response::Error {
        kind: ErrorKind::Protocol,
        detail: detail.to_string(),
    };
    // Best effort: the peer may already be gone.
    let _ = write_response(stream, &resp);
}

fn session_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    // Accepted sockets can inherit the listener's nonblocking mode on
    // some platforms; force blocking-with-timeout semantics.
    if stream.set_nonblocking(false).is_err()
        || stream
            .set_read_timeout(Some(shared.cfg.read_timeout))
            .is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return;
    }
    let mut decoder = FrameDecoder::new(shared.cfg.max_frame);
    let mut frames: Vec<Vec<u8>> = Vec::new();
    let mut buf = [0u8; 4096];
    let mut stalled = Duration::ZERO;
    'session: loop {
        // During drain, idle connections close; one mid-frame request
        // still gets read and served (the worker pool is draining too).
        if shared.shutdown.load(Ordering::SeqCst) && !decoder.is_mid_frame() {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // clean or mid-request disconnect — same thing
            Ok(n) => {
                stalled = Duration::ZERO;
                if let Err(e) = decoder.push(&buf[..n], &mut frames) {
                    protocol_error(&mut stream, &e.to_string());
                    break;
                }
                for payload in frames.drain(..) {
                    let Ok(text) = std::str::from_utf8(&payload) else {
                        protocol_error(&mut stream, "frame is not UTF-8");
                        break 'session;
                    };
                    let req = match Request::parse(text) {
                        Ok(r) => r,
                        Err(detail) => {
                            protocol_error(&mut stream, &detail);
                            break 'session;
                        }
                    };
                    match req {
                        Request::Ping => {
                            if write_response(&mut stream, &Response::Pong).is_err() {
                                break 'session;
                            }
                        }
                        Request::Shutdown => {
                            shared.begin_shutdown();
                            let _ = write_response(&mut stream, &Response::Bye);
                            break 'session;
                        }
                        // Counters only — answered inline, never queued, so
                        // stats stay readable under full load.
                        Request::Stats => {
                            if write_response(&mut stream, &stats_response(shared)).is_err() {
                                break 'session;
                            }
                        }
                        Request::Ask {
                            engine,
                            top,
                            deadline_ms,
                            sparql,
                        } => {
                            if handle_ask(shared, &mut stream, engine, top, deadline_ms, sparql)
                                .is_err()
                            {
                                break 'session;
                            }
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if decoder.is_mid_frame() {
                    stalled += shared.cfg.read_timeout;
                    if stalled >= shared.cfg.stall {
                        // Slowloris: a frame started and then the bytes
                        // stopped coming. Truncated streams end here too.
                        protocol_error(&mut stream, "stalled mid-frame");
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
}

/// Snapshot of the serving counters `load_gen` folds into its summary,
/// plus the memory-diet gauges: resident trig bytes (total, per shard)
/// at the engine's precision, and how long boot took (`boot_ns` is set by
/// the CLI around engine construction; 0 when serving embedded).
///
/// `latency_p50_us`/`latency_p99_us` are *rolling* quantiles over the
/// windowed latency histogram (last ~60 s), not lifetime aggregates —
/// they recover after a load spike instead of averaging it away.
fn stats_response(shared: &Shared) -> Response {
    let engine = &shared.engine;
    // Rotate stale window slots so a daemon idle since the last request
    // reports decayed, not frozen, rolling quantiles.
    halk_obs::window::tick(halk_obs::trace::now_us());
    let batch = halk_obs::histogram!("halk_serve_batch_size");
    let lat = halk_obs::windowed_histogram!("halk_serve_latency_us").snapshot();
    let mut pairs = vec![
        (
            "requests_total".to_string(),
            halk_obs::counter!("halk_serve_requests_total").get(),
        ),
        (
            "batched_groups".to_string(),
            halk_obs::counter!("halk_serve_batched_groups_total").get(),
        ),
        ("latency_p50_us".to_string(), lat.quantile(0.5)),
        ("latency_p99_us".to_string(), lat.quantile(0.99)),
        ("queue_depth".to_string(), shared.queue_len() as u64),
        ("batch_size_p50".to_string(), batch.quantile(0.5)),
        ("batch_size_p99".to_string(), batch.quantile(0.99)),
        ("batch_cap".to_string(), engine.max_batch() as u64),
        (
            "boot_ns".to_string(),
            halk_obs::metrics::gauge("halk_serve_boot_ns").get() as u64,
        ),
        (
            "trig_resident_bytes".to_string(),
            engine.trig_resident_bytes() as u64,
        ),
        (
            "trig_bytes_per_pair".to_string(),
            engine.scoring_precision().bytes_per_pair() as u64,
        ),
    ];
    for (s, bytes) in engine.trig_shard_bytes().into_iter().enumerate() {
        pairs.push((format!("trig_shard{s}_bytes"), bytes as u64));
    }
    Response::Stats { pairs }
}

/// Prepares, admits, enqueues and answers one ASK. `Err` means the socket
/// failed and the session should close; protocol-level failures are `Ok`
/// typed responses. Malformed queries are rejected right here in the
/// session thread ([`Engine::prepare`]) without ever entering the queue.
fn handle_ask(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    engine: crate::protocol::AskEngine,
    top: usize,
    deadline_ms: u64,
    sparql: String,
) -> io::Result<()> {
    halk_obs::counter!("halk_serve_requests_total").inc();
    halk_obs::windowed_counter!("halk_serve_requests_total").inc();
    // Mint the request's trace identity here, at accept: every downstream
    // span (queue, executor group, shard sweep, slow-query line) carries
    // this id, so `trace_check --reqids` can stitch the full chain.
    let req_id = NEXT_REQ_ID.fetch_add(1, Ordering::Relaxed);
    halk_obs::trace::instant_detail("req_accept", || {
        format!("req={req_id} top={top} deadline_ms={deadline_ms}")
    });
    let started = Instant::now();
    let prepared = match shared.engine.prepare(engine, &sparql) {
        Ok(p) => p,
        Err(resp) => {
            write_response(stream, &resp)?;
            let us = started.elapsed().as_micros() as u64;
            halk_obs::histogram!("halk_serve_latency_us").record(us);
            halk_obs::windowed_histogram!("halk_serve_latency_us").record(us);
            return Ok(());
        }
    };
    let budget = if deadline_ms > 0 {
        Duration::from_millis(deadline_ms)
    } else {
        shared.cfg.default_deadline
    };
    let deadline = Deadline::after(&shared.cfg.clock, budget);
    let (tx, rx) = mpsc::channel();
    let verdict = {
        let mut q = shared.queue.lock().expect("queue");
        if shared.shutdown.load(Ordering::SeqCst) {
            Err(Response::Error {
                kind: ErrorKind::Shutdown,
                detail: "daemon is draining".to_string(),
            })
        } else {
            match admit(
                q.len(),
                shared.cfg.queue_cap,
                shared.ewma_ns.load(Ordering::Relaxed),
                deadline.remaining_ns(),
            ) {
                Ok(()) => {
                    q.push_back(Job {
                        prepared,
                        top,
                        deadline: deadline.clone(),
                        reply: tx,
                        req: req_id,
                        enqueued_ns: shared.cfg.clock.now_ns(),
                    });
                    let depth = q.len();
                    halk_obs::gauge!("halk_serve_queue_depth").set(depth as f64);
                    halk_obs::trace::instant_detail("req_enqueue", || {
                        format!("req={req_id} depth={depth}")
                    });
                    shared.queue_cv.notify_one();
                    Ok(())
                }
                Err(why) => {
                    halk_obs::counter!("halk_serve_overloaded_total").inc();
                    halk_obs::windowed_counter!("halk_serve_overloaded_total").inc();
                    Err(Response::Error {
                        kind: ErrorKind::Overloaded,
                        detail: match why {
                            Rejection::QueueFull => {
                                format!("queue full ({})", shared.cfg.queue_cap)
                            }
                            Rejection::DeadlineUnmeetable => {
                                "predicted wait exceeds deadline".to_string()
                            }
                        },
                    })
                }
            }
        }
    };
    let resp = match verdict {
        Err(rejection) => rejection,
        Ok(()) => {
            // The worker always replies — even for shed or flushed jobs —
            // so this wait is bounded by deadline + drain + margin.
            let wait = Duration::from_nanos(
                deadline
                    .remaining_ns()
                    .min((shared.cfg.default_deadline + shared.cfg.drain).as_nanos() as u64),
            ) + shared.cfg.drain
                + Duration::from_secs(5);
            match rx.recv_timeout(wait) {
                Ok(r) => r,
                Err(_) => Response::Error {
                    kind: ErrorKind::Panic,
                    detail: "worker did not answer".to_string(),
                },
            }
        }
    };
    write_response(stream, &resp)?;
    let us = started.elapsed().as_micros() as u64;
    halk_obs::histogram!("halk_serve_latency_us").record(us);
    halk_obs::windowed_histogram!("halk_serve_latency_us").record(us);
    Ok(())
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue");
            loop {
                if let Some(j) = q.pop_front() {
                    halk_obs::gauge!("halk_serve_queue_depth").set(q.len() as f64);
                    break Some(j);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared
                    .queue_cv
                    .wait_timeout(q, shared.cfg.read_timeout)
                    .expect("queue")
                    .0;
            }
        };
        let Some(job) = job else { return };
        // Skeleton batching: pull queued companions sharing this job's
        // (shape pointer, engine) key — same `Arc::ptr_eq` homogeneity
        // guard as `train_batch` — so the group runs one kernel pass per
        // shard. Fault probes never batch (`batch_key` is None for them).
        let mut group = vec![job];
        let key = group[0]
            .prepared
            .batch_key()
            .map(|(s, e)| (Arc::clone(s), e));
        if let Some((shape, eng)) = key {
            let mut q = shared.queue.lock().expect("queue");
            let mut i = 0;
            while i < q.len() && group.len() < shared.engine.max_batch() {
                let matches = q[i]
                    .prepared
                    .batch_key()
                    .is_some_and(|(s, e)| Arc::ptr_eq(s, &shape) && e == eng);
                if matches {
                    group.push(q.remove(i).expect("index checked"));
                } else {
                    i += 1;
                }
            }
            halk_obs::gauge!("halk_serve_queue_depth").set(q.len() as f64);
        }

        // Per-job shedding, exactly as for singles: past the drain
        // deadline queued work is flushed, and work whose own deadline
        // passed while queued is shed — the client has given up.
        let draining = shared.draining_expired();
        let mut live: Vec<Job> = Vec::with_capacity(group.len());
        for job in group {
            if draining {
                let _ = job.reply.send(Response::Error {
                    kind: ErrorKind::Shutdown,
                    detail: "drain deadline reached".to_string(),
                });
            } else if job.deadline.expired() {
                halk_obs::counter!("halk_serve_deadline_shed_total").inc();
                halk_obs::windowed_counter!("halk_serve_deadline_shed_total").inc();
                let _ = job.reply.send(Response::Error {
                    kind: ErrorKind::Deadline,
                    detail: "deadline expired while queued".to_string(),
                });
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }

        let n = live.len();
        halk_obs::histogram!("halk_serve_batch_size").record(n as u64);
        halk_obs::windowed_histogram!("halk_serve_batch_size").record(n as u64);
        if n >= 2 {
            halk_obs::counter!("halk_serve_batched_groups_total").inc();
            halk_obs::windowed_counter!("halk_serve_batched_groups_total").inc();
        }
        let t0 = shared.cfg.clock.now_ns();
        // Queue wait travels with each item so the slow-query log can tell
        // "sat in the queue" apart from "slow kernel".
        let waits: Vec<u64> = live
            .iter()
            .map(|j| {
                let us = t0.saturating_sub(j.enqueued_ns) / 1_000;
                halk_obs::histogram!("halk_serve_queue_wait_us").record(us);
                halk_obs::windowed_histogram!("halk_serve_queue_wait_us").record(us);
                us
            })
            .collect();
        let _span = halk_obs::span!("serve_request");
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Singles go through `execute_batch` too: it carries the req id
            // and queue wait into the executor span and slow-query log.
            let items: Vec<BatchItem> = live
                .iter()
                .zip(&waits)
                .map(|(j, &queue_wait_us)| BatchItem {
                    prepared: &j.prepared,
                    top: j.top,
                    deadline: &j.deadline,
                    req: j.req,
                    queue_wait_us,
                })
                .collect();
            shared.engine.execute_batch(&items)
        }));
        match outcome {
            Ok(resps) => {
                // EWMA observes per-request cost, so batching *improves*
                // the admission controller's service-time estimate.
                shared.observe_service(shared.cfg.clock.now_ns().saturating_sub(t0) / n as u64);
                for (job, resp) in live.iter().zip(resps) {
                    if matches!(
                        resp,
                        Response::Scores {
                            truncated: true,
                            ..
                        }
                    ) {
                        halk_obs::counter!("halk_serve_truncated_total").inc();
                        halk_obs::windowed_counter!("halk_serve_truncated_total").inc();
                    }
                    let _ = job.reply.send(resp);
                }
            }
            Err(_) if n == 1 => {
                // The request died; the daemon must not. Panic payload is
                // already printed by the default hook.
                halk_obs::counter!("halk_serve_panics_total").inc();
                halk_obs::windowed_counter!("halk_serve_panics_total").inc();
                let _ = live[0].reply.send(Response::Error {
                    kind: ErrorKind::Panic,
                    detail: "request panicked; daemon still serving".to_string(),
                });
            }
            Err(_) => {
                // A batch member panicked the whole group: retry each job
                // alone under its own catch_unwind so one hostile query
                // cannot poison its batch-mates' answers. Retries keep the
                // original req id — it is the same request, retraced.
                for (job, &queue_wait_us) in live.iter().zip(&waits) {
                    let t1 = shared.cfg.clock.now_ns();
                    let one = catch_unwind(AssertUnwindSafe(|| {
                        shared.engine.execute_batch(&[BatchItem {
                            prepared: &job.prepared,
                            top: job.top,
                            deadline: &job.deadline,
                            req: job.req,
                            queue_wait_us,
                        }])
                    }));
                    let resp = match one {
                        Ok(mut r) => {
                            shared.observe_service(shared.cfg.clock.now_ns().saturating_sub(t1));
                            r.pop().expect("one item in, one response out")
                        }
                        Err(_) => {
                            halk_obs::counter!("halk_serve_panics_total").inc();
                            halk_obs::windowed_counter!("halk_serve_panics_total").inc();
                            Response::Error {
                                kind: ErrorKind::Panic,
                                detail: "request panicked; daemon still serving".to_string(),
                            }
                        }
                    };
                    let _ = job.reply.send(resp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_rejects_full_queue() {
        assert_eq!(admit(64, 64, 0, u64::MAX), Err(Rejection::QueueFull));
        assert_eq!(admit(65, 64, 0, u64::MAX), Err(Rejection::QueueFull));
        assert_eq!(admit(63, 64, 0, u64::MAX), Ok(()));
    }

    #[test]
    fn admit_predicts_deadline_misses_from_ewma() {
        let ms = 1_000_000u64;
        // 5 queued, service ~10ms each → ~60ms to finish ours; a 20ms
        // budget is hopeless, a 100ms budget is fine.
        assert_eq!(
            admit(5, 64, 10 * ms, 20 * ms),
            Err(Rejection::DeadlineUnmeetable)
        );
        assert_eq!(admit(5, 64, 10 * ms, 100 * ms), Ok(()));
        // No service history yet → only the cap applies.
        assert_eq!(admit(5, 64, 0, 1), Ok(()));
        // No deadline → prediction is vacuous.
        assert_eq!(admit(60, 64, 10 * ms, u64::MAX), Ok(()));
        // Empty queue but one request's service alone blows the budget.
        assert_eq!(
            admit(0, 64, 50 * ms, 20 * ms),
            Err(Rejection::DeadlineUnmeetable)
        );
    }

    #[test]
    fn ewma_tracks_service_times() {
        let shared = Shared {
            engine: Engine::new(halk_kg::Graph::from_triples(1, 1, vec![]), None),
            cfg: ServeConfig::default(),
            shutdown: AtomicBool::new(false),
            drain_by_ns: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            ewma_ns: AtomicU64::new(0),
            sessions: AtomicUsize::new(0),
        };
        shared.observe_service(8_000);
        assert_eq!(shared.ewma_ns.load(Ordering::Relaxed), 8_000);
        // α = 1/8: pulls toward new observations without thrashing.
        shared.observe_service(16_000);
        assert_eq!(shared.ewma_ns.load(Ordering::Relaxed), 9_000);
        shared.observe_service(0);
        assert_eq!(shared.ewma_ns.load(Ordering::Relaxed), 7_875);
    }
}
