//! The wire protocol: length-prefixed frames carrying UTF-8 text messages.
//!
//! A frame is a 4-byte little-endian payload length followed by that many
//! bytes of UTF-8. Text inside the frame keeps the protocol debuggable
//! (`printf`-able, greppable in traces); the length prefix keeps parsing
//! trivial and makes hostile input detectable *before* it costs anything:
//!
//! * a declared length above [`FrameDecoder::max_frame`] is rejected the
//!   moment the 4-byte header is complete — no allocation ever happens for
//!   an oversized frame;
//! * a truncated frame is simply an incomplete decoder ([`FrameDecoder::
//!   is_mid_frame`]), which the session layer converts into a slow-client
//!   protocol error after a stall budget;
//! * garbage bytes decode into at worst a garbage *message*, which the
//!   [`Request::parse`] layer rejects with a typed error — the decoder
//!   itself never panics on any byte sequence (see
//!   `tests/frame_properties.rs`).
//!
//! Message grammar (one message per frame):
//!
//! ```text
//! request  = "PING" | "SHUTDOWN" | "STATS"
//!          | "ASK " engine " " top " " deadline_ms "\n" sparql
//! engine   = "exact" | "halk"
//! response = "PONG" | "BYE"
//!          | "ANSWERS " total "\n" id*            ; exact engine
//!          | "SCORES " truncated " " rows "\n" (id " " score "\n")*
//!          | "STATS\n" (key " " value "\n")*      ; serving counters
//!          | "ERR " kind " " detail
//! ```
//!
//! Scores travel as Rust's shortest-round-trip `{:?}` float formatting, so
//! a client reparsing them recovers the server's `f32` bit pattern exactly
//! — "bit-identical to one-shot `halk ask`" is testable over the wire.

use std::fmt;

/// Default cap on a frame's payload size (64 KiB) — far above any real
/// query, far below anything that could pressure the allocator.
pub const MAX_FRAME: usize = 64 * 1024;

/// Length of the frame header (little-endian payload length).
pub const HEADER_LEN: usize = 4;

/// Why a byte stream stopped being a valid frame sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header declared a payload larger than the decoder's cap. The
    /// declared size was *not* allocated.
    TooLarge { declared: usize, max: usize },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame declares {declared} bytes, cap is {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder. Feed it arbitrary byte chunks as they arrive
/// from a socket; complete payloads come out in order. All state lives in
/// one small struct, so each connection owns one decoder and hostile
/// framing on one connection cannot affect another.
#[derive(Debug)]
pub struct FrameDecoder {
    max_frame: usize,
    header: [u8; HEADER_LEN],
    header_filled: usize,
    /// Payload in progress; capacity is bounded by `max_frame` because the
    /// header is validated before the first payload byte is buffered.
    payload: Vec<u8>,
    /// Declared payload length once the header is complete.
    need: Option<usize>,
}

impl FrameDecoder {
    /// A decoder rejecting frames whose payload exceeds `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            max_frame,
            header: [0; HEADER_LEN],
            header_filled: 0,
            payload: Vec::new(),
            need: None,
        }
    }

    /// The payload cap this decoder enforces.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// True when some bytes of an unfinished frame are buffered — the
    /// difference between an idle connection and a stalled (slowloris or
    /// truncated) one.
    pub fn is_mid_frame(&self) -> bool {
        self.header_filled > 0 || self.need.is_some()
    }

    /// Consumes a chunk of bytes, appending every completed payload to
    /// `out`. On [`FrameError`] the decoder is poisoned garbage and the
    /// connection should be closed; no partial payload is emitted.
    pub fn push(&mut self, mut bytes: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), FrameError> {
        while !bytes.is_empty() {
            match self.need {
                None => {
                    let take = (HEADER_LEN - self.header_filled).min(bytes.len());
                    self.header[self.header_filled..self.header_filled + take]
                        .copy_from_slice(&bytes[..take]);
                    self.header_filled += take;
                    bytes = &bytes[take..];
                    if self.header_filled == HEADER_LEN {
                        let declared = u32::from_le_bytes(self.header) as usize;
                        if declared > self.max_frame {
                            return Err(FrameError::TooLarge {
                                declared,
                                max: self.max_frame,
                            });
                        }
                        if declared == 0 {
                            // Complete immediately: a zero-length frame
                            // has no payload bytes to wait for.
                            out.push(Vec::new());
                            self.header_filled = 0;
                        } else {
                            self.need = Some(declared);
                            self.payload.reserve_exact(declared);
                        }
                    }
                }
                Some(need) => {
                    let take = (need - self.payload.len()).min(bytes.len());
                    self.payload.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    if self.payload.len() == need {
                        out.push(std::mem::take(&mut self.payload));
                        self.need = None;
                        self.header_filled = 0;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Encodes one payload as a length-prefixed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend((payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Which answering engine an `ASK` runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AskEngine {
    /// Exact set semantics over the plan IR (ground truth).
    Exact,
    /// HaLk embedding scores, ranked ascending.
    Halk,
}

impl AskEngine {
    fn as_str(self) -> &'static str {
        match self {
            AskEngine::Exact => "exact",
            AskEngine::Halk => "halk",
        }
    }
}

/// One client request (one frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ask the daemon to drain and exit (same path as SIGTERM).
    Shutdown,
    /// Snapshot the daemon's serving counters (batching, request totals).
    Stats,
    /// Answer a SPARQL query.
    Ask {
        engine: AskEngine,
        /// How many answers to return.
        top: usize,
        /// Per-request deadline in milliseconds; 0 = server default.
        deadline_ms: u64,
        sparql: String,
    },
}

impl Request {
    /// Renders the request as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => "PING".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Ask {
                engine,
                top,
                deadline_ms,
                sparql,
            } => format!("ASK {} {top} {deadline_ms}\n{sparql}", engine.as_str()),
        }
    }

    /// Parses a frame payload. The error string is safe to echo back to
    /// the client (single line, bounded length).
    pub fn parse(text: &str) -> Result<Request, String> {
        let (head, rest) = match text.split_once('\n') {
            Some((h, r)) => (h, Some(r)),
            None => (text, None),
        };
        let mut words = head.split(' ');
        match words.next() {
            Some("PING") => Ok(Request::Ping),
            Some("SHUTDOWN") => Ok(Request::Shutdown),
            Some("STATS") => Ok(Request::Stats),
            Some("ASK") => {
                let engine = match words.next() {
                    Some("exact") => AskEngine::Exact,
                    Some("halk") => AskEngine::Halk,
                    other => return Err(format!("unknown engine {other:?}")),
                };
                let top: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("bad top count")?;
                let deadline_ms: u64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("bad deadline")?;
                if words.next().is_some() {
                    return Err("trailing words in ASK header".to_string());
                }
                let sparql = rest.ok_or("ASK without a query line")?;
                Ok(Request::Ask {
                    engine,
                    top,
                    deadline_ms,
                    sparql: sparql.to_string(),
                })
            }
            _ => Err("unknown request verb".to_string()),
        }
    }
}

/// Typed failure classes a client can react to programmatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame or message; the server closes the connection.
    Protocol,
    /// The SPARQL text did not parse or references out-of-range ids.
    BadQuery,
    /// `engine=halk` requested but the daemon was started without a model.
    NoModel,
    /// Load shed: the admission controller predicted the deadline cannot
    /// be met, or the queue/session limit is reached. Retry with backoff.
    Overloaded,
    /// The deadline expired before a useful answer existed.
    Deadline,
    /// The request panicked; the daemon is still serving.
    Panic,
    /// The daemon is draining for shutdown.
    Shutdown,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadQuery => "bad_query",
            ErrorKind::NoModel => "no_model",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Panic => "panic",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    fn from_str(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "protocol" => ErrorKind::Protocol,
            "bad_query" => ErrorKind::BadQuery,
            "no_model" => ErrorKind::NoModel,
            "overloaded" => ErrorKind::Overloaded,
            "deadline" => ErrorKind::Deadline,
            "panic" => ErrorKind::Panic,
            "shutdown" => ErrorKind::Shutdown,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One server response (one frame).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Shutdown`]; the daemon is now draining.
    Bye,
    /// Exact answers: the full count plus the first `top` entity ids in
    /// ascending order — the same ids `halk ask --engine exact` prints.
    Answers { total: usize, ids: Vec<u32> },
    /// Ranked embedding answers. `truncated` is set when the deadline cut
    /// scoring short: `scored_rows` entities were ranked (the union of
    /// per-shard slice prefixes under arc-sharded scoring) and the hits
    /// are a correct top-k *of that scored subset* (bit-identical to the
    /// full pass on those rows), not of the whole entity table.
    Scores {
        truncated: bool,
        scored_rows: usize,
        hits: Vec<(u32, f32)>,
    },
    /// Serving counters as `(key, value)` pairs, e.g. the skeleton-batch
    /// counters `load_gen` folds into its summary. Keys are single words.
    Stats { pairs: Vec<(String, u64)> },
    /// A typed failure; `detail` is one human-readable line.
    Error { kind: ErrorKind, detail: String },
}

impl Response {
    /// Renders the response as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Response::Pong => "PONG".to_string(),
            Response::Bye => "BYE".to_string(),
            Response::Answers { total, ids } => {
                let mut out = format!("ANSWERS {total}\n");
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&id.to_string());
                }
                out
            }
            Response::Scores {
                truncated,
                scored_rows,
                hits,
            } => {
                let mut out = format!("SCORES {} {scored_rows}\n", u8::from(*truncated));
                for (id, score) in hits {
                    // `{:?}` prints the shortest string that reparses to
                    // the same f32 bits — exactness survives the wire.
                    out.push_str(&format!("{id} {score:?}\n"));
                }
                out
            }
            Response::Stats { pairs } => {
                let mut out = "STATS\n".to_string();
                for (k, v) in pairs {
                    out.push_str(&format!("{k} {v}\n"));
                }
                out
            }
            Response::Error { kind, detail } => {
                format!("ERR {kind} {}", detail.replace('\n', " "))
            }
        }
    }

    /// Parses a frame payload (the client side of [`Response::encode`]).
    pub fn parse(text: &str) -> Result<Response, String> {
        let (head, rest) = match text.split_once('\n') {
            Some((h, r)) => (h, r),
            None => (text, ""),
        };
        let mut words = head.split(' ');
        match words.next() {
            Some("PONG") => Ok(Response::Pong),
            Some("BYE") => Ok(Response::Bye),
            Some("ANSWERS") => {
                let total = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("bad ANSWERS total")?;
                let ids = rest
                    .split_whitespace()
                    .map(|w| w.parse().map_err(|_| format!("bad id {w:?}")))
                    .collect::<Result<Vec<u32>, String>>()?;
                Ok(Response::Answers { total, ids })
            }
            Some("SCORES") => {
                let truncated = match words.next() {
                    Some("0") => false,
                    Some("1") => true,
                    other => return Err(format!("bad truncated flag {other:?}")),
                };
                let scored_rows = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or("bad scored_rows")?;
                let mut hits = Vec::new();
                for line in rest.lines() {
                    let (id, score) = line.split_once(' ').ok_or("bad score line")?;
                    let id = id.parse().map_err(|_| format!("bad id {id:?}"))?;
                    let score = score.parse().map_err(|_| format!("bad score {score:?}"))?;
                    hits.push((id, score));
                }
                Ok(Response::Scores {
                    truncated,
                    scored_rows,
                    hits,
                })
            }
            Some("STATS") => {
                let mut pairs = Vec::new();
                for line in rest.lines() {
                    let (k, v) = line.split_once(' ').ok_or("bad stats line")?;
                    let v = v.parse().map_err(|_| format!("bad stats value {v:?}"))?;
                    pairs.push((k.to_string(), v));
                }
                Ok(Response::Stats { pairs })
            }
            Some("ERR") => {
                let kind = words
                    .next()
                    .and_then(ErrorKind::from_str)
                    .ok_or("bad error kind")?;
                let detail = head.splitn(3, ' ').nth(2).unwrap_or("").to_string();
                Ok(Response::Error { kind, detail })
            }
            _ => Err("unknown response verb".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_any_chunking() {
        let payloads: Vec<&[u8]> = vec![b"PING", b"", b"ASK exact 5 100\nSELECT"];
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p));
        }
        // Feed one byte at a time — worst-case fragmentation.
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b), &mut out).unwrap();
        }
        assert_eq!(out, payloads);
        assert!(!dec.is_mid_frame());
    }

    #[test]
    fn oversized_header_is_rejected_before_any_payload() {
        let mut dec = FrameDecoder::new(16);
        let mut out = Vec::new();
        let err = dec.push(&(u32::MAX).to_le_bytes(), &mut out).unwrap_err();
        assert_eq!(
            err,
            FrameError::TooLarge {
                declared: u32::MAX as usize,
                max: 16
            }
        );
        assert!(out.is_empty());
    }

    #[test]
    fn partial_frame_is_mid_frame() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        dec.push(&[3, 0], &mut out).unwrap();
        assert!(dec.is_mid_frame());
        dec.push(&[0, 0, b'a'], &mut out).unwrap();
        assert!(dec.is_mid_frame());
        dec.push(b"bc", &mut out).unwrap();
        assert!(!dec.is_mid_frame());
        assert_eq!(out, vec![b"abc".to_vec()]);
    }

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request::Ping,
            Request::Shutdown,
            Request::Stats,
            Request::Ask {
                engine: AskEngine::Halk,
                top: 10,
                deadline_ms: 250,
                sparql: "SELECT ?x WHERE { e:0 r:1 ?x . }".to_string(),
            },
        ];
        for r in cases {
            assert_eq!(Request::parse(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn responses_roundtrip_scores_bit_exactly() {
        let awkward = vec![
            (0u32, f32::MIN_POSITIVE),
            (1, 0.1),
            (2, 1.0 / 3.0),
            (3, f32::INFINITY),
            (4, 123456.78),
        ];
        let r = Response::Scores {
            truncated: true,
            scored_rows: 2048,
            hits: awkward.clone(),
        };
        match Response::parse(&r.encode()).unwrap() {
            Response::Scores { hits, .. } => {
                for ((_, want), (_, got)) in awkward.iter().zip(&hits) {
                    assert_eq!(want.to_bits(), got.to_bits());
                }
            }
            other => panic!("wrong variant {other:?}"),
        }
        let e = Response::Error {
            kind: ErrorKind::Overloaded,
            detail: "queue full (64)".to_string(),
        };
        assert_eq!(Response::parse(&e.encode()).unwrap(), e);
        assert_eq!(
            Response::parse(&Response::Pong.encode()).unwrap(),
            Response::Pong
        );
    }

    #[test]
    fn stats_response_roundtrips() {
        let s = Response::Stats {
            pairs: vec![
                ("batched_groups".to_string(), 7),
                ("batch_size_p50".to_string(), 3),
                ("requests_total".to_string(), 120),
            ],
        };
        assert_eq!(Response::parse(&s.encode()).unwrap(), s);
        let empty = Response::Stats { pairs: vec![] };
        assert_eq!(Response::parse(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn garbage_messages_are_typed_errors() {
        assert!(Request::parse("NOPE").is_err());
        assert!(Request::parse("ASK warp 1 1\nq").is_err());
        assert!(Request::parse("ASK exact nope 1\nq").is_err());
        assert!(Request::parse("ASK exact 1 1").is_err());
        assert!(Response::parse("WAT").is_err());
    }
}
