//! SIGINT/SIGTERM → one process-global [`AtomicBool`], no external crates.
//!
//! The workspace vendors no `libc`, so the handler is installed through a
//! two-symbol FFI declaration of POSIX `signal(2)`. The handler body is a
//! single relaxed atomic store — the only thing that is async-signal-safe
//! *and* useful — and everything else (draining, checkpointing, manifest
//! writing) happens cooperatively on normal threads that poll the flag.
//!
//! Rust's runtime already ignores `SIGPIPE`, so a client disconnecting
//! mid-write surfaces as a normal `io::Error` on the socket, never a
//! process kill.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the POSIX function of that name; the handler
        // only performs an atomic store, which is async-signal-safe.
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal delivery on this platform; the flag is still usable as a
    /// cooperative stop switch (e.g. from a SHUTDOWN control frame).
    pub fn install() {}
}

/// Installs SIGINT/SIGTERM handlers (idempotent) and returns the flag they
/// raise. Callers poll it between units of work.
pub fn install_shutdown_flag() -> &'static AtomicBool {
    imp::install();
    &SHUTDOWN
}

/// The flag without (re)installing handlers — for code that only needs to
/// raise or observe it.
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// True once a shutdown signal (or a manual raise) happened.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}
