//! `halk-serve` — a fault-tolerant query-serving daemon for the HaLk
//! reproduction, in the workspace house style: `std` only, no `unsafe`
//! beyond one POSIX `signal(2)` FFI declaration, everything bounded.
//!
//! One-shot `halk ask` pays a process launch, a graph parse and a model
//! load per question; the daemon pays them once and then answers over a
//! length-prefixed TCP protocol at interactive latency. The interesting
//! part is not the happy path but the hostile one — the design center is
//! *graceful degradation* (in the spirit of FuzzQE's soft answering:
//! an approximate answer under pressure beats no answer):
//!
//! | pressure | response |
//! |---|---|
//! | request takes too long | [`Deadline`] checked at slice boundaries; partial top-k with `truncated` flag ([`Response::Scores`]) |
//! | more load than capacity | bounded queue + predictive [`admit`]; typed `ERR overloaded` |
//! | request panics | `catch_unwind` per request; typed `ERR panic`, daemon lives |
//! | malformed / oversized / truncated frames | typed `ERR protocol`, bounded allocation ([`FrameDecoder`]) |
//! | slow or stalled clients | read/write timeouts, mid-frame stall budget |
//! | SIGINT / SIGTERM / `SHUTDOWN` frame | acceptor stops, queue drains to a deadline, metrics flush |
//!
//! Served answers are **bit-identical** to one-shot `halk ask`: the exact
//! engine runs the same compiled plans, and embedding scores travel as
//! shortest-round-trip floats (see [`protocol`]). The `halk` engine
//! scores through arc-sharded streaming top-k heaps, and workers group
//! in-flight same-skeleton requests ([`engine::PreparedAsk::batch_key`])
//! into one kernel pass per shard — DESIGN.md §13. DESIGN.md §12
//! documents the protocol grammar, the backpressure state machine and
//! the shutdown sequence; `scripts/ci.sh` drills the fault paths and the
//! sharded path against a live daemon on every run.
//!
//! [`Deadline`]: halk_obs::Deadline
//! [`admit`]: server::admit
//! [`Response::Scores`]: protocol::Response::Scores
//! [`FrameDecoder`]: protocol::FrameDecoder

pub mod client;
pub mod engine;
pub(crate) mod obs_http;
pub mod protocol;
pub mod server;
pub mod signal;

pub use client::Client;
pub use engine::{BatchItem, Engine, PreparedAsk};
pub use protocol::{AskEngine, ErrorKind, FrameDecoder, Request, Response, MAX_FRAME};
pub use server::{admit, Rejection, ServeConfig, Server};
