//! The request engine: everything loaded once and shared by all workers.
//!
//! A daemon's whole point is amortization — the KG, the model, the plan
//! cache and the entity trig tables are built at startup and then shared
//! immutably (`&self`) across every request, so a request costs only its
//! own query compilation (cached per skeleton) and scoring sweep.
//!
//! [`Engine::execute`] is the unit of panic isolation: the server runs it
//! under `catch_unwind`, so whatever a hostile query manages to trip stays
//! inside one request. With [`Engine::test_faults`] enabled (the load
//! generator's fault drill; never in normal operation) two magic query
//! strings exercise the isolation machinery end-to-end: `__panic__`
//! panics, `__sleep__:<ms>` stalls while honoring the deadline.

use crate::protocol::{AskEngine, ErrorKind, Response};
use halk_core::{top_k_indices, EntityTrig, HalkModel};
use halk_kg::Graph;
use halk_logic::plan::{execute_set_deadline, PlanBindings, PlanCache};
use halk_logic::Query;
use halk_obs::Deadline;

/// Immutable serving state, shared across worker threads.
pub struct Engine {
    graph: Graph,
    model: Option<HalkModel>,
    /// Warm half-angle trig of the model's entity table.
    trig: Option<EntityTrig>,
    /// Skeleton-keyed plan cache for the exact engine (bounded — see
    /// `halk_logic::plan::PlanCache`).
    plans: PlanCache,
    test_faults: bool,
}

impl Engine {
    /// Builds the serving state, warming the entity trig once.
    pub fn new(graph: Graph, model: Option<HalkModel>) -> Engine {
        let trig = model.as_ref().map(HalkModel::entity_trig);
        Engine {
            graph,
            model,
            trig,
            plans: PlanCache::new(),
            test_faults: false,
        }
    }

    /// Enables the `__panic__` / `__sleep__:<ms>` fault hooks. Only the
    /// fault drill turns this on; a production daemon treats those
    /// strings as the bad SPARQL they are.
    pub fn test_faults(mut self, enabled: bool) -> Engine {
        self.test_faults = enabled;
        self
    }

    /// The graph being served.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// True when a model is loaded (the `halk` engine is available).
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// Answers one request. Infallible by construction: every failure is a
    /// typed [`Response::Error`]. May panic only through a bug (or an
    /// injected test fault) — the server catches that one level up.
    pub fn execute(
        &self,
        engine: AskEngine,
        top: usize,
        sparql: &str,
        deadline: &Deadline,
    ) -> Response {
        if self.test_faults {
            if sparql == "__panic__" {
                panic!("injected test fault");
            }
            if let Some(ms) = sparql.strip_prefix("__sleep__:") {
                return self.fault_sleep(ms, deadline);
            }
        }
        let query = match halk_sparql::sparql_to_query(sparql) {
            Ok(q) => q,
            Err(e) => {
                return Response::Error {
                    kind: ErrorKind::BadQuery,
                    detail: e.to_string(),
                }
            }
        };
        if let Err(detail) = self.validate(&query) {
            return Response::Error {
                kind: ErrorKind::BadQuery,
                detail,
            };
        }
        match engine {
            AskEngine::Exact => self.execute_exact(&query, top, deadline),
            AskEngine::Halk => self.execute_halk(&query, top, deadline),
        }
    }

    /// Rejects queries referencing entities or relations outside the
    /// graph before they can index out of bounds deep in the engine.
    fn validate(&self, query: &Query) -> Result<(), String> {
        let n = self.graph.n_entities() as u32;
        let r = self.graph.n_relations() as u32;
        if let Some(e) = query.anchors().iter().find(|e| e.0 >= n) {
            return Err(format!("entity e:{} out of range (n={n})", e.0));
        }
        if let Some(rel) = query.relations().iter().find(|rel| rel.0 >= r) {
            return Err(format!("relation r:{} out of range (n={r})", rel.0));
        }
        Ok(())
    }

    fn execute_exact(&self, query: &Query, top: usize, deadline: &Deadline) -> Response {
        let shape = self.plans.shape_for(query);
        match execute_set_deadline(&shape, &PlanBindings::of(query), &self.graph, deadline) {
            Ok(ans) => Response::Answers {
                total: ans.len(),
                ids: ans.iter().take(top).map(|e| e.0).collect(),
            },
            // Exact sets have no useful partial answer; degrade to a
            // typed deadline error instead of a wrong set.
            Err(halk_logic::plan::DeadlineExpired) => Response::Error {
                kind: ErrorKind::Deadline,
                detail: "deadline expired during plan execution".to_string(),
            },
        }
    }

    fn execute_halk(&self, query: &Query, top: usize, deadline: &Deadline) -> Response {
        let (Some(model), Some(trig)) = (&self.model, &self.trig) else {
            return Response::Error {
                kind: ErrorKind::NoModel,
                detail: "daemon started without --model".to_string(),
            };
        };
        let mut scores = Vec::new();
        let rows = model.score_all_until(trig, query, &mut scores, deadline);
        let truncated = rows < scores.len();
        // Soft degradation: rank whatever prefix fit in the budget. The
        // prefix scores are bit-identical to the full pass, so hits are
        // exact for the rows that were reached.
        let hits = top_k_indices(&scores[..rows], top)
            .into_iter()
            .map(|e| (e, scores[e as usize]))
            .collect();
        Response::Scores {
            truncated,
            scored_rows: rows,
            hits,
        }
    }

    /// `__sleep__:<ms>`: hold a worker busy while staying
    /// deadline-honest, in 5 ms slices like a real long computation.
    fn fault_sleep(&self, ms: &str, deadline: &Deadline) -> Response {
        let Ok(ms) = ms.parse::<u64>() else {
            return Response::Error {
                kind: ErrorKind::BadQuery,
                detail: "bad __sleep__ duration".to_string(),
            };
        };
        let mut slept = 0u64;
        while slept < ms {
            if deadline.expired() {
                return Response::Error {
                    kind: ErrorKind::Deadline,
                    detail: format!("deadline expired {slept} ms into sleep"),
                };
            }
            let step = 5.min(ms - slept);
            std::thread::sleep(std::time::Duration::from_millis(step));
            slept += step;
        }
        Response::Pong
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::Triple;

    fn toy_engine(test_faults: bool) -> Engine {
        let graph = Graph::from_triples(
            4,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
            ],
        );
        Engine::new(graph, None).test_faults(test_faults)
    }

    #[test]
    fn exact_ask_answers_and_bad_queries_are_typed() {
        let e = toy_engine(false);
        let r = e.execute(
            AskEngine::Exact,
            10,
            "SELECT ?x WHERE { e:0 r:0 ?x . }",
            &Deadline::never(),
        );
        assert_eq!(
            r,
            Response::Answers {
                total: 2,
                ids: vec![1, 2]
            }
        );
        let bad = e.execute(AskEngine::Exact, 10, "SELECT nonsense", &Deadline::never());
        assert!(matches!(
            bad,
            Response::Error {
                kind: ErrorKind::BadQuery,
                ..
            }
        ));
        // Out-of-range ids are rejected, not panicked on.
        let oob = e.execute(
            AskEngine::Exact,
            10,
            "SELECT ?x WHERE { e:99 r:0 ?x . }",
            &Deadline::never(),
        );
        assert!(matches!(
            oob,
            Response::Error {
                kind: ErrorKind::BadQuery,
                ..
            }
        ));
    }

    #[test]
    fn halk_engine_without_model_is_no_model() {
        let e = toy_engine(false);
        let r = e.execute(
            AskEngine::Halk,
            5,
            "SELECT ?x WHERE { e:0 r:0 ?x . }",
            &Deadline::never(),
        );
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::NoModel,
                ..
            }
        ));
    }

    #[test]
    fn expired_deadline_on_exact_is_a_typed_error() {
        let e = toy_engine(false);
        let (clock, now) = halk_obs::Clock::mock();
        now.store(10, std::sync::atomic::Ordering::SeqCst);
        let d = Deadline::at_ns(&clock, 1);
        let r = e.execute(AskEngine::Exact, 10, "SELECT ?x WHERE { e:0 r:0 ?x . }", &d);
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::Deadline,
                ..
            }
        ));
    }

    #[test]
    fn fault_hooks_are_inert_without_the_flag() {
        let e = toy_engine(false);
        let r = e.execute(AskEngine::Exact, 10, "__panic__", &Deadline::never());
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::BadQuery,
                ..
            }
        ));
    }

    #[test]
    fn sleep_fault_honors_deadline() {
        let e = toy_engine(true);
        let clock = halk_obs::Clock::monotonic();
        let d = Deadline::after(&clock, std::time::Duration::from_millis(10));
        let r = e.execute(AskEngine::Exact, 10, "__sleep__:10000", &d);
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::Deadline,
                ..
            }
        ));
    }
}
