//! The request engine: everything loaded once and shared by all workers.
//!
//! A daemon's whole point is amortization — the KG, the model, the plan
//! cache and the shard-local entity trig tables are built at startup and
//! then shared immutably (`&self`) across every request, so a request
//! costs only its own query compilation (cached per skeleton) and scoring
//! sweep.
//!
//! Requests are answered in two steps. [`Engine::prepare`] runs in the
//! *session* thread: parse, validate, and resolve the cached
//! `Arc<PlanShape>` — malformed queries bounce with a typed error before
//! ever touching the worker queue, and the shape pointer becomes the
//! skeleton-batching key. [`Engine::execute_prepared`] (or
//! [`Engine::execute_batch`] for a same-skeleton group) runs in a worker
//! under `catch_unwind`, so whatever a hostile query manages to trip stays
//! inside one request. With [`Engine::test_faults`] enabled (the load
//! generator's fault drill; never in normal operation) two magic query
//! strings exercise the isolation machinery end-to-end: `__panic__`
//! panics, `__sleep__:<ms>` stalls while honoring the deadline — both are
//! deferred to the worker so the panic lands inside the isolation
//! boundary, not in the session loop.
//!
//! The `halk` engine scores through the arc-sharded path: per-shard
//! streaming bounded top-k heaps merged by rank (`halk_core::shard`),
//! never materializing a full score vector, bit-identical to the one-shot
//! `score_all` + `top_k_indices` reference.

use crate::protocol::{AskEngine, ErrorKind, Response};
use halk_core::shard::sharded_top_k_timed;
use halk_core::{
    ArcShards, EntityTrig, ExecBackend, ExecConfig, Executor, HalkModel, Pool, Precision, ShapeKey,
    ShardedTrig, DEFAULT_BATCH_CAP,
};
use halk_kg::Graph;
use halk_logic::plan::PlanShape;
use halk_logic::plan::{execute_set_batch, PlanBindings};
use halk_logic::Query;
use halk_obs::Deadline;
use std::sync::Arc;

/// Immutable serving state, shared across worker threads.
///
/// All the batching machinery — the skeleton-keyed plan cache, the
/// resident shard-local trig tables, the group-size cap — lives in the
/// engine's [`Executor`]; the engine itself keeps only the graph, the
/// model, and the serve-specific reduce hooks ([`ServeBackend`]'s exact
/// set execution, sharded top-k sweeps, and fault probes).
pub struct Engine {
    graph: Graph,
    model: Option<HalkModel>,
    /// The skeleton-keyed batch executor: owns the plan cache, the
    /// resident [`ShardedTrig`] tables (shard count + precision knobs),
    /// and the batch-drain cap.
    exec: Executor,
    test_faults: bool,
    /// Slow-query threshold in milliseconds: a group whose wall time
    /// reaches it emits one structured line per member request (`None`
    /// disables; `Some(0)` logs everything — CI's chain-validation mode).
    /// Defaults from `HALK_SLOW_MS`; `halk serve --slow-ms` overrides.
    slow_ms: Option<u64>,
}

/// A session-side compiled request: parsed, validated, and keyed by its
/// cached plan shape so workers can group same-skeleton jobs.
pub struct PreparedAsk {
    kind: PreparedKind,
}

enum PreparedKind {
    Query {
        engine: AskEngine,
        query: Query,
        shape: Arc<PlanShape>,
    },
    /// A `__panic__` / `__sleep__:<ms>` fault probe, deferred to the
    /// worker so it fires inside the catch_unwind boundary.
    Fault(String),
}

impl PreparedAsk {
    /// The skeleton-batching key: same `Arc<PlanShape>` pointer + same
    /// engine ⇒ the jobs can share one kernel pass. `None` for fault
    /// probes, which always run alone.
    pub fn batch_key(&self) -> Option<(&Arc<PlanShape>, AskEngine)> {
        match &self.kind {
            PreparedKind::Query { engine, shape, .. } => Some((shape, *engine)),
            PreparedKind::Fault(_) => None,
        }
    }
}

/// One member of a same-skeleton batch: a prepared request plus its
/// per-request answer budget and deadline, and the request-scoped trace
/// identity the daemon minted at accept time.
#[derive(Clone, Copy)]
pub struct BatchItem<'a> {
    pub prepared: &'a PreparedAsk,
    pub top: usize,
    pub deadline: &'a Deadline,
    /// The daemon-minted [`ReqId`](crate::server) carried through the
    /// trace hop chain; 0 for paths with no request identity (CLI `ask`,
    /// tests) — those are omitted from `req=` trace details.
    pub req: u64,
    /// Microseconds the request waited in the daemon queue before a
    /// worker picked it up (0 off the daemon path).
    pub queue_wait_us: u64,
}

/// Wall-time breakdown of one group execution, reported by the slow-query
/// log. For halk groups `embed` is the batched plan embedding, `score`
/// the parallel shard sweep and `merge` the coordinator merge-k; exact
/// groups report plan execution under `score`; fault probes report zeros.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseBreakdown {
    embed_us: u64,
    score_us: u64,
    merge_us: u64,
}

/// The default slow-query threshold: `HALK_SLOW_MS=<ms>` (unset or
/// unparsable = disabled).
fn slow_ms_from_env() -> Option<u64> {
    std::env::var("HALK_SLOW_MS").ok()?.parse().ok()
}

/// The engine lane of a group, for trace details and the slow-query log.
fn lane_name(key: Option<&ShapeKey>) -> &'static str {
    match key {
        None => "fault",
        Some(k) if k.lane() == AskEngine::Exact as u32 => "exact",
        Some(_) => "halk",
    }
}

/// `"1,5,9"` — the nonzero request ids of a group, `None` when the group
/// has no daemon-minted identity at all.
fn req_list(items: &[BatchItem]) -> Option<String> {
    let ids: Vec<String> = items
        .iter()
        .filter(|it| it.req != 0)
        .map(|it| it.req.to_string())
        .collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids.join(","))
    }
}

/// The serve surface of the executor: keys jobs by shape pointer with the
/// engine discriminant as the lane (exact and halk requests for the same
/// skeleton never share a kernel), and reduces each group to protocol
/// responses. Fault probes are keyless, so the executor runs them alone —
/// inside the worker's `catch_unwind`, where their panics belong.
struct ServeBackend<'a> {
    engine: &'a Engine,
}

impl<'a> ExecBackend for ServeBackend<'a> {
    type Job = BatchItem<'a>;
    type Out = Response;

    fn key_of(&self, _exec: &Executor, job: &BatchItem<'a>) -> Option<ShapeKey> {
        job.prepared
            .batch_key()
            .map(|(shape, engine)| ShapeKey::with_lane(Arc::clone(shape), engine as u32))
    }

    fn exec_group(
        &self,
        _exec: &Executor,
        key: Option<&ShapeKey>,
        jobs: &[&BatchItem<'a>],
    ) -> Vec<Response> {
        let items: Vec<BatchItem<'a>> = jobs.iter().map(|&&it| it).collect();
        let t0 = std::time::Instant::now();
        let mut phases = PhaseBreakdown::default();
        let out: Vec<Response> = match key {
            None => items
                .iter()
                .map(|it| match &it.prepared.kind {
                    PreparedKind::Fault(s) => self.engine.run_fault(s, it.deadline),
                    PreparedKind::Query { .. } => unreachable!("query jobs always carry a key"),
                })
                .collect(),
            Some(key) => {
                let (_, engine) = items[0]
                    .prepared
                    .batch_key()
                    .expect("keyed jobs are queries");
                match engine {
                    AskEngine::Exact => {
                        self.engine
                            .execute_exact_group(key.shape(), &items, &mut phases)
                    }
                    AskEngine::Halk => {
                        self.engine
                            .execute_halk_group(key.shape(), &items, &mut phases)
                    }
                }
            }
        };
        self.engine
            .note_slow_group(key, &items, t0.elapsed().as_micros() as u64, phases);
        out
    }

    /// Tags the group's `exec_group` span with `req=...` ids, the engine
    /// lane and the batch size, so the JSONL hop chain session → queue →
    /// executor is greppable by request id (DESIGN.md §16).
    fn group_detail(&self, key: Option<&ShapeKey>, jobs: &[&BatchItem<'a>]) -> Option<String> {
        let items: Vec<BatchItem<'a>> = jobs.iter().map(|&&it| it).collect();
        let lane = lane_name(key);
        Some(match req_list(&items) {
            Some(reqs) => format!("req={reqs} lane={lane} batch={}", jobs.len()),
            None => format!("lane={lane} batch={}", jobs.len()),
        })
    }
}

impl Engine {
    /// Builds the serving state, warming the shard-local entity trig once.
    /// The shard count defaults to the pool's thread budget (HALK_THREADS
    /// or the machine); override with [`Engine::shards`].
    pub fn new(graph: Graph, model: Option<HalkModel>) -> Engine {
        Engine::with_options(graph, model, None, Precision::F32)
    }

    /// [`Engine::new`] with the shard count and trig precision fixed up
    /// front, so the boot-time table build happens exactly once in the
    /// requested format (no throwaway full-precision warm-up).
    pub fn with_options(
        graph: Graph,
        model: Option<HalkModel>,
        shards: Option<usize>,
        precision: Precision,
    ) -> Engine {
        let shards = shards.unwrap_or_else(|| Pool::auto().threads()).max(1);
        let mut engine = Engine {
            graph,
            model,
            exec: Executor::new(Engine::exec_config(shards, precision)),
            test_faults: false,
            slow_ms: slow_ms_from_env(),
        };
        engine.rebuild_sharded();
        engine
    }

    /// The serving executor profile: the same `model_batch` pool region
    /// the model's own executor uses, capped at [`DEFAULT_BATCH_CAP`]
    /// per group (`halk serve --batch-cap` overrides).
    fn exec_config(shards: usize, precision: Precision) -> ExecConfig {
        ExecConfig {
            label: "model_batch",
            batch_cap: DEFAULT_BATCH_CAP,
            shards,
            precision,
            ..ExecConfig::default()
        }
    }

    /// [`Engine::with_options`] booting from a precomputed full-precision
    /// trig table (a snapshot's `TRIG` section) instead of paying the
    /// sin/cos sweep. The table is re-sliced into shards — bit-identical
    /// to a fresh build at every precision (`ShardedTrig::from_table`) —
    /// and dropped afterwards, so the resident working set is the same as
    /// a cold boot's.
    pub fn with_boot_table(
        graph: Graph,
        model: HalkModel,
        trig: &EntityTrig,
        shards: Option<usize>,
        precision: Precision,
    ) -> Engine {
        assert_eq!(
            trig.n_entities(),
            model.n_entities(),
            "boot trig/model entity count mismatch"
        );
        let shards = shards.unwrap_or_else(|| Pool::auto().threads()).max(1);
        let version = model.param_store().steps_taken();
        let engine = Engine {
            graph,
            model: Some(model),
            exec: Executor::new(Engine::exec_config(shards, precision)),
            test_faults: false,
            slow_ms: slow_ms_from_env(),
        };
        let parts = ArcShards::new(trig.n_entities(), shards);
        engine
            .exec
            .install_sharded(version, ShardedTrig::from_table(trig, &parts, precision));
        engine.publish_trig_gauges();
        engine
    }

    /// Overrides the arc-shard count, rebuilding the shard-local trig.
    pub fn shards(mut self, n: usize) -> Engine {
        self.exec.set_shards(n.max(1));
        self.rebuild_sharded();
        self
    }

    /// Overrides the trig storage [`Precision`], rebuilding the
    /// shard-local tables in the requested format. `F32` (the default) is
    /// bit-identical to every pre-quantization release; `I16`/`I8` shrink
    /// the resident working set by 2×/4× and preserve ranks, not bits.
    pub fn precision(mut self, p: Precision) -> Engine {
        self.exec.set_precision(p);
        self.rebuild_sharded();
        self
    }

    /// Overrides the batch-drain cap: the most same-skeleton jobs one
    /// worker groups into a single kernel pass (`halk serve --batch-cap`;
    /// defaults to [`DEFAULT_BATCH_CAP`]).
    pub fn batch_cap(mut self, cap: usize) -> Engine {
        self.exec.set_batch_cap(cap.max(1));
        self
    }

    /// The batch-drain cap the workers group up to.
    pub fn max_batch(&self) -> usize {
        self.exec.batch_cap()
    }

    /// Warms the shard-local trig at the configured shard count and
    /// precision, and publishes the resident-bytes gauges. This runs at
    /// construction — request 1 scores through exactly the same tables as
    /// request 100.
    fn rebuild_sharded(&mut self) {
        self.exec.invalidate();
        if let Some(m) = &self.model {
            let _ = self.exec.sharded_trig(m);
        }
        self.publish_trig_gauges();
    }

    /// Publishes the resident-bytes gauges for the current shard tables.
    fn publish_trig_gauges(&self) {
        if let Some(sharded) = self.exec.resident_sharded() {
            let total = sharded.resident_bytes();
            halk_obs::metrics::gauge("halk_serve_trig_resident_bytes").set(total as f64);
            halk_obs::metrics::gauge(&format!(
                "halk_serve_trig_resident_bytes_{}",
                self.exec.precision().name()
            ))
            .set(total as f64);
            for (s, bytes) in self.trig_shard_bytes().into_iter().enumerate() {
                halk_obs::metrics::gauge(&format!("halk_serve_trig_resident_bytes_shard_{s}"))
                    .set(bytes as f64);
            }
        }
    }

    /// The configured arc-shard count.
    pub fn n_shards(&self) -> usize {
        self.exec.shards()
    }

    /// The trig storage precision the engine scores at.
    pub fn scoring_precision(&self) -> Precision {
        self.exec.precision()
    }

    /// Total resident bytes of the shard-local trig tables (0 without a
    /// model).
    pub fn trig_resident_bytes(&self) -> usize {
        self.exec
            .resident_sharded()
            .map_or(0, |s| s.resident_bytes())
    }

    /// Resident trig bytes per shard (empty without a model).
    pub fn trig_shard_bytes(&self) -> Vec<usize> {
        let Some(sharded) = self.exec.resident_sharded() else {
            return Vec::new();
        };
        (0..sharded.n_shards())
            .map(|s| sharded.shard(s).0.resident_bytes())
            .collect()
    }

    /// Enables the `__panic__` / `__sleep__:<ms>` fault hooks. Only the
    /// fault drill turns this on; a production daemon treats those
    /// strings as the bad SPARQL they are.
    pub fn test_faults(mut self, enabled: bool) -> Engine {
        self.test_faults = enabled;
        self
    }

    /// Overrides the slow-query threshold: groups whose wall time reaches
    /// `ms` emit one structured log line and `slow_query` trace instant
    /// per member request. `None` disables (unless `HALK_SLOW_MS` set it);
    /// `Some(0)` logs every request.
    pub fn slow_ms(mut self, ms: Option<u64>) -> Engine {
        self.slow_ms = ms;
        self
    }

    /// The active slow-query threshold, if any.
    pub fn slow_threshold_ms(&self) -> Option<u64> {
        self.slow_ms
    }

    /// The graph being served.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// True when a model is loaded (the `halk` engine is available).
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// Session-side compilation: parse and validate the SPARQL and resolve
    /// the cached plan shape. A malformed query is rejected here — before
    /// admission, queueing, or a worker — as `Err(typed response)`.
    pub fn prepare(&self, engine: AskEngine, sparql: &str) -> Result<PreparedAsk, Response> {
        if self.test_faults && (sparql == "__panic__" || sparql.starts_with("__sleep__:")) {
            return Ok(PreparedAsk {
                kind: PreparedKind::Fault(sparql.to_string()),
            });
        }
        let query = match halk_sparql::sparql_to_query(sparql) {
            Ok(q) => q,
            Err(e) => {
                return Err(Response::Error {
                    kind: ErrorKind::BadQuery,
                    detail: e.to_string(),
                })
            }
        };
        if let Err(detail) = self.validate(&query) {
            return Err(Response::Error {
                kind: ErrorKind::BadQuery,
                detail,
            });
        }
        let shape = self.exec.shape_for(&query);
        Ok(PreparedAsk {
            kind: PreparedKind::Query {
                engine,
                query,
                shape,
            },
        })
    }

    /// Answers one prepared request. Infallible by construction: every
    /// failure is a typed [`Response::Error`]. May panic only through a
    /// bug (or an injected test fault) — the server catches that one
    /// level up.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedAsk,
        top: usize,
        deadline: &Deadline,
    ) -> Response {
        self.execute_batch(&[BatchItem {
            prepared,
            top,
            deadline,
            req: 0,
            queue_wait_us: 0,
        }])
        .pop()
        .expect("one item in, one response out")
    }

    /// Answers a prepared group through the executor: jobs are keyed by
    /// shape pointer + engine lane, partitioned into same-key kernels
    /// (capped at [`Engine::max_batch`]), and the responses scatter back
    /// to submission order. Response `i` is bit-identical to
    /// `execute_prepared(items[i], ...)` run alone; the worker's drain
    /// usually hands over an already-homogeneous group, in which case this
    /// is one kernel pass.
    pub fn execute_batch<'a>(&'a self, items: &[BatchItem<'a>]) -> Vec<Response> {
        self.exec.submit(&ServeBackend { engine: self }, items)
    }

    /// One-shot convenience (tests, CLI parity): prepare + execute.
    pub fn execute(
        &self,
        engine: AskEngine,
        top: usize,
        sparql: &str,
        deadline: &Deadline,
    ) -> Response {
        match self.prepare(engine, sparql) {
            Ok(p) => self.execute_prepared(&p, top, deadline),
            Err(resp) => resp,
        }
    }

    /// Rejects queries referencing entities or relations outside the
    /// graph before they can index out of bounds deep in the engine.
    fn validate(&self, query: &Query) -> Result<(), String> {
        let n = self.graph.n_entities() as u32;
        let r = self.graph.n_relations() as u32;
        if let Some(e) = query.anchors().iter().find(|e| e.0 >= n) {
            return Err(format!("entity e:{} out of range (n={n})", e.0));
        }
        if let Some(rel) = query.relations().iter().find(|rel| rel.0 >= r) {
            return Err(format!("relation r:{} out of range (n={r})", rel.0));
        }
        Ok(())
    }

    /// Exact engine over a same-shape group: one slot-table allocation
    /// serves the whole batch (`execute_set_batch`). Plan execution time
    /// is reported under the breakdown's `score` phase.
    fn execute_exact_group(
        &self,
        shape: &PlanShape,
        items: &[BatchItem],
        phases: &mut PhaseBreakdown,
    ) -> Vec<Response> {
        let bindings: Vec<PlanBindings> = items
            .iter()
            .map(|it| match &it.prepared.kind {
                PreparedKind::Query { query, .. } => PlanBindings::of(query),
                PreparedKind::Fault(_) => unreachable!("fault probes are never batched"),
            })
            .collect();
        let refs: Vec<&PlanBindings> = bindings.iter().collect();
        let deadlines: Vec<&Deadline> = items.iter().map(|it| it.deadline).collect();
        let t0 = std::time::Instant::now();
        let results = execute_set_batch(shape, &refs, &self.graph, &deadlines);
        phases.score_us = t0.elapsed().as_micros() as u64;
        results
            .into_iter()
            .zip(items)
            .map(|(res, it)| match res {
                Ok(ans) => Response::Answers {
                    total: ans.len(),
                    ids: ans.iter().take(it.top).map(|e| e.0).collect(),
                },
                Err(halk_logic::plan::DeadlineExpired) => Response::Error {
                    kind: ErrorKind::Deadline,
                    detail: "deadline expired during plan execution".to_string(),
                },
            })
            .collect()
    }

    /// Halk engine over a same-shape group: one batched plan embedding
    /// compiles every query's scorer, then one streaming sweep per shard
    /// serves the whole group (slice-major, so each hot trig slice scores
    /// all queries before moving on). Per-request deadlines are honored at
    /// slice boundaries; `scored_rows` is the union of per-shard prefixes
    /// and the hits are an exact top-k of that scored subset.
    fn execute_halk_group(
        &self,
        shape: &PlanShape,
        items: &[BatchItem],
        phases: &mut PhaseBreakdown,
    ) -> Vec<Response> {
        let Some(model) = &self.model else {
            let err = || Response::Error {
                kind: ErrorKind::NoModel,
                detail: "daemon started without --model".to_string(),
            };
            return items.iter().map(|_| err()).collect();
        };
        let sharded = self.exec.sharded_trig(model);
        let queries: Vec<&Query> = items
            .iter()
            .map(|it| match &it.prepared.kind {
                PreparedKind::Query { query, .. } => query,
                PreparedKind::Fault(_) => unreachable!("fault probes are never batched"),
            })
            .collect();
        let t0 = std::time::Instant::now();
        let scorers = self.exec.scorers_for_group(model, shape, &queries);
        phases.embed_us = t0.elapsed().as_micros() as u64;
        let ks: Vec<usize> = items.iter().map(|it| it.top).collect();
        let deadlines: Vec<&Deadline> = items.iter().map(|it| it.deadline).collect();
        let n = sharded.n_entities();
        // The req tag extends the hop chain into the per-shard workers;
        // built only when tracing is on.
        let tag = if halk_obs::trace::enabled() {
            req_list(items).map(|reqs| format!("req={reqs}"))
        } else {
            None
        };
        let (results, timing) = sharded_top_k_timed(
            &self.exec.pool(),
            &sharded,
            &scorers,
            &ks,
            &deadlines,
            tag.as_deref(),
        );
        phases.score_us = timing.score_us;
        phases.merge_us = timing.merge_us;
        results
            .into_iter()
            .map(|(hits, rows)| Response::Scores {
                truncated: rows < n,
                scored_rows: rows,
                hits,
            })
            .collect()
    }

    /// Emits the slow-query log when a group's wall time reaches the
    /// threshold: one structured `log!(Warn)` line (visible under
    /// `HALK_LOG=warn`) *and* one `slow_query` trace instant per member
    /// request, each carrying the request id, engine lane, plan-skeleton
    /// id, batch size, queue wait and the embed/score/merge breakdown —
    /// the trace copy is what `trace_check --reqids` validates in CI.
    fn note_slow_group(
        &self,
        key: Option<&ShapeKey>,
        items: &[BatchItem],
        wall_us: u64,
        phases: PhaseBreakdown,
    ) {
        let Some(slow_ms) = self.slow_ms else { return };
        if wall_us < slow_ms.saturating_mul(1_000) {
            return;
        }
        let lane = lane_name(key);
        // Skeleton identity = structural summary + the grouping pointer
        // (same skeleton ⇒ same cached Arc, so the hex tag is stable for
        // the daemon's lifetime).
        let skeleton = key.map_or_else(
            || "none".to_string(),
            |k| {
                format!(
                    "s{}b{}@{:x}",
                    k.shape().n_slots(),
                    k.shape().n_branches(),
                    Arc::as_ptr(k.shape()) as usize
                )
            },
        );
        let batch = items.len();
        for it in items {
            halk_obs::counter!("halk_serve_slow_queries_total").inc();
            halk_obs::windowed_counter!("halk_serve_slow_queries_total").inc();
            let line = format!(
                "req={} lane={lane} skeleton={skeleton} batch={batch} wall_us={wall_us} \
                 queue_wait_us={} embed_us={} score_us={} merge_us={}",
                it.req, it.queue_wait_us, phases.embed_us, phases.score_us, phases.merge_us
            );
            halk_obs::log!(Warn, "slow_query {line}");
            halk_obs::trace::instant_detail("slow_query", || line.clone());
        }
    }

    /// Runs a deferred fault probe in the worker.
    fn run_fault(&self, sparql: &str, deadline: &Deadline) -> Response {
        if sparql == "__panic__" {
            panic!("injected test fault");
        }
        match sparql.strip_prefix("__sleep__:") {
            Some(ms) => self.fault_sleep(ms, deadline),
            None => unreachable!("prepare only defers known fault strings"),
        }
    }

    /// `__sleep__:<ms>`: hold a worker busy while staying
    /// deadline-honest, in 5 ms slices like a real long computation.
    fn fault_sleep(&self, ms: &str, deadline: &Deadline) -> Response {
        let Ok(ms) = ms.parse::<u64>() else {
            return Response::Error {
                kind: ErrorKind::BadQuery,
                detail: "bad __sleep__ duration".to_string(),
            };
        };
        let mut slept = 0u64;
        while slept < ms {
            if deadline.expired() {
                return Response::Error {
                    kind: ErrorKind::Deadline,
                    detail: format!("deadline expired {slept} ms into sleep"),
                };
            }
            let step = 5.min(ms - slept);
            std::thread::sleep(std::time::Duration::from_millis(step));
            slept += step;
        }
        Response::Pong
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::Triple;

    fn toy_engine(test_faults: bool) -> Engine {
        let graph = Graph::from_triples(
            4,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 3),
            ],
        );
        Engine::new(graph, None).test_faults(test_faults)
    }

    #[test]
    fn exact_ask_answers_and_bad_queries_are_typed() {
        let e = toy_engine(false);
        let r = e.execute(
            AskEngine::Exact,
            10,
            "SELECT ?x WHERE { e:0 r:0 ?x . }",
            &Deadline::never(),
        );
        assert_eq!(
            r,
            Response::Answers {
                total: 2,
                ids: vec![1, 2]
            }
        );
        let bad = e.execute(AskEngine::Exact, 10, "SELECT nonsense", &Deadline::never());
        assert!(matches!(
            bad,
            Response::Error {
                kind: ErrorKind::BadQuery,
                ..
            }
        ));
        // Out-of-range ids are rejected, not panicked on.
        let oob = e.execute(
            AskEngine::Exact,
            10,
            "SELECT ?x WHERE { e:99 r:0 ?x . }",
            &Deadline::never(),
        );
        assert!(matches!(
            oob,
            Response::Error {
                kind: ErrorKind::BadQuery,
                ..
            }
        ));
    }

    #[test]
    fn prepare_rejects_bad_queries_and_keys_batches_by_shape() {
        let e = toy_engine(false);
        assert!(e.prepare(AskEngine::Exact, "SELECT nonsense").is_err());
        let a = e
            .prepare(AskEngine::Exact, "SELECT ?x WHERE { e:0 r:0 ?x . }")
            .unwrap();
        let b = e
            .prepare(AskEngine::Exact, "SELECT ?x WHERE { e:1 r:1 ?x . }")
            .unwrap();
        // Same skeleton (one atom) ⇒ same cached shape pointer.
        let (sa, ea) = a.batch_key().unwrap();
        let (sb, eb) = b.batch_key().unwrap();
        assert!(Arc::ptr_eq(sa, sb));
        assert_eq!(ea, eb);
    }

    #[test]
    fn exact_batch_matches_singles() {
        let e = toy_engine(false);
        let sparqls = [
            "SELECT ?x WHERE { e:0 r:0 ?x . }",
            "SELECT ?x WHERE { e:1 r:1 ?x . }",
        ];
        let prepared: Vec<PreparedAsk> = sparqls
            .iter()
            .map(|s| e.prepare(AskEngine::Exact, s).unwrap())
            .collect();
        let never = Deadline::never();
        let items: Vec<BatchItem> = prepared
            .iter()
            .map(|p| BatchItem {
                prepared: p,
                top: 10,
                deadline: &never,
                req: 0,
                queue_wait_us: 0,
            })
            .collect();
        let batch = e.execute_batch(&items);
        for (resp, s) in batch.iter().zip(&sparqls) {
            assert_eq!(
                resp,
                &e.execute(AskEngine::Exact, 10, s, &Deadline::never())
            );
        }
    }

    #[test]
    fn halk_engine_without_model_is_no_model() {
        let e = toy_engine(false);
        let r = e.execute(
            AskEngine::Halk,
            5,
            "SELECT ?x WHERE { e:0 r:0 ?x . }",
            &Deadline::never(),
        );
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::NoModel,
                ..
            }
        ));
    }

    #[test]
    fn expired_deadline_on_exact_is_a_typed_error() {
        let e = toy_engine(false);
        let (clock, now) = halk_obs::Clock::mock();
        now.store(10, std::sync::atomic::Ordering::SeqCst);
        let d = Deadline::at_ns(&clock, 1);
        let r = e.execute(AskEngine::Exact, 10, "SELECT ?x WHERE { e:0 r:0 ?x . }", &d);
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::Deadline,
                ..
            }
        ));
    }

    #[test]
    fn fault_hooks_are_inert_without_the_flag() {
        let e = toy_engine(false);
        let r = e.execute(AskEngine::Exact, 10, "__panic__", &Deadline::never());
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::BadQuery,
                ..
            }
        ));
    }

    #[test]
    fn slow_threshold_zero_flags_every_request() {
        let e = toy_engine(false).slow_ms(Some(0));
        let c = halk_obs::metrics::counter("halk_serve_slow_queries_total");
        let before = c.get();
        let r = e.execute(
            AskEngine::Exact,
            10,
            "SELECT ?x WHERE { e:0 r:0 ?x . }",
            &Deadline::never(),
        );
        assert!(matches!(r, Response::Answers { .. }));
        assert!(c.get() > before, "threshold 0 flags every group");
    }

    #[test]
    fn sleeper_probe_crosses_the_slow_threshold() {
        // The `__sleep__:<ms>` fault probe is the induced slow query: it
        // holds a worker for 20 ms, well past a 5 ms threshold, and the
        // keyless (fault-lane) group still goes through the slow-query
        // accounting.
        let e = toy_engine(true).slow_ms(Some(5));
        let c = halk_obs::metrics::counter("halk_serve_slow_queries_total");
        let before = c.get();
        let r = e.execute(AskEngine::Exact, 10, "__sleep__:20", &Deadline::never());
        assert_eq!(r, Response::Pong);
        assert!(c.get() > before, "20 ms sleep crosses the 5 ms threshold");
    }

    #[test]
    fn fast_requests_stay_under_a_high_threshold() {
        let e = toy_engine(false).slow_ms(Some(60_000));
        let c = halk_obs::metrics::counter("halk_serve_slow_queries_total");
        let before = c.get();
        let _ = e.execute(
            AskEngine::Exact,
            10,
            "SELECT ?x WHERE { e:0 r:0 ?x . }",
            &Deadline::never(),
        );
        assert_eq!(c.get(), before, "a toy query never takes a minute");
    }

    #[test]
    fn sleep_fault_honors_deadline() {
        let e = toy_engine(true);
        let clock = halk_obs::Clock::monotonic();
        let d = Deadline::after(&clock, std::time::Duration::from_millis(10));
        let r = e.execute(AskEngine::Exact, 10, "__sleep__:10000", &d);
        assert!(matches!(
            r,
            Response::Error {
                kind: ErrorKind::Deadline,
                ..
            }
        ));
    }
}
