//! A minimal blocking client for the serve protocol — used by `load_gen`,
//! the integration tests, and as the copy-paste example in the README.

use crate::protocol::{encode_frame, AskEngine, FrameDecoder, Request, Response, MAX_FRAME};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a `halk serve` daemon. Requests are strictly
/// request→response on this connection, matching the server's session
/// loop.
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl Client {
    /// Connects with a read timeout generous enough for deadline-bounded
    /// requests (the server always answers within deadline + drain).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(MAX_FRAME),
        })
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.stream
            .write_all(&encode_frame(req.encode().as_bytes()))?;
        self.read_response()
    }

    /// Convenience: an ASK with the given engine/top/deadline.
    pub fn ask(
        &mut self,
        engine: AskEngine,
        top: usize,
        deadline_ms: u64,
        sparql: &str,
    ) -> io::Result<Response> {
        self.request(&Request::Ask {
            engine,
            top,
            deadline_ms,
            sparql: sparql.to_string(),
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.request(&Request::Ping)
    }

    /// Fetches the daemon's serving counters; expect [`Response::Stats`].
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request(&Request::Stats)
    }

    /// Asks the daemon to drain and exit; expect [`Response::Bye`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(&Request::Shutdown)
    }

    /// The underlying socket — the fault injector uses this to disconnect
    /// mid-frame, dribble bytes, or write garbage.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut frames = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.decoder
                .push(&buf[..n], &mut frames)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if let Some(payload) = frames.pop() {
                let text = std::str::from_utf8(&payload)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 frame"))?;
                return Response::parse(text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
            }
        }
    }
}
