//! Property-based tests for the closed-form geometry the learned operators
//! must respect. These invariants are the paper's "closed-form solution"
//! claims (§I, §III) stated as machine-checked properties.

use halk_geometry::angle::{abs_delta, chord, norm_angle, signed_delta, TAU};
use halk_geometry::arc::Arc;
use halk_geometry::boxes::BoxSeg;
use halk_geometry::cone::{wrap_pi, ConeSeg};
use halk_geometry::polar::{g_squash, semantic_average, to_polar, to_rect};
use proptest::prelude::*;

fn any_angle() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| x)
}

fn any_arc() -> impl Strategy<Value = Arc> {
    (any_angle(), 0.0f32..(TAU * 1.5)).prop_map(|(c, l)| Arc::new(c, l, 1.0))
}

proptest! {
    #[test]
    fn norm_angle_always_canonical(t in any_angle()) {
        let n = norm_angle(t);
        prop_assert!((0.0..TAU).contains(&n));
        // Same physical point: chord distance zero.
        prop_assert!(chord(n, t, 1.0) < 1e-3);
    }

    #[test]
    fn signed_delta_in_half_open_pi(a in any_angle(), b in any_angle()) {
        let d = signed_delta(a, b);
        prop_assert!(d > -std::f32::consts::PI - 1e-6 && d <= std::f32::consts::PI + 1e-6);
    }

    #[test]
    fn chord_triangle_inequality(a in any_angle(), b in any_angle(), c in any_angle()) {
        prop_assert!(chord(a, c, 1.0) <= chord(a, b, 1.0) + chord(b, c, 1.0) + 1e-4);
    }

    #[test]
    fn chord_bounded_by_diameter(a in any_angle(), b in any_angle(), rho in 0.1f32..5.0) {
        prop_assert!(chord(a, b, rho) <= 2.0 * rho + 1e-5);
    }

    #[test]
    fn arc_endpoints_reconstruct(arc in any_arc()) {
        // start/end ↔ (center, len) is a bijection for arcs shorter than 2π.
        prop_assume!(arc.len < TAU - 1e-3);
        let back = Arc::from_endpoints(arc.start(), arc.end(), 1.0);
        prop_assert!(abs_delta(back.center, arc.center) < 1e-3);
        prop_assert!((back.len - arc.len).abs() < 1e-3);
    }

    #[test]
    fn arc_center_always_on_arc(arc in any_arc()) {
        prop_assert!(arc.contains_angle(arc.center));
    }

    #[test]
    fn arc_complement_partition(arc in any_arc(), theta in any_angle()) {
        // Every point is in the arc or its complement (boundaries may be in
        // both because containment is closed).
        let comp = arc.complement();
        prop_assert!(arc.contains_angle(theta) || comp.contains_angle(theta));
    }

    #[test]
    fn arc_complement_lengths_tile(arc in any_arc()) {
        let comp = arc.complement();
        prop_assert!((arc.len + comp.len - TAU).abs() < 1e-3);
    }

    #[test]
    fn arc_overlap_is_symmetric_and_bounded(a in any_arc(), b in any_arc()) {
        let o1 = a.overlap_angle(&b);
        let o2 = b.overlap_angle(&a);
        prop_assert!((o1 - o2).abs() < 1e-3);
        prop_assert!(o1 <= a.span_angle().min(b.span_angle()) + 1e-3);
        prop_assert!(o1 >= -1e-6);
    }

    #[test]
    fn arc_containment_implies_full_overlap(a in any_arc(), b in any_arc()) {
        if a.contains_arc(&b) {
            prop_assert!(a.overlap_angle(&b) >= b.span_angle() - 1e-2);
        }
    }

    #[test]
    fn arc_outside_dist_zeroed_iff_inside(arc in any_arc(), theta in any_angle()) {
        let d = arc.outside_dist_zeroed(theta);
        if arc.contains_angle(theta) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn arc_outside_dist_is_min_endpoint_chord(arc in any_arc(), theta in any_angle()) {
        let expect = chord(theta, arc.start(), 1.0).min(chord(theta, arc.end(), 1.0));
        prop_assert!((arc.outside_dist(theta) - expect).abs() < 1e-5);
    }

    #[test]
    fn arc_dist_nonnegative(arc in any_arc(), theta in any_angle(), eta in 0.0f32..1.0) {
        prop_assert!(arc.dist(theta, eta) >= 0.0);
    }

    #[test]
    fn polar_rect_roundtrip(theta in any_angle(), rho in 0.1f32..4.0) {
        let (x, y) = to_rect(theta, rho);
        prop_assert!(abs_delta(to_polar(x, y), theta) < 1e-2);
    }

    #[test]
    fn g_squash_always_legal_angle(x in -1e3f32..1e3, lambda in 0.01f32..10.0) {
        let y = g_squash(x, lambda);
        prop_assert!((0.0..=TAU).contains(&y));
    }

    #[test]
    fn semantic_average_stays_on_circle(
        angles in prop::collection::vec(any_angle(), 1..6),
        seed in prop::collection::vec(0.01f32..1.0, 6),
    ) {
        let w: Vec<f32> = angles.iter().enumerate().map(|(i, _)| seed[i]).collect();
        let s: f32 = w.iter().sum();
        let w: Vec<f32> = w.iter().map(|x| x / s).collect();
        let avg = semantic_average(&angles, &w, 1.0);
        prop_assert!((0.0..TAU).contains(&avg));
    }

    // --- The paper's tightness claim (Supplementary), encoded geometrically:
    // the surviving region of HaLk's closed-form arc difference is never
    // larger than the surviving region of the lossy box difference when both
    // remove the same overlap mass.
    #[test]
    fn arc_difference_shrinks_no_less_than_overlap(a in any_arc(), b in any_arc()) {
        // A closed-form difference can at most keep span(a) − overlap(a, b).
        let keep = (a.span_angle() - a.overlap_angle(&b)).max(0.0);
        prop_assert!(keep <= a.span_angle() + 1e-5);
    }

    #[test]
    fn arc_intersect_exact_membership(a in any_arc(), b in any_arc(), theta in any_angle()) {
        // Restrict to the single-overlap regime the closed form targets.
        prop_assume!(a.span_angle() + b.span_angle() < TAU - 0.05);
        match a.intersect_exact(&b) {
            Some(i) => {
                // Everything in the intersection arc is in both inputs
                // (boundary epsilon tolerated via small containment slack).
                if i.contains_angle(theta) && i.center_offset(theta).abs() < i.half_angle() - 0.01 {
                    prop_assert!(a.contains_angle(theta), "θ in i but not a");
                    prop_assert!(b.contains_angle(theta), "θ in i but not b");
                }
            }
            None => {
                // Disjoint: no point is strictly inside both.
                let strictly_in = |arc: &Arc, t: f32| {
                    arc.center_offset(t).abs() < arc.half_angle() - 0.01
                };
                prop_assert!(!(strictly_in(&a, theta) && strictly_in(&b, theta)));
            }
        }
    }

    #[test]
    fn arc_difference_exact_membership(a in any_arc(), b in any_arc(), theta in any_angle()) {
        prop_assume!(a.span_angle() + b.span_angle() < TAU - 0.05);
        let (l, r) = a.difference_exact(&b);
        let in_diff = l.is_some_and(|p| p.contains_angle(theta))
            || r.is_some_and(|p| p.contains_angle(theta));
        let strictly = |arc: &Arc, t: f32| arc.center_offset(t).abs() < arc.half_angle() - 0.02;
        // Strictly inside the difference ⇒ inside a and not strictly in b.
        if in_diff
            && l.is_none_or(|p| strictly(&p, theta) || !p.contains_angle(theta))
            && r.is_none_or(|p| strictly(&p, theta) || !p.contains_angle(theta))
            && (l.is_some_and(|p| strictly(&p, theta)) || r.is_some_and(|p| strictly(&p, theta)))
        {
            prop_assert!(a.contains_angle(theta));
            prop_assert!(!strictly(&b, theta));
        }
        // Total length conservation: |a−b| + |a∩b| ≈ |a|.
        let diff_len = l.map_or(0.0, |p| p.len) + r.map_or(0.0, |p| p.len);
        let inter_len = a.intersect_exact(&b).map_or(0.0, |i| i.len);
        prop_assert!((diff_len + inter_len - a.len).abs() < 0.05,
            "lengths: diff {diff_len} + inter {inter_len} != {}", a.len);
    }

    #[test]
    fn box_intersection_is_exact(c1 in -5.0f32..5.0, o1 in 0.0f32..3.0,
                                 c2 in -5.0f32..5.0, o2 in 0.0f32..3.0,
                                 x in -8.0f32..8.0) {
        let a = BoxSeg::new(c1, o1);
        let b = BoxSeg::new(c2, o2);
        match a.intersect(&b) {
            Some(i) => {
                // Point is in the intersection iff in both (up to eps).
                let in_both = a.contains(x) && b.contains(x);
                if i.contains(x) {
                    prop_assert!(a.contains(x) && b.contains(x));
                } else if in_both {
                    // allow boundary epsilon
                    prop_assert!(i.dist_outside(x) < 1e-4);
                }
            }
            None => prop_assert!(a.overlap_len(&b) < 1e-6),
        }
    }

    #[test]
    fn box_difference_result_inside_minuend(c1 in -5.0f32..5.0, o1 in 0.0f32..3.0,
                                            c2 in -5.0f32..5.0, o2 in 0.0f32..3.0) {
        let a = BoxSeg::new(c1, o1);
        let b = BoxSeg::new(c2, o2);
        let d = a.difference_lossy(&b);
        prop_assert!(d.lo() >= a.lo() - 1e-4 && d.hi() <= a.hi() + 1e-4);
    }

    #[test]
    fn cone_complement_partition(axis in any_angle(), ap in 0.0f32..std::f32::consts::PI,
                                 theta in any_angle()) {
        let c = ConeSeg::new(axis, ap);
        let n = c.complement();
        prop_assert!(c.contains(theta) || n.contains(theta));
    }

    #[test]
    fn cone_wrap_pi_involution(theta in any_angle()) {
        let w = wrap_pi(theta);
        prop_assert!((wrap_pi(w) - w).abs() < 1e-6);
    }

    #[test]
    fn cone_dist_zero_inside(axis in any_angle(), ap in 0.01f32..3.0, theta in any_angle()) {
        let c = ConeSeg::new(axis, ap);
        if c.contains(theta) {
            prop_assert_eq!(c.dist_outside(theta), 0.0);
        } else {
            prop_assert!(c.dist_outside(theta) > 0.0);
        }
    }
}
