//! Sector ("cone") segments — the geometric substrate of ConE
//! (Zhang et al., NeurIPS 2021).
//!
//! ConE embeds a query, per dimension, as a circular sector described by an
//! axis angle `axis ∈ [−π, π)` and a half-aperture `ap ∈ [0, π]`; the sector
//! covers `[axis − ap, axis + ap]`. Its negation is the *closed-form linear*
//! complement the HaLk paper criticizes, and its distance uses raw angular
//! differences, which exhibit the periodicity "duality" that HaLk's
//! chord-length measurement avoids (§III-G remark). Both behaviours are
//! reproduced here faithfully so the baseline inherits the weaknesses the
//! paper measures.

use serde::{Deserialize, Serialize};

/// One dimension of a ConE embedding: axis angle and half-aperture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConeSeg {
    /// Sector axis in `[−π, π)`.
    pub axis: f32,
    /// Half-aperture in `[0, π]`; `π` is the full circle, `0` a ray (point).
    pub ap: f32,
}

/// Wraps an angle into ConE's canonical `[−π, π)` range.
#[inline]
pub fn wrap_pi(theta: f32) -> f32 {
    let t = (theta + std::f32::consts::PI).rem_euclid(std::f32::consts::TAU);
    t - std::f32::consts::PI
}

impl ConeSeg {
    /// Creates a sector, wrapping the axis and clamping the aperture.
    pub fn new(axis: f32, ap: f32) -> Self {
        Self {
            axis: wrap_pi(axis),
            ap: ap.clamp(0.0, std::f32::consts::PI),
        }
    }

    /// A point (zero-aperture) sector — an entity embedding.
    pub fn point(axis: f32) -> Self {
        Self::new(axis, 0.0)
    }

    /// The full circle (universal set in ConE's geometry).
    pub fn full() -> Self {
        Self {
            axis: 0.0,
            ap: std::f32::consts::PI,
        }
    }

    /// Whether an angle lies in the sector.
    pub fn contains(&self, theta: f32) -> bool {
        wrap_pi(theta - self.axis).abs() <= self.ap + 1e-6
    }

    /// ConE's closed-form complement: axis rotated by π, aperture `π − ap`.
    /// This is the *linear* negation the HaLk paper contrasts with its
    /// learned negation operator.
    pub fn complement(&self) -> ConeSeg {
        ConeSeg::new(
            self.axis + std::f32::consts::PI,
            std::f32::consts::PI - self.ap,
        )
    }

    /// ConE's outside distance `d_con,o`: raw angular gap from the nearest
    /// sector boundary measured with `|sin(Δ/2)|` scaling, zero inside.
    pub fn dist_outside(&self, theta: f32) -> f32 {
        let d = wrap_pi(theta - self.axis).abs();
        if d <= self.ap {
            0.0
        } else {
            let gap = d - self.ap;
            2.0 * (gap * 0.5).sin().abs()
        }
    }

    /// ConE's inside distance: pull towards the axis, capped at the aperture.
    pub fn dist_inside(&self, theta: f32) -> f32 {
        let d = wrap_pi(theta - self.axis).abs().min(self.ap);
        2.0 * (d * 0.5).sin().abs()
    }

    /// Combined ConE distance `d_o + λ·d_i`.
    pub fn dist(&self, theta: f32, lambda: f32) -> f32 {
        self.dist_outside(theta) + lambda * self.dist_inside(theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{PI, TAU};

    #[test]
    fn wrap_pi_range() {
        for i in -10..10 {
            let w = wrap_pi(i as f32 * 1.3);
            assert!((-PI..PI).contains(&w), "w = {w}");
        }
        assert!((wrap_pi(TAU + 0.5) - 0.5).abs() < 1e-5);
        assert!((wrap_pi(-PI) - (-PI)).abs() < 1e-6);
    }

    #[test]
    fn contains_basic() {
        let c = ConeSeg::new(0.0, 0.5);
        assert!(c.contains(0.4) && c.contains(-0.4));
        assert!(!c.contains(0.6));
    }

    #[test]
    fn contains_wraps() {
        let c = ConeSeg::new(PI - 0.1, 0.3); // sector straddles ±π
        assert!(c.contains(-PI + 0.1));
    }

    #[test]
    fn complement_partitions_circle() {
        let c = ConeSeg::new(1.0, 0.8);
        let n = c.complement();
        assert!((c.ap + n.ap - PI).abs() < 1e-6);
        // Interior points swap membership.
        assert!(c.contains(1.0) && !n.contains(1.0));
        let far = wrap_pi(1.0 + PI);
        assert!(!c.contains(far) && n.contains(far));
        // Involution.
        let cc = n.complement();
        assert!((wrap_pi(cc.axis - c.axis)).abs() < 1e-5);
        assert!((cc.ap - c.ap).abs() < 1e-6);
    }

    #[test]
    fn full_contains_everything_and_complement_is_point() {
        let f = ConeSeg::full();
        assert!(f.contains(2.9) && f.contains(-2.9));
        assert_eq!(f.complement().ap, 0.0);
    }

    #[test]
    fn dist_outside_zero_inside() {
        let c = ConeSeg::new(0.0, 1.0);
        assert_eq!(c.dist_outside(0.9), 0.0);
        assert!(c.dist_outside(1.5) > 0.0);
    }

    #[test]
    fn dist_inside_zero_on_axis() {
        let c = ConeSeg::new(0.3, 1.0);
        assert!(c.dist_inside(0.3).abs() < 1e-7);
        assert!(c.dist_inside(1.0) > 0.0);
    }

    #[test]
    fn dist_monotone_outside() {
        let c = ConeSeg::new(0.0, 0.5);
        assert!(c.dist_outside(1.0) < c.dist_outside(2.0));
        assert!(c.dist_outside(2.0) < c.dist_outside(3.0));
    }

    #[test]
    fn aperture_clamped() {
        assert_eq!(ConeSeg::new(0.0, 7.0).ap, PI);
        assert_eq!(ConeSeg::new(0.0, -1.0).ap, 0.0);
    }
}
