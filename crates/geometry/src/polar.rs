//! Polar ↔ rectangular conversion and the paper's squashing/regularizing
//! functions.
//!
//! The semantic-average-center trick of the difference and intersection
//! operators (Eq. 4–6) runs attention in *rectangular* coordinates — the
//! only way a weighted average of periodic angles is semantically consistent
//! — and then restores a polar angle with the quadrant regularizer `Reg(·)`.
//! This module holds both conversions plus `g(·)` (Eq. 3), the bounded
//! non-linearity that maps raw MLP outputs onto legal angle ranges.

use crate::angle::norm_angle;

/// Rectangular coordinates of a point at polar angle `theta` on a circle of
/// radius `rho` (Eq. 4).
#[inline]
pub fn to_rect(theta: f32, rho: f32) -> (f32, f32) {
    (rho * theta.cos(), rho * theta.sin())
}

/// Polar angle in `[0, 2π)` of a rectangular point `(x, y)`.
///
/// This is the composition of `arctan(y/x)` with the `Reg(·)` quadrant fixup
/// of Eq. 6, implemented through `atan2` (which performs exactly that fixup)
/// followed by wrapping into a single period. The paper's footnote about
/// replacing `x == 0` with a small constant is unnecessary with `atan2`,
/// which is defined there; the degenerate origin maps to angle `0`.
#[inline]
pub fn to_polar(x: f32, y: f32) -> f32 {
    if x == 0.0 && y == 0.0 {
        return 0.0;
    }
    norm_angle(y.atan2(x))
}

/// `Reg`-regularized arctangent of Eq. 6, kept under its paper name so model
/// code reads like the equations. Identical to [`to_polar`].
#[inline]
pub fn reg_atan2(x: f32, y: f32) -> f32 {
    to_polar(x, y)
}

/// The squashing function `g(x) = π·tanh(λx) + π` of Eq. 3, mapping any real
/// activation into the open interval `(0, 2π)` so it is always a legal angle
/// or arc angle.
#[inline]
pub fn g_squash(x: f32, lambda: f32) -> f32 {
    std::f32::consts::PI * (lambda * x).tanh() + std::f32::consts::PI
}

/// Weighted semantic average of angles via rectangular coordinates
/// (Eq. 4–6): converts each angle to `(x, y)`, averages with the given
/// non-negative weights, and restores the polar angle. Returns the center of
/// mass angle; if the weighted sum collapses to the origin (antipodal inputs
/// with equal weight) the result falls back to the first angle, which is the
/// degenerate-case behaviour the attention weights are trained to avoid.
pub fn semantic_average(angles: &[f32], weights: &[f32], rho: f32) -> f32 {
    debug_assert_eq!(angles.len(), weights.len());
    let (mut sx, mut sy) = (0.0f32, 0.0f32);
    for (&a, &w) in angles.iter().zip(weights) {
        let (x, y) = to_rect(a, rho);
        sx += w * x;
        sy += w * y;
    }
    if sx.abs() < 1e-6 && sy.abs() < 1e-6 {
        angles.first().copied().map(norm_angle).unwrap_or(0.0)
    } else {
        to_polar(sx, sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::{abs_delta, TAU};
    use std::f32::consts::PI;

    #[test]
    fn rect_polar_roundtrip() {
        for i in 0..16 {
            let theta = i as f32 * TAU / 16.0;
            let (x, y) = to_rect(theta, 2.0);
            assert!(abs_delta(to_polar(x, y), theta) < 1e-5, "theta={theta}");
        }
    }

    #[test]
    fn to_polar_covers_all_quadrants() {
        assert!(abs_delta(to_polar(1.0, 1.0), PI / 4.0) < 1e-6);
        assert!(abs_delta(to_polar(-1.0, 1.0), 3.0 * PI / 4.0) < 1e-6);
        assert!(abs_delta(to_polar(-1.0, -1.0), 5.0 * PI / 4.0) < 1e-6);
        assert!(abs_delta(to_polar(1.0, -1.0), 7.0 * PI / 4.0) < 1e-6);
    }

    #[test]
    fn to_polar_axes() {
        assert_eq!(to_polar(1.0, 0.0), 0.0);
        assert!(abs_delta(to_polar(0.0, 1.0), PI / 2.0) < 1e-6);
        assert!(abs_delta(to_polar(-1.0, 0.0), PI) < 1e-6);
        assert!(abs_delta(to_polar(0.0, -1.0), 3.0 * PI / 2.0) < 1e-6);
    }

    #[test]
    fn to_polar_origin_is_zero() {
        assert_eq!(to_polar(0.0, 0.0), 0.0);
    }

    #[test]
    fn g_squash_range_is_open_zero_two_pi() {
        // Open interval (0, 2π) in exact arithmetic; tanh saturates to ±1 in
        // f32 for huge inputs, so the closed bounds are the testable ones.
        for &x in &[-1e6f32, -3.0, -0.1, 0.0, 0.1, 3.0, 1e6] {
            let y = g_squash(x, 1.0);
            assert!((0.0..=TAU).contains(&y), "g({x}) = {y}");
        }
        assert!(g_squash(-3.0, 1.0) > 0.0 && g_squash(3.0, 1.0) < TAU);
        assert!((g_squash(0.0, 1.0) - PI).abs() < 1e-6);
    }

    #[test]
    fn g_squash_is_monotone() {
        let ys: Vec<f32> = (-10..=10).map(|i| g_squash(i as f32 * 0.5, 0.7)).collect();
        for w in ys.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn g_squash_lambda_controls_scale() {
        // Larger λ saturates faster.
        assert!(g_squash(1.0, 5.0) > g_squash(1.0, 0.5));
    }

    #[test]
    fn semantic_average_of_identical_angles() {
        let avg = semantic_average(&[1.2, 1.2, 1.2], &[0.2, 0.3, 0.5], 1.0);
        assert!(abs_delta(avg, 1.2) < 1e-5);
    }

    #[test]
    fn semantic_average_handles_seam() {
        // Angles 0.1 and 2π−0.1 average to 0 (the seam), not π as a naive
        // arithmetic mean of the raw values would give.
        let avg = semantic_average(&[0.1, TAU - 0.1], &[0.5, 0.5], 1.0);
        assert!(abs_delta(avg, 0.0) < 1e-4, "avg = {avg}");
    }

    #[test]
    fn semantic_average_weights_pull_towards_heavier_input() {
        let avg = semantic_average(&[0.0, 1.0], &[0.9, 0.1], 1.0);
        assert!(avg < 0.5);
    }

    #[test]
    fn semantic_average_degenerate_antipodes() {
        let avg = semantic_average(&[0.0, PI], &[0.5, 0.5], 1.0);
        // Falls back to the first input instead of NaN.
        assert!(avg.is_finite());
        assert!(abs_delta(avg, 0.0) < 1e-5);
    }
}
