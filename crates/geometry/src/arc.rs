//! The arc segment — HaLk's embedding region for one dimension.
//!
//! An [`Arc`] is the pair `(A_c, A_l)` of §II-A: a semantic-center angle and
//! an arclength encoding the answer-set cardinality. Definitions 1–2 of the
//! paper derive a *start point* `A_S = A_c − A_l/(2ρ)` and an *end point*
//! `A_E = A_c + A_l/(2ρ)`; the coordinated `(start, end)` pair is the key to
//! HaLk's projection operator and to its cascading-error mitigation, so those
//! conversions live here in closed form.

use crate::angle::{abs_delta, arclen_to_angle, chord, norm_angle, signed_delta, TAU};
use serde::{Deserialize, Serialize};

/// One embedding dimension of a query region: an arc on the circle of radius
/// `ρ`, described by a center angle `center ∈ [0, 2π)` and an arclength
/// `len ∈ [0, 2πρ]`.
///
/// An entity (a set with a single element) is an arc with `len == 0`
/// (§II-A); the universal set is the full circle, `len == 2πρ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arc {
    /// Semantic-center polar angle `A_c`, canonicalized to `[0, 2π)`.
    pub center: f32,
    /// Arclength `A_l ∈ [0, 2πρ]` (cardinality proxy).
    pub len: f32,
    /// Circle radius `ρ`.
    pub rho: f32,
}

impl Arc {
    /// Creates an arc, normalizing the center into `[0, 2π)` and clamping the
    /// arclength into the legal `[0, 2πρ]` range.
    pub fn new(center: f32, len: f32, rho: f32) -> Self {
        Self {
            center: norm_angle(center),
            len: len.clamp(0.0, TAU * rho),
            rho,
        }
    }

    /// The degenerate arc representing a single entity located at `angle`.
    pub fn point(angle: f32, rho: f32) -> Self {
        Self::new(angle, 0.0, rho)
    }

    /// The full circle — the embedding of the universal entity set, which the
    /// paper's negation operator needs and which box/beta methods cannot
    /// express (§I).
    pub fn full(rho: f32) -> Self {
        Self {
            center: 0.0,
            len: TAU * rho,
            rho,
        }
    }

    /// Half-span of the arc in *angle* units, `A_l / (2ρ)`.
    #[inline]
    pub fn half_angle(&self) -> f32 {
        self.len / (2.0 * self.rho)
    }

    /// Total subtended angle `A_α = A_l / ρ ∈ [0, 2π]`.
    #[inline]
    pub fn span_angle(&self) -> f32 {
        arclen_to_angle(self.len, self.rho)
    }

    /// Start point `A_S = A_c − A_l/(2ρ)` (Definition 1), wrapped to `[0, 2π)`.
    #[inline]
    pub fn start(&self) -> f32 {
        norm_angle(self.center - self.half_angle())
    }

    /// End point `A_E = A_c + A_l/(2ρ)` (Definition 2), wrapped to `[0, 2π)`.
    #[inline]
    pub fn end(&self) -> f32 {
        norm_angle(self.center + self.half_angle())
    }

    /// Reconstructs an arc from its start and end points, walking
    /// counter-clockwise from `start` to `end`. Inverse of
    /// [`Arc::start`]/[`Arc::end`] for non-degenerate arcs.
    pub fn from_endpoints(start: f32, end: f32, rho: f32) -> Self {
        let span = norm_angle(end - start); // ccw span in [0, 2π)
        let center = norm_angle(start + span * 0.5);
        Self::new(center, span * rho, rho)
    }

    /// Whether the angle `theta` lies on the arc (inclusive of endpoints).
    pub fn contains_angle(&self, theta: f32) -> bool {
        abs_delta(theta, self.center) <= self.half_angle() + 1e-6
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_arc(&self, other: &Arc) -> bool {
        if self.len >= TAU * self.rho - 1e-6 {
            return true;
        }
        let d = abs_delta(other.center, self.center);
        d + other.half_angle() <= self.half_angle() + 1e-6
    }

    /// Angular overlap between two arcs, in angle units `[0, 2π]`.
    ///
    /// Computed on the circle, so arcs that straddle the 0/2π seam are
    /// handled correctly. For arcs with combined span ≥ 2π the overlap is the
    /// excess of the combined span over the full turn (they must overlap).
    pub fn overlap_angle(&self, other: &Arc) -> f32 {
        let ha = self.half_angle();
        let hb = other.half_angle();
        let d = abs_delta(self.center, other.center);
        // Overlap on the near side.
        let near = (ha + hb - d).clamp(0.0, 2.0 * ha.min(hb));
        // Arcs can also meet around the far side of the circle when their
        // spans are large: distance around the far side is 2π − d.
        let far = (ha + hb - (TAU - d)).clamp(0.0, 2.0 * ha.min(hb));
        (near + far).min(2.0 * ha.min(hb)).min(TAU)
    }

    /// The closed-form complement arc of Eq. 13: center rotated by π,
    /// arclength `2πρ − A_l`. Together the arc and its complement tile the
    /// full circle.
    pub fn complement(&self) -> Arc {
        let c = if self.center < std::f32::consts::PI {
            self.center + std::f32::consts::PI
        } else {
            self.center - std::f32::consts::PI
        };
        Arc::new(c, TAU * self.rho - self.len, self.rho)
    }

    /// Outside distance `d_o` of Eq. 16 from an entity point at `theta`: the
    /// smaller chord to the two endpoints,
    /// `2ρ·min{|sin((θ−A_S)/2)|, |sin((θ−A_E)/2)|}` — the paper's formula
    /// taken literally, *without* zeroing inside the arc.
    ///
    /// For a point arc this degenerates to the RotatE chord distance, which
    /// is what keeps entity embeddings organized during training; the
    /// ConE-style variant that zeroes `d_o` inside the arc
    /// ([`Arc::outside_dist_zeroed`]) lets arcs inflate to swallow positives
    /// without structuring the space and trains far worse at CPU scale
    /// (measured in EXPERIMENTS.md).
    pub fn outside_dist(&self, theta: f32) -> f32 {
        chord(theta, self.start(), self.rho).min(chord(theta, self.end(), self.rho))
    }

    /// The ConE-style outside distance: zero anywhere on the arc, otherwise
    /// the smaller endpoint chord. Kept for comparison and for the matching
    /// engine's containment-oriented checks.
    pub fn outside_dist_zeroed(&self, theta: f32) -> f32 {
        if self.contains_angle(theta) {
            0.0
        } else {
            self.outside_dist(theta)
        }
    }

    /// Inside distance `d_i` of Eq. 16: the chord to the semantic center,
    /// capped by the chord of the half-arc, so that points inside the arc are
    /// only mildly pushed towards (but not forced onto) the center.
    pub fn inside_dist(&self, theta: f32) -> f32 {
        let to_center = chord(theta, self.center, self.rho);
        let cap = 2.0 * self.rho * (self.half_angle() * 0.5).sin().abs();
        to_center.min(cap)
    }

    /// Full distance `d = d_o + η·d_i` (Eq. 15) for one dimension.
    pub fn dist(&self, theta: f32, eta: f32) -> f32 {
        self.outside_dist(theta) + eta * self.inside_dist(theta)
    }

    /// Signed offset of `theta` from the arc center in `(-π, π]`; useful for
    /// diagnostics and for the matching engine's candidate ordering.
    pub fn center_offset(&self, theta: f32) -> f32 {
        signed_delta(theta, self.center)
    }

    /// Exact closed-form intersection of two arcs **when the overlap is a
    /// single contiguous arc** (the common case for the benchmark's query
    /// regions). Returns `None` for disjoint arcs; for the rare double-
    /// overlap case (combined span > 2π on both sides) the larger piece is
    /// returned — a conservative, still-sound region.
    pub fn intersect_exact(&self, other: &Arc) -> Option<Arc> {
        let ov = self.overlap_angle(other);
        if ov <= 1e-7 {
            return None;
        }
        // The overlap is centered where the two centers' angular midpoint
        // falls, shifted towards the tighter side; derive it from endpoint
        // clipping on the near side.
        let d = signed_delta(other.center, self.center);
        let lo = (-self.half_angle()).max(d - other.half_angle());
        let hi = self.half_angle().min(d + other.half_angle());
        if hi <= lo {
            // Overlap only across the far side; center it antipodally.
            let span = ov;
            let far_center = norm_angle(self.center + std::f32::consts::PI);
            return Some(Arc::new(far_center, span * self.rho, self.rho));
        }
        let center = norm_angle(self.center + (lo + hi) * 0.5);
        Some(Arc::new(center, (hi - lo) * self.rho, self.rho))
    }

    /// Exact closed-form difference `self − other`: up to **two** arcs.
    ///
    /// This is precisely what a single box/interval embedding cannot express
    /// (Fig. 5a of the paper — `BoxSeg::difference_lossy` must drop one
    /// side); on the circle the result is representable exactly, which is
    /// the geometric basis of HaLk's "closed-formed solutions for the
    /// difference operator" claim.
    pub fn difference_exact(&self, other: &Arc) -> (Option<Arc>, Option<Arc>) {
        let overlap = match self.intersect_exact(other) {
            None => return (Some(*self), None),
            Some(o) => o,
        };
        if overlap.len >= self.len - 1e-6 {
            return (None, None); // fully covered
        }
        // Remaining pieces: [self.start, overlap.start) and (overlap.end,
        // self.end], measured counter-clockwise.
        let left_span = norm_angle(overlap.start() - self.start());
        let right_span = norm_angle(self.end() - overlap.end());
        let mk = |start: f32, span: f32| -> Option<Arc> {
            if span <= 1e-6 || span > TAU {
                None
            } else {
                Some(Arc::from_endpoints(start, start + span, self.rho))
            }
        };
        // Guard against spans that wrap past the minuend (happens when the
        // overlap touches an endpoint).
        let total = self.span_angle();
        let left = if left_span <= total + 1e-5 {
            mk(self.start(), left_span.min(total))
        } else {
            None
        };
        let right = if right_span <= total + 1e-5 {
            mk(norm_angle(overlap.end()), right_span.min(total))
        } else {
            None
        };
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    const R: f32 = 1.0;

    #[test]
    fn endpoints_match_definitions() {
        let a = Arc::new(1.0, 0.8, R);
        // A_S = c − l/2ρ, A_E = c + l/2ρ.
        assert!((a.start() - 0.6).abs() < 1e-6);
        assert!((a.end() - 1.4).abs() < 1e-6);
    }

    #[test]
    fn endpoints_wrap_across_seam() {
        let a = Arc::new(0.1, 1.0, R); // start at 0.1 - 0.5 < 0
        assert!((a.start() - (TAU - 0.4)).abs() < 1e-5);
        assert!((a.end() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn from_endpoints_roundtrip() {
        let a = Arc::new(5.9, 1.2, R); // straddles the seam
        let b = Arc::from_endpoints(a.start(), a.end(), R);
        assert!(abs_delta(a.center, b.center) < 1e-5);
        assert!((a.len - b.len).abs() < 1e-5);
    }

    #[test]
    fn point_arc_contains_only_itself() {
        let p = Arc::point(2.0, R);
        assert!(p.contains_angle(2.0));
        assert!(!p.contains_angle(2.1));
        assert_eq!(p.len, 0.0);
    }

    #[test]
    fn full_circle_contains_everything() {
        let f = Arc::full(R);
        for i in 0..20 {
            assert!(f.contains_angle(i as f32 * 0.3));
        }
    }

    #[test]
    fn containment_respects_seam() {
        let big = Arc::new(0.0, 2.0, R); // [-1, 1] through the seam
        let small = Arc::new(TAU - 0.5, 0.5, R);
        assert!(big.contains_arc(&small));
        assert!(!small.contains_arc(&big));
    }

    #[test]
    fn complement_tiles_circle() {
        let a = Arc::new(1.3, 2.2, R);
        let c = a.complement();
        assert!((a.len + c.len - TAU * R).abs() < 1e-5);
        assert!((abs_delta(a.center, c.center) - PI).abs() < 1e-5);
        // Complement of the complement is the original.
        let cc = c.complement();
        assert!(abs_delta(cc.center, a.center) < 1e-5);
        assert!((cc.len - a.len).abs() < 1e-5);
    }

    #[test]
    fn complement_boundary_partition() {
        // A point just inside the arc is not in the complement and vice versa.
        let a = Arc::new(2.0, 1.0, R);
        let c = a.complement();
        assert!(a.contains_angle(2.0));
        assert!(!c.contains_angle(2.0));
        let outside = norm_angle(2.0 + PI);
        assert!(!a.contains_angle(outside));
        assert!(c.contains_angle(outside));
    }

    #[test]
    fn overlap_disjoint_is_zero() {
        let a = Arc::new(0.5, 0.4, R);
        let b = Arc::new(3.0, 0.4, R);
        assert!(a.overlap_angle(&b).abs() < 1e-6);
    }

    #[test]
    fn overlap_nested_is_smaller_span() {
        let big = Arc::new(1.0, 2.0, R);
        let small = Arc::new(1.1, 0.4, R);
        assert!((big.overlap_angle(&small) - small.span_angle()).abs() < 1e-5);
    }

    #[test]
    fn overlap_partial() {
        // [0.0, 1.0] and [0.6, 1.6]: overlap 0.4 in angle.
        let a = Arc::from_endpoints(0.0, 1.0, R);
        let b = Arc::from_endpoints(0.6, 1.6, R);
        assert!((a.overlap_angle(&b) - 0.4).abs() < 1e-5);
    }

    #[test]
    fn overlap_across_seam() {
        let a = Arc::from_endpoints(TAU - 0.3, 0.3, R); // spans the seam
        let b = Arc::from_endpoints(0.1, 0.5, R);
        assert!((a.overlap_angle(&b) - 0.2).abs() < 1e-5);
    }

    #[test]
    fn overlap_symmetry() {
        let a = Arc::new(1.0, 1.7, R);
        let b = Arc::new(2.4, 2.9, R);
        assert!((a.overlap_angle(&b) - b.overlap_angle(&a)).abs() < 1e-6);
    }

    #[test]
    fn outside_dist_zero_at_endpoints_only() {
        let a = Arc::new(1.0, 1.0, R);
        // Eq. 16 literal: vanishes at the endpoints, not on the interior.
        assert!(a.outside_dist(a.start()).abs() < 1e-6);
        assert!(a.outside_dist(a.end()).abs() < 1e-6);
        assert!(a.outside_dist(1.0) > 0.0); // center
        assert!(a.outside_dist(2.0) > 0.0); // outside
    }

    #[test]
    fn outside_dist_zeroed_vanishes_on_arc() {
        let a = Arc::new(1.0, 1.0, R);
        assert_eq!(a.outside_dist_zeroed(1.0), 0.0);
        assert_eq!(a.outside_dist_zeroed(1.49), 0.0);
        assert!(a.outside_dist_zeroed(2.0) > 0.0);
        // Outside the arc, the two variants agree.
        assert_eq!(a.outside_dist_zeroed(2.5), a.outside_dist(2.5));
    }

    #[test]
    fn outside_dist_monotone_in_separation() {
        let a = Arc::new(0.0, 0.5, R);
        let d1 = a.outside_dist(1.0);
        let d2 = a.outside_dist(2.0);
        let d3 = a.outside_dist(3.0);
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    fn point_arc_outside_dist_is_rotate_chord() {
        let p = Arc::point(1.3, R);
        for theta in [0.0f32, 1.0, 2.5, 5.0] {
            assert!((p.outside_dist(theta) - chord(theta, 1.3, R)).abs() < 1e-6);
        }
    }

    #[test]
    fn inside_dist_capped_by_half_arc_chord() {
        let a = Arc::new(0.0, 2.0, R);
        let cap = 2.0 * R * (a.half_angle() * 0.5).sin();
        // Far outside point: inside distance saturates at the cap.
        assert!((a.inside_dist(PI) - cap).abs() < 1e-5);
        // At the center it is zero.
        assert!(a.inside_dist(0.0).abs() < 1e-7);
    }

    #[test]
    fn dist_weights_inside_term() {
        let a = Arc::new(0.0, 1.0, R);
        let theta = a.start(); // endpoint: d_o = 0, only η·d_i remains
        assert!((a.dist(theta, 0.0) - 0.0).abs() < 1e-6);
        assert!(a.dist(theta, 0.5) > 0.0);
    }

    #[test]
    fn intersect_exact_nested_and_partial() {
        let big = Arc::from_endpoints(0.0, 2.0, R);
        let small = Arc::from_endpoints(0.5, 1.0, R);
        let i = big.intersect_exact(&small).unwrap();
        assert!(abs_delta(i.start(), 0.5) < 1e-5);
        assert!(abs_delta(i.end(), 1.0) < 1e-5);
        // Partial overlap [1.5, 2.0].
        let right = Arc::from_endpoints(1.5, 3.0, R);
        let p = big.intersect_exact(&right).unwrap();
        assert!(abs_delta(p.start(), 1.5) < 1e-4);
        assert!(abs_delta(p.end(), 2.0) < 1e-4);
        // Disjoint.
        assert!(big
            .intersect_exact(&Arc::from_endpoints(3.0, 4.0, R))
            .is_none());
    }

    #[test]
    fn intersect_exact_across_seam() {
        let a = Arc::from_endpoints(TAU - 0.5, 0.5, R);
        let b = Arc::from_endpoints(0.2, 1.0, R);
        let i = a.intersect_exact(&b).unwrap();
        assert!(abs_delta(i.start(), 0.2) < 1e-4);
        assert!(abs_delta(i.end(), 0.5) < 1e-4);
    }

    #[test]
    fn difference_exact_middle_cut_keeps_both_sides() {
        // The case the box difference must lose (Fig. 5a): removing the
        // middle yields two arcs — both representable on the circle.
        let a = Arc::from_endpoints(0.0, 3.0, R);
        let b = Arc::from_endpoints(1.0, 2.0, R);
        let (l, r) = a.difference_exact(&b);
        let l = l.expect("left piece");
        let r = r.expect("right piece");
        assert!(abs_delta(l.start(), 0.0) < 1e-4 && abs_delta(l.end(), 1.0) < 1e-4);
        assert!(abs_delta(r.start(), 2.0) < 1e-4 && abs_delta(r.end(), 3.0) < 1e-4);
        // Membership agrees with set semantics at probe points.
        for (theta, expect) in [(0.5, true), (1.5, false), (2.5, true), (3.5, false)] {
            let inside = l.contains_angle(theta) || r.contains_angle(theta);
            assert_eq!(inside, expect, "theta={theta}");
        }
    }

    #[test]
    fn difference_exact_disjoint_and_covered() {
        let a = Arc::from_endpoints(0.0, 1.0, R);
        let far = Arc::from_endpoints(3.0, 4.0, R);
        assert_eq!(a.difference_exact(&far), (Some(a), None));
        let cover = Arc::from_endpoints(TAU - 0.5, 2.0, R);
        assert_eq!(a.difference_exact(&cover), (None, None));
    }

    #[test]
    fn difference_exact_side_cut_single_piece() {
        let a = Arc::from_endpoints(0.0, 2.0, R);
        let b = Arc::from_endpoints(1.5, 3.0, R);
        let (l, r) = a.difference_exact(&b);
        let l = l.expect("left remains");
        assert!(abs_delta(l.start(), 0.0) < 1e-4 && abs_delta(l.end(), 1.5) < 1e-4);
        assert!(r.is_none() || r.unwrap().len < 1e-4);
    }

    #[test]
    fn len_is_clamped() {
        let a = Arc::new(0.0, 100.0, R);
        assert!((a.len - TAU).abs() < 1e-5);
        let b = Arc::new(0.0, -3.0, R);
        assert_eq!(b.len, 0.0);
    }
}
