//! Angular arithmetic on the circle `[0, 2π)`.
//!
//! HaLk measures every distance through *chord lengths* (`2ρ·sin(Δθ/2)`,
//! Eq. 9 and Eq. 16 of the paper) precisely because chords are immune to the
//! 2π-periodicity that breaks naive angle subtraction. The helpers here are
//! the single source of truth for wrapping, signed differences and chords.

/// The full turn, `2π`, as `f32`.
pub const TAU: f32 = std::f32::consts::TAU;

/// Normalizes an angle to the canonical range `[0, 2π)`.
///
/// Handles arbitrarily large magnitudes and negative inputs. `NaN` is
/// propagated unchanged so callers can surface upstream numerical bugs
/// instead of silently folding them onto the circle.
///
/// ```
/// use halk_geometry::angle::{norm_angle, TAU};
/// assert!((norm_angle(TAU + 1.0) - 1.0).abs() < 1e-6);
/// assert!((norm_angle(-0.5) - (TAU - 0.5)).abs() < 1e-6);
/// ```
#[inline]
pub fn norm_angle(theta: f32) -> f32 {
    let r = theta.rem_euclid(TAU);
    // rem_euclid can return TAU itself when theta is a tiny negative number
    // whose remainder rounds up; fold that back to 0.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// Signed minimal difference `a - b`, wrapped into `(-π, π]`.
///
/// This is the angular displacement you would rotate through to get from `b`
/// to `a` along the shorter way around the circle.
///
/// ```
/// use halk_geometry::angle::signed_delta;
/// use std::f32::consts::PI;
/// assert!((signed_delta(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-6);
/// ```
#[inline]
pub fn signed_delta(a: f32, b: f32) -> f32 {
    let mut d = norm_angle(a) - norm_angle(b);
    if d > std::f32::consts::PI {
        d -= TAU;
    } else if d <= -std::f32::consts::PI {
        d += TAU;
    }
    d
}

/// Absolute minimal angular distance between two angles, in `[0, π]`.
#[inline]
pub fn abs_delta(a: f32, b: f32) -> f32 {
    signed_delta(a, b).abs()
}

/// Chord length between two points on a circle of radius `rho`:
/// `2ρ·|sin((a−b)/2)|` (the measurement standard of Eq. 9 / Eq. 16).
///
/// Unlike the raw angle difference, the chord is a periodic-safe metric: it
/// is continuous across the 0/2π seam and symmetric in its arguments.
#[inline]
pub fn chord(a: f32, b: f32, rho: f32) -> f32 {
    2.0 * rho * ((a - b) * 0.5).sin().abs()
}

/// Chord length subtended by an angular span `delta` (around any base point).
#[inline]
pub fn chord_of_span(delta: f32, rho: f32) -> f32 {
    2.0 * rho * (delta * 0.5).sin().abs()
}

/// Converts an arclength on a circle of radius `rho` to the subtended angle.
#[inline]
pub fn arclen_to_angle(len: f32, rho: f32) -> f32 {
    len / rho
}

/// Converts a subtended angle to an arclength on a circle of radius `rho`.
#[inline]
pub fn angle_to_arclen(alpha: f32, rho: f32) -> f32 {
    alpha * rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    #[test]
    fn norm_angle_identity_in_range() {
        for &t in &[0.0, 0.5, PI, TAU - 1e-3] {
            assert!((norm_angle(t) - t).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn norm_angle_wraps_negative() {
        assert!((norm_angle(-PI) - PI).abs() < 1e-6);
        assert!((norm_angle(-3.0 * TAU - 1.0) - (TAU - 1.0)).abs() < 1e-4);
    }

    #[test]
    fn norm_angle_zero_at_tau() {
        assert_eq!(norm_angle(TAU), 0.0);
        assert_eq!(norm_angle(0.0), 0.0);
    }

    #[test]
    fn norm_angle_propagates_nan() {
        assert!(norm_angle(f32::NAN).is_nan());
    }

    #[test]
    fn signed_delta_is_antisymmetric() {
        let (a, b) = (0.3, 5.9);
        assert!((signed_delta(a, b) + signed_delta(b, a)).abs() < 1e-6);
    }

    #[test]
    fn signed_delta_crosses_seam() {
        // 0.1 and 2π-0.1 are 0.2 apart through the seam, not 2π-0.2.
        assert!((signed_delta(0.1, TAU - 0.1) - 0.2).abs() < 1e-6);
        assert!((signed_delta(TAU - 0.1, 0.1) + 0.2).abs() < 1e-6);
    }

    #[test]
    fn signed_delta_half_turn_is_positive_pi() {
        // The boundary case lands on +π by convention (range (-π, π]).
        assert!((signed_delta(PI, 0.0) - PI).abs() < 1e-6);
    }

    #[test]
    fn chord_is_periodic_safe() {
        // Same two physical points expressed with different winding.
        let c1 = chord(0.2, 6.0, 1.0);
        let c2 = chord(0.2 + TAU, 6.0 - TAU, 1.0);
        assert!((c1 - c2).abs() < 1e-5);
    }

    #[test]
    fn chord_max_at_antipode() {
        // Diametrically opposite points: chord = 2ρ.
        assert!((chord(0.0, PI, 3.0) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn chord_zero_at_same_point() {
        assert!(chord(1.234, 1.234, 2.0).abs() < 1e-7);
    }

    #[test]
    fn arclen_angle_roundtrip() {
        let rho = 2.5;
        let len = 3.3;
        assert!((angle_to_arclen(arclen_to_angle(len, rho), rho) - len).abs() < 1e-6);
    }
}
