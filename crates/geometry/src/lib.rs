//! Closed-form geometric primitives for HaLk and its baselines.
//!
//! HaLk (ICDE 2023) embeds every knowledge-graph entity as a *point* on a
//! circle of radius `ρ` and every sub-query as an *arc segment* on the same
//! circle, one `(center, arclength)` pair per embedding dimension. This crate
//! implements the angular arithmetic the paper relies on — start/end points
//! (Definitions 1–2), the quadrant regularizer `Reg(·)` (Eq. 6), chord-length
//! distances (Eq. 9, 16), the squashing function `g(·)` (Eq. 3), and the
//! closed-form complement used to seed the negation operator (Eq. 13) —
//! entirely free of any learning machinery so it can be tested exhaustively.
//!
//! Two sibling modules provide the geometric substrates of the baselines the
//! paper compares against: axis-aligned [`boxes`] for NewLook (KDD 2021) and
//! [`cone`] sectors for ConE (NeurIPS 2021).
//!
//! All functions here are scalar (one embedding dimension at a time); the
//! model crates apply them element-wise over tensors, and the property tests
//! in this crate pin down the invariants the learned operators must respect.

pub mod angle;
pub mod arc;
pub mod boxes;
pub mod cone;
pub mod polar;

pub use angle::{chord, norm_angle, signed_delta, TAU};
pub use arc::Arc;
pub use boxes::BoxSeg;
pub use cone::ConeSeg;
pub use polar::{g_squash, reg_atan2, to_polar, to_rect};

/// Default circle radius `ρ` used throughout the paper (radius learning is
/// explicitly deferred to future work in §II-A, so `ρ` is a fixed constant).
pub const DEFAULT_RHO: f32 = 1.0;
