//! Axis-aligned box segments — the geometric substrate of NewLook
//! (Liu et al., KDD 2021) and Query2Box (Ren et al., ICLR 2020).
//!
//! NewLook represents a query as a hyper-rectangle `(center, offset)` in
//! `R^d`; this module provides the per-dimension interval algebra the
//! baseline needs: containment, intersection, the *lossy* difference that the
//! HaLk paper criticizes (§III-C, Fig. 5a), and the Query2Box inside/outside
//! distance. Keeping it closed-form and scalar lets the property tests pin
//! down exactly where the box difference loses answers — the behaviour HaLk's
//! arc difference is designed to avoid.

use serde::{Deserialize, Serialize};

/// One dimension of a box embedding: the interval
/// `[center − offset, center + offset]` with `offset ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxSeg {
    /// Interval midpoint.
    pub center: f32,
    /// Non-negative half-width.
    pub offset: f32,
}

impl BoxSeg {
    /// Creates a box segment, clamping a negative offset to zero.
    pub fn new(center: f32, offset: f32) -> Self {
        Self {
            center,
            offset: offset.max(0.0),
        }
    }

    /// A degenerate (point) box at `x` — the embedding of a single entity.
    pub fn point(x: f32) -> Self {
        Self::new(x, 0.0)
    }

    /// Lower end of the interval.
    #[inline]
    pub fn lo(&self) -> f32 {
        self.center - self.offset
    }

    /// Upper end of the interval.
    #[inline]
    pub fn hi(&self) -> f32 {
        self.center + self.offset
    }

    /// Whether a scalar point lies inside the interval (inclusive).
    pub fn contains(&self, x: f32) -> bool {
        x >= self.lo() - 1e-6 && x <= self.hi() + 1e-6
    }

    /// Exact interval intersection; `None` when disjoint.
    pub fn intersect(&self, other: &BoxSeg) -> Option<BoxSeg> {
        let lo = self.lo().max(other.lo());
        let hi = self.hi().min(other.hi());
        if lo > hi {
            None
        } else {
            Some(BoxSeg::new((lo + hi) * 0.5, (hi - lo) * 0.5))
        }
    }

    /// Length of overlap with another interval (zero when disjoint).
    pub fn overlap_len(&self, other: &BoxSeg) -> f32 {
        (self.hi().min(other.hi()) - self.lo().max(other.lo())).max(0.0)
    }

    /// The *lossy* single-interval difference `self − other` as a box method
    /// must approximate it (Fig. 5a of the HaLk paper).
    ///
    /// The true set difference of two overlapping intervals is in general a
    /// union of up to two intervals, which a single `(center, offset)` cannot
    /// express. Following NewLook's shrinking behaviour, this keeps the
    /// larger surviving side — introducing false negatives when the removed
    /// region splits `self`, and false positives when nothing can shrink.
    pub fn difference_lossy(&self, other: &BoxSeg) -> BoxSeg {
        let ov_lo = self.lo().max(other.lo());
        let ov_hi = self.hi().min(other.hi());
        if ov_lo >= ov_hi {
            return *self; // disjoint: nothing removed
        }
        if other.lo() <= self.lo() && other.hi() >= self.hi() {
            // Fully covered: empty result (degenerate point at center).
            return BoxSeg::new(self.center, 0.0);
        }
        let left_len = (ov_lo - self.lo()).max(0.0);
        let right_len = (self.hi() - ov_hi).max(0.0);
        if left_len >= right_len {
            BoxSeg::new((self.lo() + ov_lo) * 0.5, left_len * 0.5)
        } else {
            BoxSeg::new((ov_hi + self.hi()) * 0.5, right_len * 0.5)
        }
    }

    /// Query2Box distance from a point: `dist_outside + η·dist_inside`.
    pub fn dist(&self, x: f32, eta: f32) -> f32 {
        self.dist_outside(x) + eta * self.dist_inside(x)
    }

    /// Distance from `x` to the nearest interval edge, zero inside.
    pub fn dist_outside(&self, x: f32) -> f32 {
        (x - self.hi()).max(0.0) + (self.lo() - x).max(0.0)
    }

    /// Distance from the interval center, capped at the offset (Query2Box's
    /// inside term).
    pub fn dist_inside(&self, x: f32) -> f32 {
        (x - self.center).abs().min(self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_offset_clamped() {
        assert_eq!(BoxSeg::new(1.0, -0.5).offset, 0.0);
    }

    #[test]
    fn contains_endpoints() {
        let b = BoxSeg::new(0.0, 1.0);
        assert!(b.contains(-1.0) && b.contains(1.0) && b.contains(0.0));
        assert!(!b.contains(1.1));
    }

    #[test]
    fn intersect_partial() {
        let a = BoxSeg::new(0.0, 1.0); // [-1, 1]
        let b = BoxSeg::new(1.0, 1.0); // [0, 2]
        let i = a.intersect(&b).unwrap();
        assert!((i.lo() - 0.0).abs() < 1e-6 && (i.hi() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = BoxSeg::new(0.0, 0.5);
        let b = BoxSeg::new(3.0, 0.5);
        assert!(a.intersect(&b).is_none());
        assert_eq!(a.overlap_len(&b), 0.0);
    }

    #[test]
    fn intersect_nested_returns_inner() {
        let outer = BoxSeg::new(0.0, 2.0);
        let inner = BoxSeg::new(0.3, 0.2);
        let i = outer.intersect(&inner).unwrap();
        assert!((i.center - inner.center).abs() < 1e-6);
        assert!((i.offset - inner.offset).abs() < 1e-6);
    }

    #[test]
    fn difference_disjoint_is_identity() {
        let a = BoxSeg::new(0.0, 1.0);
        let b = BoxSeg::new(5.0, 1.0);
        assert_eq!(a.difference_lossy(&b), a);
    }

    #[test]
    fn difference_cover_is_empty() {
        let a = BoxSeg::new(0.0, 1.0);
        let b = BoxSeg::new(0.0, 2.0);
        assert_eq!(a.difference_lossy(&b).offset, 0.0);
    }

    #[test]
    fn difference_side_cut_keeps_remainder() {
        let a = BoxSeg::new(0.0, 1.0); // [-1, 1]
        let b = BoxSeg::new(1.0, 0.5); // [0.5, 1.5]
        let d = a.difference_lossy(&b); // should keep [-1, 0.5]
        assert!((d.lo() + 1.0).abs() < 1e-6);
        assert!((d.hi() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn difference_middle_cut_is_lossy() {
        // Removing the middle produces two true intervals; the box keeps one
        // and *loses* the other — the false-negative failure mode the HaLk
        // paper highlights in Fig. 5a.
        let a = BoxSeg::new(0.0, 2.0); // [-2, 2]
        let b = BoxSeg::new(0.0, 0.5); // [-0.5, 0.5]
        let d = a.difference_lossy(&b);
        let true_left_covered = d.contains(-1.0);
        let true_right_covered = d.contains(1.0);
        assert!(
            true_left_covered ^ true_right_covered,
            "one side must be lost"
        );
    }

    #[test]
    fn dist_zero_inside() {
        let b = BoxSeg::new(0.0, 1.0);
        assert_eq!(b.dist_outside(0.5), 0.0);
        assert!(b.dist_outside(2.0) > 0.0);
    }

    #[test]
    fn dist_inside_capped() {
        let b = BoxSeg::new(0.0, 1.0);
        assert!((b.dist_inside(10.0) - 1.0).abs() < 1e-6);
        assert_eq!(b.dist_inside(0.0), 0.0);
    }

    #[test]
    fn dist_combines_terms() {
        let b = BoxSeg::new(0.0, 1.0);
        let d = b.dist(2.0, 0.5);
        assert!((d - (1.0 + 0.5 * 1.0)).abs() < 1e-6);
    }
}
