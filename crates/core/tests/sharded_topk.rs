//! Sharded streaming top-k bit-identity suite (PR 7). The arc-sharded
//! heap path (`entity_shards` + `top_k_sharded` / `sharded_top_k`) is an
//! *optimization* of `score_all` + `top_k_indices`, not a semantic change;
//! this file pins that down the same way `hotpath_equivalence.rs` pins the
//! vectorized kernel:
//!
//! 1. real model, real queries: every shard count (1/2/4/8, including
//!    shards > slices so some shards are empty) and adversarial k
//!    (0, 1, mid, n, > n) reproduce the argsort reference bit-for-bit;
//! 2. batched plan embedding: `scorers_for_shape` over a same-skeleton
//!    group scores bit-identically to each query embedded alone;
//! 3. deadlines: an already-expired deadline scores zero rows; `never`
//!    scores all of them;
//! 4. proptest: `ArcShards` is always a contiguous slice-aligned cover,
//!    and merge-k over *arbitrary* (not just contiguous) partitions of a
//!    tie-heavy score vector matches `top_k_indices` — the heap merge is
//!    partition- and order-independent because (score, index) keys are
//!    distinct.
//!
//! Scores from `ArcScorer` are finite and non-negative (2ρ · a min-fold of
//! sums of absolute values), never `-0.0` or NaN, so `total_cmp` ordering
//! inside `TopK` coincides with the reference's `partial_cmp`-then-index
//! ordering. Synthetic vectors below stay in that domain on purpose.

use halk_core::{top_k_indices, HalkConfig, HalkModel, Pool, TopK, SCORE_SLICE};
use halk_kg::{generate, SynthConfig};
use halk_logic::plan::PlanShape;
use halk_logic::{Sampler, Structure};
use halk_obs::{Clock, Deadline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Operator coverage: projection chains, intersection, union, negation.
const STRUCTURES: [Structure; 4] = [Structure::P2, Structure::Pi, Structure::Up, Structure::In2];

struct Setup {
    model: HalkModel,
    queries: Vec<halk_logic::Query>,
    n: usize,
}

/// A 5000-entity graph: five 1024-row slices, so shard counts 2 and 4 give
/// real partitions and shard count 8 leaves empty shards (more shards than
/// slices). Untrained embeddings are the adversarial case — arcs land
/// anywhere, scores collide freely.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let cfg = SynthConfig {
            n_entities: 5000,
            ..SynthConfig::fb237_like()
        };
        let graph = generate(&cfg, &mut StdRng::seed_from_u64(21));
        let model = HalkModel::new(&graph, HalkConfig::tiny());
        let sampler = Sampler::new(&graph);
        let mut rng = StdRng::seed_from_u64(22);
        let queries = STRUCTURES
            .iter()
            .filter_map(|&s| sampler.sample(s, &mut rng))
            .map(|gq| gq.query)
            .collect::<Vec<_>>();
        assert!(!queries.is_empty(), "at least one structure must ground");
        let n = graph.n_entities();
        Setup { model, queries, n }
    })
}

/// The reference: full score vector, then the argsort-style selection.
fn reference(model: &HalkModel, query: &halk_logic::Query, k: usize) -> Vec<(u32, f32)> {
    let scores = model.score_all(query);
    top_k_indices(&scores, k)
        .into_iter()
        .map(|i| (i, scores[i as usize]))
        .collect()
}

#[test]
fn sharded_top_k_is_bit_identical_across_shard_counts_and_k() {
    let setup = setup();
    let never = Deadline::never();
    let pool = Pool::new(2);
    for query in &setup.queries {
        for k in [0, 1, 10, setup.n, setup.n + 37] {
            let want = reference(&setup.model, query, k);
            for shards in [1, 2, 4, 8] {
                let sharded = setup.model.entity_shards(shards);
                assert_eq!(sharded.n_entities(), setup.n);
                let (got, rows) = setup.model.top_k_sharded(&pool, &sharded, query, k, &never);
                assert_eq!(rows, setup.n, "never-deadline must score every row");
                assert_eq!(
                    got.len(),
                    want.len(),
                    "shards={shards} k={k}: result length"
                );
                for (i, (&(gi, gs), &(wi, ws))) in got.iter().zip(&want).enumerate() {
                    assert_eq!(gi, wi, "shards={shards} k={k} rank {i}: entity");
                    assert_eq!(
                        gs.to_bits(),
                        ws.to_bits(),
                        "shards={shards} k={k} rank {i}: score bits"
                    );
                }
            }
        }
    }
}

#[test]
fn batched_scorers_match_single_query_embedding() {
    let setup = setup();
    // A same-skeleton group: resample one structure several times.
    let graph = generate(
        &SynthConfig {
            n_entities: 5000,
            ..SynthConfig::fb237_like()
        },
        &mut StdRng::seed_from_u64(21),
    );
    let sampler = Sampler::new(&graph);
    let mut rng = StdRng::seed_from_u64(23);
    let group: Vec<_> = (0..6)
        .filter_map(|_| sampler.sample(Structure::P2, &mut rng))
        .map(|gq| gq.query)
        .collect();
    assert!(group.len() >= 2, "need a real batch");
    let shape = PlanShape::compile(&group[0]);
    let refs: Vec<&halk_logic::Query> = group.iter().collect();
    let scorers = setup.model.scorers_for_shape(&shape, &refs);
    assert_eq!(scorers.len(), group.len());
    let trig = setup.model.entity_trig();
    let never = Deadline::never();
    let mut batched = Vec::new();
    for (scorer, query) in scorers.iter().zip(&group) {
        batched.clear();
        batched.resize(trig.n_entities(), f32::INFINITY);
        let rows = scorer.score_until(&trig, 0, &mut batched, SCORE_SLICE, &never);
        assert_eq!(rows, trig.n_entities());
        let single = setup.model.score_all(query);
        for (i, (&b, &s)) in batched.iter().zip(&single).enumerate() {
            assert_eq!(
                b.to_bits(),
                s.to_bits(),
                "entity {i}: batched embed must be bit-identical to single"
            );
        }
    }
}

#[test]
fn expired_deadline_scores_nothing_and_never_scores_everything() {
    let setup = setup();
    let query = &setup.queries[0];
    let pool = Pool::new(1);
    let sharded = setup.model.entity_shards(4);
    let (clock, now) = Clock::mock();
    now.store(1_000, std::sync::atomic::Ordering::SeqCst);
    let expired = Deadline::at_ns(&clock, 500);
    let (hits, rows) = setup
        .model
        .top_k_sharded(&pool, &sharded, query, 10, &expired);
    assert_eq!(rows, 0, "expired before the first slice: nothing scored");
    assert!(hits.is_empty());
    let (hits, rows) = setup
        .model
        .top_k_sharded(&pool, &sharded, query, 10, &Deadline::never());
    assert_eq!(rows, setup.n);
    assert_eq!(hits.len(), 10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `ArcShards` is a contiguous, slice-aligned, exact cover of the
    /// entity rows for any (n_entities, n_shards) — interior boundaries
    /// sit on `SCORE_SLICE` multiples, which is what keeps a sharded sweep
    /// bit-identical (including deadline truncation points) to the
    /// unsharded one.
    #[test]
    fn arc_shards_cover_is_contiguous_and_slice_aligned(
        n_entities in 0usize..20_000,
        n_shards in 1usize..16,
    ) {
        let parts = halk_core::ArcShards::new(n_entities, n_shards);
        prop_assert_eq!(parts.n_shards(), n_shards);
        prop_assert_eq!(parts.n_entities(), n_entities);
        let mut row = 0usize;
        for s in 0..n_shards {
            let r = parts.range(s);
            prop_assert_eq!(r.start, row, "shard {} must start where {} ended", s, s.wrapping_sub(1));
            prop_assert!(r.end >= r.start);
            if s + 1 < n_shards && r.end < n_entities {
                prop_assert_eq!(r.end % SCORE_SLICE, 0, "interior boundary off slice grid");
            }
            row = r.end;
        }
        prop_assert_eq!(row, n_entities, "shards must cover every row");
    }

    /// Merge-k over an *arbitrary* partition of a tie-heavy non-negative
    /// score vector reproduces `top_k_indices` exactly: each element is
    /// offered to the heap of `partition[i] % n_chunks`, the chunk heaps
    /// are absorbed in order, and the drained ranking must match. Scores
    /// are quantized to 1/8 steps so duplicates are common — the tie cases
    /// the index tiebreak exists for.
    #[test]
    fn merged_partition_heaps_match_argsort_reference(
        raw in proptest::collection::vec(0u32..48, 0..80),
        n_chunks in 1usize..6,
        k in 0usize..90,
    ) {
        let scores: Vec<f32> = raw.iter().map(|&v| v as f32 / 8.0).collect();
        let mut chunks: Vec<TopK> = (0..n_chunks).map(|_| TopK::new(k)).collect();
        for (i, &s) in scores.iter().enumerate() {
            chunks[i % n_chunks].offer(i as u32, s);
        }
        let mut merged = TopK::new(k);
        for c in &chunks {
            merged.absorb(c);
        }
        let got = merged.into_sorted();
        let want: Vec<(u32, f32)> = top_k_indices(&scores, k)
            .into_iter()
            .map(|i| (i, scores[i as usize]))
            .collect();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.0, w.0);
            prop_assert_eq!(g.1.to_bits(), w.1.to_bits());
        }
    }
}
