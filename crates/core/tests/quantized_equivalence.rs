//! Rank-metric equivalence gate for quantized scoring (ISSUE 8).
//!
//! The exact F32 path is the reference: byte-identical trig, bit-identical
//! scores. Quantized precisions (I16, I8) store fixed-point trig and are
//! held to a *rank* contract instead: over a sweep of link-prediction
//! queries, MRR and Hits@{1,3,10} computed from quantized scores must sit
//! within 1e-3 of the exact metrics. I16 must pass outright (its per-value
//! error is ~1.6e-5, far below typical score gaps); I8 is experimental and
//! asserted at a looser bound so a regression that breaks it entirely
//! still fails loudly.

use halk_core::{HalkConfig, HalkModel, Precision, TrainConfig};
use halk_kg::{generate, Graph, SynthConfig};
use halk_logic::{Query, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_deployment() -> (Graph, HalkModel) {
    let cfg = SynthConfig {
        n_entities: 400,
        ..SynthConfig::fb237_like()
    };
    let graph = generate(&cfg, &mut StdRng::seed_from_u64(11));
    let mut model = HalkModel::new(&graph, HalkConfig::tiny());
    let tc = TrainConfig {
        steps: 40,
        threads: 1,
        ..TrainConfig::tiny()
    };
    halk_core::train_model(&mut model, &graph, &[Structure::P1], &tc).unwrap();
    (graph, model)
}

/// Rank metrics of the true tails of `n` held-out-style atom queries under
/// `precision`. Rank uses the same `(score, index)` strict total order as
/// the top-k kernels: a tie on score breaks toward the lower entity id.
fn rank_metrics(graph: &Graph, model: &HalkModel, precision: Precision, n: usize) -> [f64; 4] {
    let trig = model.entity_trig_with(precision);
    let mut scores = Vec::new();
    let (mut mrr, mut h1, mut h3, mut h10) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let triples = graph.triples();
    assert!(triples.len() >= n, "fixture must supply {n} probe triples");
    for t in &triples[..n] {
        let query = Query::atom(t.h, t.r);
        model.score_all_with(&trig, &query, &mut scores);
        let target = t.t.0 as usize;
        let ts = scores[target];
        // Rank = 1 + number of entities strictly ahead in the total order.
        let ahead = scores
            .iter()
            .enumerate()
            .filter(|&(i, &s)| (s, i) < (ts, target))
            .count();
        let rank = (ahead + 1) as f64;
        mrr += 1.0 / rank;
        h1 += f64::from(rank <= 1.0);
        h3 += f64::from(rank <= 3.0);
        h10 += f64::from(rank <= 10.0);
    }
    let n = n as f64;
    [mrr / n, h1 / n, h3 / n, h10 / n]
}

const PROBES: usize = 64;

#[test]
fn i16_rank_metrics_match_exact_within_1e_3() {
    let (graph, model) = trained_deployment();
    let exact = rank_metrics(&graph, &model, Precision::F32, PROBES);
    let quant = rank_metrics(&graph, &model, Precision::I16, PROBES);
    for (name, (e, q)) in ["mrr", "hits@1", "hits@3", "hits@10"]
        .iter()
        .zip(exact.iter().zip(quant.iter()))
    {
        assert!(
            (e - q).abs() <= 1e-3,
            "{name}: exact {e} vs i16 {q} differ by {}",
            (e - q).abs()
        );
    }
}

#[test]
fn i8_rank_metrics_stay_close_to_exact() {
    let (graph, model) = trained_deployment();
    let exact = rank_metrics(&graph, &model, Precision::F32, PROBES);
    let quant = rank_metrics(&graph, &model, Precision::I8, PROBES);
    // I8 carries ~8x the rounding error of I16; it is gated at a bound
    // that admits small rank churn but rejects a broken quantizer.
    for (name, (e, q)) in ["mrr", "hits@1", "hits@3", "hits@10"]
        .iter()
        .zip(exact.iter().zip(quant.iter()))
    {
        assert!(
            (e - q).abs() <= 5e-2,
            "{name}: exact {e} vs i8 {q} differ by {}",
            (e - q).abs()
        );
    }
}

#[test]
fn f32_trig_path_is_bit_identical_to_score_all() {
    let (graph, model) = trained_deployment();
    let trig = model.entity_trig_with(Precision::F32);
    let mut via_trig = Vec::new();
    for t in &graph.triples()[..16] {
        let query = Query::atom(t.h, t.r);
        model.score_all_with(&trig, &query, &mut via_trig);
        assert_eq!(
            via_trig,
            model.score_all(&query),
            "exact path must not drift"
        );
    }
}

#[test]
fn sharded_quantized_top_k_matches_unsharded_quantized_ranking() {
    // Sharding and quantization must compose: the merged sharded selection
    // under I16 equals the full-vector I16 ranking (sharding is invariant
    // to the trig storage format).
    let (graph, model) = trained_deployment();
    let pool = halk_par::Pool::new(2);
    let sharded = model.entity_shards_with(4, Precision::I16);
    let trig = model.entity_trig_with(Precision::I16);
    let mut scores = Vec::new();
    for t in &graph.triples()[..8] {
        let query = Query::atom(t.h, t.r);
        let (hits, scored) =
            model.top_k_sharded(&pool, &sharded, &query, 10, &halk_obs::Deadline::never());
        assert_eq!(scored, graph.n_entities());
        model.score_all_with(&trig, &query, &mut scores);
        let want = halk_core::top_k_indices(&scores, 10);
        let got: Vec<u32> = hits.iter().map(|&(e, _)| e).collect();
        assert_eq!(got, want);
        for &(e, s) in &hits {
            assert_eq!(s, scores[e as usize], "merged scores are the shard scores");
        }
    }
}
