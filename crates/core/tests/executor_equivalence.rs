//! Cross-surface bit-identity suite for the skeleton-keyed batch executor
//! (PR 9, DESIGN.md §15): routing train, eval, and the serve-style group
//! reduce through [`Executor::submit`] must change *nothing observable* —
//! train losses and parameters, eval metrics, and served top-k answers are
//! pinned against hand-rolled pre-refactor reference loops, across thread
//! counts and shard counts.
//!
//! The cache-layer regression tests pin the PR's dedupe satellite: one
//! executor shared across structures builds the model's scoring tables
//! once per parameter state, never once per structure.

use halk_core::{
    evaluate_structure_exec, evaluate_structure_pool, sharded_top_k, top_k_indices, EvalCell,
    ExecBackend, ExecConfig, Executor, HalkConfig, HalkModel, Pool, QueryModel, ShapeKey,
    TrainExample,
};
use halk_kg::{generate, DatasetSplit, Graph, SynthConfig};
use halk_logic::plan::{split_set, PlanBindings, PlanShape};
use halk_logic::{filtered_ranks, MetricsAccumulator, Query, Sampler, Structure};
use halk_nn::checkpoint;
use halk_obs::Deadline;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The executor's cache counters are process-global; tests that assert on
/// their deltas (or tick them) serialize here so a concurrently running
/// test can't skew the arithmetic.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

fn graph() -> Graph {
    generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(77))
}

// ---------------------------------------------------------------- train

/// Fixed mixed-structure batches with sizes straddling the shard size.
fn fixed_batches(g: &Graph) -> Vec<Vec<TrainExample>> {
    let sampler = Sampler::new(g);
    let mut rng = StdRng::seed_from_u64(78);
    [(Structure::P1, 6), (Structure::P2, 9), (Structure::In2, 17)]
        .into_iter()
        .map(|(s, n)| {
            sampler
                .sample_many(s, n, &mut rng)
                .into_iter()
                .map(|gq| {
                    let ans = halk_logic::answers(&gq.query, g);
                    let positive = ans.iter().next().expect("non-empty");
                    let negatives = sampler.negatives(&ans, 4, &mut rng);
                    TrainExample {
                        query: gq.query,
                        positive,
                        negatives,
                    }
                })
                .collect()
        })
        .collect()
}

fn train_run(g: &Graph, threads: usize) -> (Vec<u32>, Vec<u8>) {
    let mut model = HalkModel::new(g, HalkConfig::tiny());
    model.set_threads(threads);
    let batches = fixed_batches(g);
    let mut losses = Vec::new();
    for _ in 0..2 {
        for batch in &batches {
            losses.push(model.train_batch(batch).to_bits());
        }
    }
    (losses, checkpoint::to_bytes(&model.store))
}

/// Training now stages gradients through `Executor::submit` (one
/// homogeneous group per batch); losses and final parameters must stay
/// bit-identical at every thread count, exactly as before the refactor.
#[test]
fn train_through_executor_is_bit_identical_across_threads() {
    let g = graph();
    let (ref_losses, ref_params) = train_run(&g, 1);
    assert!(ref_losses.iter().all(|&b| f32::from_bits(b).is_finite()));
    for threads in &THREADS[1..] {
        let (losses, params) = train_run(&g, *threads);
        assert_eq!(losses, ref_losses, "losses diverged at {threads} threads");
        assert_eq!(params, ref_params, "params diverged at {threads} threads");
    }
}

// ----------------------------------------------------------------- eval

/// The pre-refactor evaluation loop, hand-rolled: sample sequentially,
/// answer-split, score, fold ranks — one query at a time, no executor, no
/// chunking, no cache layer. This is the semantic contract
/// `evaluate_structure_pool` has promised since PR 3.
fn sequential_reference(
    model: &HalkModel,
    split: &DatasetSplit,
    structure: Structure,
    n_queries: usize,
    seed: u64,
) -> (Vec<u64>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = Sampler::new(&split.test);
    let mut acc = MetricsAccumulator::new();
    let mut evaluated = 0usize;
    let mut attempts = 0usize;
    while evaluated < n_queries && attempts < n_queries * 20 {
        attempts += 1;
        let Some(gq) = sampler.sample(structure, &mut rng) else {
            continue;
        };
        let shape = PlanShape::compile(&gq.query);
        let ans = split_set(
            &shape,
            &PlanBindings::of(&gq.query),
            &split.valid,
            &split.test,
        );
        if ans.hard.is_empty() {
            continue;
        }
        let scores = model.score_all(&gq.query);
        acc.push_ranks(&filtered_ranks(&scores, &ans.hard, &ans.easy));
        evaluated += 1;
    }
    let m = acc.finish();
    (
        vec![
            m.mrr.to_bits(),
            m.hits1.to_bits(),
            m.hits3.to_bits(),
            m.hits10.to_bits(),
        ],
        evaluated,
    )
}

fn metric_bits(cell: &EvalCell) -> Vec<u64> {
    vec![
        cell.metrics.mrr.to_bits(),
        cell.metrics.hits1.to_bits(),
        cell.metrics.hits3.to_bits(),
        cell.metrics.hits10.to_bits(),
    ]
}

/// Eval through the executor (speculative chunks, skeleton groups, shared
/// scoring cache) must reproduce the hand-rolled sequential loop bit for
/// bit, at every thread count.
#[test]
fn eval_through_executor_matches_handrolled_sequential_reference() {
    let _serial = OBS_SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(79);
    let full = graph();
    let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
    let model = HalkModel::new(&split.train, HalkConfig::tiny());

    for s in [Structure::P1, Structure::P2, Structure::Up] {
        let (want_bits, want_n) = sequential_reference(&model, &split, s, 6, 11);
        assert!(want_n > 0, "{s}: reference evaluated nothing");
        for threads in THREADS {
            let cell = evaluate_structure_pool(&model, &split, s, 6, 11, Pool::new(threads));
            assert_eq!(cell.n_queries, want_n, "{s}@{threads}: query count");
            assert_eq!(
                metric_bits(&cell),
                want_bits,
                "{s}@{threads}: metrics drifted from the pre-refactor loop"
            );
        }
    }
}

// ---------------------------------------------------------- serve-style

/// The serve surface in miniature: group jobs by skeleton, one batched
/// tape embed per group, one sharded streaming sweep for the whole group.
struct TopKBackend<'a> {
    model: &'a HalkModel,
    k: usize,
}

impl ExecBackend for TopKBackend<'_> {
    type Job = Query;
    type Out = Vec<u32>;

    fn key_of(&self, exec: &Executor, job: &Query) -> Option<ShapeKey> {
        Some(ShapeKey::new(exec.shape_for(job)))
    }

    fn exec_group(
        &self,
        exec: &Executor,
        key: Option<&ShapeKey>,
        jobs: &[&Query],
    ) -> Vec<Vec<u32>> {
        let shape = key.expect("queries always carry a shape").shape();
        let sharded = exec.sharded_trig(self.model);
        let queries: Vec<&Query> = jobs.to_vec();
        let scorers = exec.scorers_for_group(self.model, shape, &queries);
        let ks = vec![self.k; jobs.len()];
        let never = Deadline::never();
        let deadlines: Vec<&Deadline> = jobs.iter().map(|_| &never).collect();
        sharded_top_k(&exec.pool(), &sharded, &scorers, &ks, &deadlines)
            .into_iter()
            .map(|(hits, _)| hits.into_iter().map(|(e, _)| e).collect())
            .collect()
    }
}

/// Mixed-structure submissions must come back in submission order, each
/// answer bit-identical to the one-shot `score_all` + `top_k_indices`
/// reference — at 1 and 4 shards, 1 and 4 threads.
#[test]
fn serve_style_group_submit_matches_per_query_reference() {
    let _serial = OBS_SERIAL.lock().unwrap();
    let g = graph();
    let model = HalkModel::new(&g, HalkConfig::tiny());
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(80);
    // Interleave two skeletons so submit must group and re-scatter.
    let p2: Vec<Query> = sampler
        .sample_many(Structure::P2, 3, &mut rng)
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    let p1: Vec<Query> = sampler
        .sample_many(Structure::P1, 3, &mut rng)
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    let jobs: Vec<Query> = p2
        .iter()
        .zip(&p1)
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    let k = 10;
    let reference: Vec<Vec<u32>> = jobs
        .iter()
        .map(|q| top_k_indices(&model.score_all(q), k))
        .collect();

    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let exec = Executor::new(ExecConfig {
                threads,
                shards,
                ..ExecConfig::default()
            });
            let backend = TopKBackend { model: &model, k };
            let got = exec.submit(&backend, &jobs);
            assert_eq!(
                got, reference,
                "group submit diverged at {shards} shards, {threads} threads"
            );
        }
    }
}

// ---------------------------------------------------------- cache layer

/// The dedupe satellite's regression test: one executor shared across
/// structures (as `evaluate_table_pool` shares it across a row) builds the
/// model's scoring table exactly once; the second structure is a cache
/// hit, not a rebuild.
#[test]
fn shared_executor_builds_score_cache_once_across_structures() {
    let _serial = OBS_SERIAL.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(81);
    let full = graph();
    let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
    let model = HalkModel::new(&split.train, HalkConfig::tiny());

    let exec = Executor::new(ExecConfig {
        threads: 1,
        label: "eval_score",
        ..ExecConfig::default()
    });
    let builds0 = halk_obs::counter!("halk_exec_cache_builds_total").get();
    let a = evaluate_structure_exec(&model, &split, Structure::P1, 4, 13, &exec);
    let b = evaluate_structure_exec(&model, &split, Structure::P2, 4, 13, &exec);
    assert!(a.n_queries > 0 && b.n_queries > 0);
    let builds = halk_obs::counter!("halk_exec_cache_builds_total").get() - builds0;
    assert_eq!(
        builds, 1,
        "two structures through one executor must build the scoring table once"
    );
    // And the shared product really is one allocation.
    let c1 = exec.score_cache(&model).expect("halk has a score cache");
    let c2 = exec.score_cache(&model).expect("halk has a score cache");
    assert!(std::sync::Arc::ptr_eq(&c1, &c2));
}

/// A parameter step between submissions invalidates the cache: stale
/// tables are never served, fresh ones are built exactly once.
#[test]
fn cache_rolls_over_when_parameters_step() {
    let _serial = OBS_SERIAL.lock().unwrap();
    let g = graph();
    let mut model = HalkModel::new(&g, HalkConfig::tiny());
    let exec = Executor::new(ExecConfig {
        threads: 1,
        ..ExecConfig::default()
    });
    let before = exec.score_cache(&model).expect("built");
    let again = exec.score_cache(&model).expect("cached");
    assert!(std::sync::Arc::ptr_eq(&before, &again));

    let batch = fixed_batches(&g).remove(0);
    model.train_batch(&batch);
    let after = exec.score_cache(&model).expect("rebuilt");
    assert!(
        !std::sync::Arc::ptr_eq(&before, &after),
        "a training step must invalidate the executor's scoring cache"
    );
}
