//! Determinism suite for the parallel runtime (PR 3): thread count is a
//! scheduling knob, never a semantic one. Training losses and parameters,
//! evaluation metrics, and sharded scoring must be *bit-identical* at every
//! thread count — guaranteed by fixed shard plans (batch-size-derived, not
//! thread-derived), per-shard gradient staging reduced in shard order, and
//! in-order acceptance of speculatively scored eval candidates
//! (DESIGN.md §9).

use halk_core::{
    evaluate_structure_pool, evaluate_table_pool, HalkConfig, HalkModel, Pool, QueryModel,
    TrainExample,
};
use halk_kg::{generate, DatasetSplit, Graph, SynthConfig};
use halk_logic::{answers, Sampler, Structure};
use halk_nn::checkpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn graph() -> Graph {
    generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(21))
}

/// Fixed training batches: mixed structures, batch sizes straddling the
/// shard size (under, exact, over, multi-shard-with-ragged-tail).
fn fixed_batches(g: &Graph) -> Vec<Vec<TrainExample>> {
    let sampler = Sampler::new(g);
    let mut rng = StdRng::seed_from_u64(31);
    [
        (Structure::P1, 5),
        (Structure::P2, 8),
        (Structure::Pi, 13),
        (Structure::In2, 19),
    ]
    .into_iter()
    .map(|(s, n)| {
        sampler
            .sample_many(s, n, &mut rng)
            .into_iter()
            .map(|gq| {
                let ans = answers(&gq.query, g);
                let positive = ans.iter().next().expect("non-empty");
                let negatives = sampler.negatives(&ans, 4, &mut rng);
                TrainExample {
                    query: gq.query,
                    positive,
                    negatives,
                }
            })
            .collect()
    })
    .collect()
}

/// Runs a few epochs over the fixed batches at one thread count; returns
/// the loss trajectory (as bits) and the final parameter bytes.
fn train_run(g: &Graph, threads: usize) -> (Vec<u32>, Vec<u8>) {
    let mut model = HalkModel::new(g, HalkConfig::tiny());
    model.set_threads(threads);
    let batches = fixed_batches(g);
    let mut losses = Vec::new();
    for _ in 0..3 {
        for batch in &batches {
            losses.push(model.train_batch(batch).to_bits());
        }
    }
    (losses, checkpoint::to_bytes(&model.store))
}

#[test]
fn training_is_bit_identical_at_any_thread_count() {
    let g = graph();
    let (ref_losses, ref_params) = train_run(&g, 1);
    assert!(ref_losses.iter().all(|&b| f32::from_bits(b).is_finite()));
    for threads in &THREADS[1..] {
        let (losses, params) = train_run(&g, *threads);
        assert_eq!(
            losses, ref_losses,
            "loss trajectory diverged at {threads} threads"
        );
        assert_eq!(
            params, ref_params,
            "final parameters diverged at {threads} threads"
        );
    }
}

#[test]
fn evaluation_is_bit_identical_at_any_thread_count() {
    let mut rng = StdRng::seed_from_u64(41);
    let full = graph();
    let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
    let model = HalkModel::new(&split.train, HalkConfig::tiny());

    for s in [Structure::P1, Structure::P2, Structure::Up] {
        let reference = evaluate_structure_pool(&model, &split, s, 6, 5, Pool::new(1));
        assert!(reference.n_queries > 0, "{s}: nothing evaluated");
        for threads in &THREADS[1..] {
            let cell = evaluate_structure_pool(&model, &split, s, 6, 5, Pool::new(*threads));
            assert_eq!(cell.n_queries, reference.n_queries, "{s}@{threads}");
            assert_eq!(cell.truncated, reference.truncated, "{s}@{threads}");
            for (name, got, want) in [
                ("mrr", cell.metrics.mrr, reference.metrics.mrr),
                ("hits1", cell.metrics.hits1, reference.metrics.hits1),
                ("hits3", cell.metrics.hits3, reference.metrics.hits3),
                ("hits10", cell.metrics.hits10, reference.metrics.hits10),
            ] {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{s}@{threads} threads: {name} drifted"
                );
            }
        }
    }
}

#[test]
fn table_rows_match_per_structure_cells() {
    let mut rng = StdRng::seed_from_u64(43);
    let full = graph();
    let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
    let model = HalkModel::new(&split.train, HalkConfig::tiny());
    let structures = [Structure::P1, Structure::P2];

    let row = evaluate_table_pool(&model, &split, &structures, 4, 9, Pool::new(4));
    for (s, cell) in &row {
        let cell = cell.expect("HaLk supports everything");
        let solo = evaluate_structure_pool(&model, &split, *s, 4, 9, Pool::new(1));
        assert_eq!(cell.n_queries, solo.n_queries, "{s}");
        assert_eq!(
            cell.metrics.mrr.to_bits(),
            solo.metrics.mrr.to_bits(),
            "{s}"
        );
    }
}

#[test]
fn sharded_scoring_is_bit_identical_to_sequential() {
    let g = graph();
    let model = HalkModel::new(&g, HalkConfig::tiny());
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(53);
    let trig = model.entity_trig();
    let mut seq = Vec::new();
    let mut par = Vec::new();
    for s in [Structure::P1, Structure::Up, Structure::In2] {
        let gq = sampler.sample(s, &mut rng).expect("groundable");
        model.score_all_with(&trig, &gq.query, &mut seq);
        for threads in THREADS {
            model.score_all_with_par(Pool::new(threads), &trig, &gq.query, &mut par);
            let seq_bits: Vec<u32> = seq.iter().map(|x| x.to_bits()).collect();
            let par_bits: Vec<u32> = par.iter().map(|x| x.to_bits()).collect();
            assert_eq!(par_bits, seq_bits, "{s}@{threads} threads");
        }
    }
}

#[test]
fn truncation_is_reported_when_the_attempt_budget_exhausts() {
    // A structure that cannot yield hard answers on this split: evaluate
    // against a model over a graph where sampling always produces queries
    // fully answered on the validation graph is hard to force directly, so
    // instead exhaust the budget with n_queries larger than the pool of
    // valid test queries of a rare structure.
    let mut rng = StdRng::seed_from_u64(61);
    // Tiny graph -> few groundable difference queries with hard answers.
    let full = generate(&SynthConfig::fb237_like(), &mut rng);
    let split = DatasetSplit::nested(&full, 0.98, 0.01, &mut rng);
    let model = HalkModel::new(&split.train, HalkConfig::tiny());
    let cell = evaluate_structure_pool(&model, &split, Structure::D3, 500, 3, Pool::new(2));
    // Either the budget ran out (truncated set, flag raised) or the split
    // really had 500 valid queries (flag clear) — the invariant is that the
    // flag agrees with the count.
    assert_eq!(cell.truncated, cell.n_queries < 500);
    let seq = evaluate_structure_pool(&model, &split, Structure::D3, 500, 3, Pool::new(1));
    assert_eq!(cell.n_queries, seq.n_queries);
    assert_eq!(cell.truncated, seq.truncated);
    assert_eq!(cell.metrics.mrr.to_bits(), seq.metrics.mrr.to_bits());
}
