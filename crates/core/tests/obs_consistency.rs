//! Cross-checks between the observability layer and the values the public
//! API reports: the metrics registry must agree with `TrainStats`,
//! `EvalCell` and `PlanCache` rather than drift into telling a different
//! story.
//!
//! Metrics are process-global counters, so every test serializes on one
//! mutex and asserts on before/after deltas.

use halk_core::eval::evaluate_structure;
use halk_core::{train_model, HalkConfig, HalkModel, QueryModel, TrainConfig, TrainExample};
use halk_kg::split::DatasetSplit;
use halk_kg::{generate, SynthConfig};
use halk_logic::plan::{PlanBindings, PlanCache};
use halk_logic::{Query, Sampler, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn metrics_lock() -> MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn counter(name: &'static str) -> u64 {
    halk_obs::metrics::counter(name).get()
}

/// Delegates to HaLk but returns a NaN loss at one scripted step, forcing
/// the divergence guard to roll back exactly once.
struct NanAt {
    inner: HalkModel,
    calls: usize,
    poison_at: usize,
}

impl QueryModel for NanAt {
    fn name(&self) -> &'static str {
        "NanAt"
    }
    fn supports(&self, s: Structure) -> bool {
        self.inner.supports(s)
    }
    fn train_batch(&mut self, batch: &[TrainExample]) -> f32 {
        let loss = self.inner.train_batch(batch);
        self.calls += 1;
        if self.calls == self.poison_at {
            return f32::NAN;
        }
        loss
    }
    fn score_all(&self, query: &Query) -> Vec<f32> {
        QueryModel::score_all(&self.inner, query)
    }
    fn n_entities(&self) -> usize {
        QueryModel::n_entities(&self.inner)
    }
}

#[test]
fn train_stats_rollbacks_match_counter() {
    let _guard = metrics_lock();
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(91));
    let mut model = NanAt {
        inner: HalkModel::new(&g, HalkConfig::tiny()),
        calls: 0,
        poison_at: 7,
    };
    let tc = TrainConfig {
        steps: 15,
        log_every: 0,
        ..TrainConfig::tiny()
    };
    let steps_before = counter("halk_train_steps_total");
    let rollbacks_before = counter("halk_train_rollbacks_total");
    let stats = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap();
    assert_eq!(stats.rollbacks, 1);
    assert_eq!(
        counter("halk_train_rollbacks_total") - rollbacks_before,
        stats.rollbacks as u64,
        "rollback counter must match TrainStats::rollbacks"
    );
    // Every step ran a batch (1p pools are never empty on this graph), so
    // the step counter advanced by exactly the configured step count.
    assert_eq!(counter("halk_train_steps_total") - steps_before, 15);
}

#[test]
fn eval_truncation_flag_matches_counter() {
    let _guard = metrics_lock();
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(92));
    // test == valid: every hard-answer set is empty, so no query is ever
    // accepted and the attempt budget must run out.
    let split = DatasetSplit {
        train: g.clone(),
        valid: g.clone(),
        test: g.clone(),
    };
    let model = HalkModel::new(&g, HalkConfig::tiny());
    let truncated_before = counter("halk_eval_truncated_total");
    let queries_before = counter("halk_eval_queries_total");
    let attempts_before = counter("halk_eval_attempts_total");
    let cell = evaluate_structure(&model, &split, Structure::P2, 4, 93);
    assert!(cell.truncated, "empty hard answers must truncate");
    assert_eq!(counter("halk_eval_truncated_total") - truncated_before, 1);
    assert_eq!(
        counter("halk_eval_queries_total") - queries_before,
        cell.n_queries as u64,
        "query counter must match EvalCell::n_queries"
    );
    assert!(
        counter("halk_eval_attempts_total") - attempts_before >= 4 * 20,
        "a truncated cell must have burned the whole attempt budget"
    );
}

#[test]
fn plan_cache_hits_and_misses_match_len_delta() {
    let _guard = metrics_lock();
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(94));
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(95);
    let mut queries = Vec::new();
    for s in [Structure::P1, Structure::P2, Structure::I2] {
        for q in sampler.sample_many(s, 3, &mut rng) {
            queries.push(q.query);
        }
    }
    assert!(queries.len() > 3, "sampler produced too few queries");

    let cache = PlanCache::new();
    let hits_before = counter("halk_plan_cache_hits_total");
    let misses_before = counter("halk_plan_cache_misses_total");
    for q in &queries {
        let shape = cache.shape_for(q);
        // The compiled shape answers the query it was compiled from.
        let _ = halk_logic::plan::execute_set(&shape, &PlanBindings::of(q), &g);
    }
    let hits = counter("halk_plan_cache_hits_total") - hits_before;
    let misses = counter("halk_plan_cache_misses_total") - misses_before;
    assert_eq!(
        misses as usize,
        cache.len(),
        "every miss compiles exactly one cached shape"
    );
    assert_eq!(
        (hits + misses) as usize,
        queries.len(),
        "every lookup is either a hit or a miss"
    );
    assert!(hits > 0, "repeated structures must hit the cache");
}
