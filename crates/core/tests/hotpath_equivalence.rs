//! Hot-path equivalence suite (PR 2): the vectorized `ArcScorer` kernel and
//! the pooled training tape are *optimizations*, not semantic changes. This
//! file pins that down three ways:
//!
//! 1. proptest: `score_all` (vectorized) agrees with `score_all_scalar`
//!    (the retained per-entity reference) to 1e-4 across all three
//!    `DistanceMode`s and multi-branch union/negation/difference queries;
//! 2. bit-for-bit: pooled-tape training reproduces the loss trajectory and
//!    final parameters of fresh-tape training exactly at a fixed seed;
//! 3. metrics: filtered-ranking MRR/Hit@K per structure are identical under
//!    either scoring path at a fixed seed.

use halk_core::{DistanceMode, HalkConfig, HalkModel, QueryModel, TrainExample};
use halk_kg::{generate, Graph, SynthConfig};
use halk_logic::{answers, filtered_ranks, MetricsAccumulator, Sampler, Structure};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Structures covering every operator family and the multi-branch DNF path
/// (union expands to two branches; difference/negation rewrite internally).
const STRUCTURES: [Structure; 6] = [
    Structure::P1,
    Structure::P2,
    Structure::Pi,
    Structure::Up,
    Structure::In2,
    Structure::D2,
];

struct Setup {
    graph: Graph,
    /// One untrained model per distance mode (untrained embeddings are the
    /// adversarial case for equivalence: arcs land anywhere).
    models: Vec<(DistanceMode, HalkModel)>,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let graph = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(11));
        let models = [
            DistanceMode::LiteralEq16,
            DistanceMode::CenterAnchored,
            DistanceMode::ZeroedInside,
        ]
        .into_iter()
        .map(|mode| {
            let cfg = HalkConfig::tiny().with_distance(mode);
            (mode, HalkModel::new(&graph, cfg))
        })
        .collect();
        Setup { graph, models }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vectorized_scoring_matches_scalar_reference(
        mode_idx in 0usize..3,
        s_idx in 0usize..STRUCTURES.len(),
        seed in 0u64..500,
    ) {
        let setup = setup();
        let (mode, model) = &setup.models[mode_idx];
        let structure = STRUCTURES[s_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(gq) = Sampler::new(&setup.graph).sample(structure, &mut rng) else {
            // Not every structure grounds at every seed; skip, don't fail.
            return Ok(());
        };
        let fast = model.score_all(&gq.query);
        let slow = model.score_all_scalar(&gq.query);
        prop_assert_eq!(fast.len(), slow.len());
        for (i, (&f, &s)) in fast.iter().zip(&slow).enumerate() {
            if f.is_finite() || s.is_finite() {
                prop_assert!(
                    (f - s).abs() < 1e-4,
                    "mode {:?} {} entity {}: vectorized {} vs scalar {}",
                    mode, structure.name(), i, f, s
                );
            }
        }
    }
}

/// Builds one training batch per step, shared by both models under test.
fn fixed_batches(graph: &Graph, steps: usize) -> Vec<Vec<TrainExample>> {
    let sampler = Sampler::new(graph);
    let mut rng = StdRng::seed_from_u64(77);
    (0..steps)
        .map(|_| {
            sampler
                .sample_many(Structure::Pi, 8, &mut rng)
                .into_iter()
                .map(|gq| {
                    let ans = answers(&gq.query, graph);
                    let positive = ans.iter().next().expect("non-empty");
                    let negatives = sampler.negatives(&ans, 4, &mut rng);
                    TrainExample {
                        positive,
                        negatives,
                        query: gq.query,
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn pooled_training_is_bit_identical_to_fresh_tapes() {
    let graph = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(11));
    let cfg = HalkConfig::tiny();
    let mut pooled = HalkModel::new(&graph, cfg.clone());
    let mut fresh = HalkModel::new(&graph, cfg);
    let batches = fixed_batches(&graph, 6);
    for (step, batch) in batches.iter().enumerate() {
        let loss_pooled = pooled.train_batch(batch);
        // Dropping the tape before every step forces fresh allocations —
        // the pre-pooling behavior.
        fresh.reset_train_tape();
        let loss_fresh = fresh.train_batch(batch);
        assert_eq!(
            loss_pooled.to_bits(),
            loss_fresh.to_bits(),
            "loss diverged at step {step}: {loss_pooled} vs {loss_fresh}"
        );
    }
    // Parameters, not just losses: the entity table must match exactly.
    assert_eq!(pooled.entity_table().data, fresh.entity_table().data);
}

#[test]
fn filtered_ranking_metrics_identical_under_either_scorer() {
    let setup = setup();
    let sampler = Sampler::new(&setup.graph);
    for (mode, model) in &setup.models {
        for structure in [Structure::P1, Structure::Pi, Structure::Up] {
            let mut rng = StdRng::seed_from_u64(99);
            let mut acc_fast = MetricsAccumulator::new();
            let mut acc_slow = MetricsAccumulator::new();
            let mut evaluated = 0;
            while evaluated < 5 {
                let Some(gq) = sampler.sample(structure, &mut rng) else {
                    continue;
                };
                let ans = answers(&gq.query, &setup.graph);
                let hard: Vec<_> = ans.iter().collect();
                acc_fast.push_ranks(&filtered_ranks(&model.score_all(&gq.query), &hard, &[]));
                acc_slow.push_ranks(&filtered_ranks(
                    &model.score_all_scalar(&gq.query),
                    &hard,
                    &[],
                ));
                evaluated += 1;
            }
            let (fast, slow) = (acc_fast.finish(), acc_slow.finish());
            assert_eq!(
                (fast.mrr, fast.hits1, fast.hits3, fast.hits10),
                (slow.mrr, slow.hits1, slow.hits3, slow.hits10),
                "metrics diverged for mode {mode:?} structure {}",
                structure.name()
            );
        }
    }
}
