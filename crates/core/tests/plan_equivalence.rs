//! Plan-vs-AST bit-identity for HaLk (PR 4): the compiled query plan is an
//! execution strategy, not a semantic change. Arc embeddings, entity
//! scores, group masks and the training loss must be *bitwise* identical
//! to the retained recursive reference (`model::reference`) on every named
//! structure.

use halk_core::loss::margin_loss;
use halk_core::{ArcScorer, HalkConfig, HalkModel, QueryModel, TrainExample};
use halk_kg::{generate, EntityId, Graph, Grouping, SynthConfig};
use halk_logic::{answers, Query, Sampler, Structure};
use halk_nn::{Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, HalkModel) {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(19));
    let model = HalkModel::new(&g, HalkConfig::tiny());
    (g, model)
}

fn examples(g: &Graph, s: Structure, n: usize, seed: u64) -> Vec<TrainExample> {
    let sampler = Sampler::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    sampler
        .sample_many(s, n, &mut rng)
        .into_iter()
        .map(|gq| {
            let ans = answers(&gq.query, g);
            let positive = ans.iter().next().expect("non-empty");
            let negatives = sampler.negatives(&ans, 4, &mut rng);
            TrainExample {
                query: gq.query,
                positive,
                negatives,
            }
        })
        .collect()
}

/// Untrained embeddings are the adversarial case (arcs land anywhere), so
/// a fresh model plus every one of the 24 structures covers the full
/// operator surface, union branching included.
#[test]
fn embed_query_matches_ast_on_every_structure() {
    let (g, model) = setup();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(3);
    for s in Structure::all() {
        for gq in sampler.sample_many(s, 3, &mut rng) {
            assert_eq!(
                model.embed_query(&gq.query),
                model.embed_query_ast(&gq.query),
                "{s}: {}",
                gq.query.render()
            );
        }
    }
}

/// The online scoring path (compiled plan → `ArcScorer`) produces the same
/// bits as a scorer built from the AST-walked branches, hence identical
/// filtered ranks.
#[test]
fn scores_match_ast_on_every_structure() {
    let (g, model) = setup();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(5);
    let trig = model.entity_trig();
    for s in Structure::all() {
        for gq in sampler.sample_many(s, 2, &mut rng) {
            let got = model.score_all(&gq.query);
            let branches = model.embed_query_ast(&gq.query);
            let want =
                ArcScorer::from_arcs(&branches, model.cfg.rho, model.cfg.eta, model.cfg.distance)
                    .score_all(&trig);
            assert_eq!(got.len(), want.len());
            for (e, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{s}: entity {e}");
            }
        }
    }
}

/// The plan's precomputed root mask is the recursive group mask h_{U_q}
/// (§II-A) of the original query.
#[test]
fn plan_root_mask_matches_ast_group_mask() {
    let (g, model) = setup();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(7);
    for s in Structure::all() {
        for gq in sampler.sample_many(s, 3, &mut rng) {
            let shape = model.plan_cache().shape_for(&gq.query);
            let (_, masks) = model.bind(&shape, &gq.query);
            assert_eq!(masks.root, model.group_mask_ast(&gq.query), "{s}");
        }
    }
}

/// The one-shard training forward rebuilt on the recursive embedder: same
/// batched AST walk, same distance columns, same Eq. 17 group penalties,
/// same margin loss — the pre-plan `train_batch` in miniature.
fn reference_loss(model: &HalkModel, batch: &[TrainExample]) -> f32 {
    let cfg = &model.cfg;
    let m = batch
        .iter()
        .map(|ex| ex.negatives.len())
        .min()
        .expect("nonempty batch");
    let mut tape = Tape::new();
    let queries: Vec<&Query> = batch.iter().map(|ex| &ex.query).collect();
    let arc = model.embed_batch_ast(&mut tape, &queries);
    let pen = |ids: &[u32]| -> Tensor {
        let data = ids
            .iter()
            .zip(batch)
            .map(|(&e, ex)| {
                cfg.xi
                    * Grouping::relu_l1(
                        model.grouping().mask_of(EntityId(e)),
                        model.group_mask_ast(&ex.query),
                    ) as f32
            })
            .collect();
        Tensor::from_vec(ids.len(), 1, data)
    };
    let pos_ids: Vec<u32> = batch.iter().map(|ex| ex.positive.0).collect();
    let pos_pen = pen(&pos_ids);
    let pos_points = model.entity_points(&mut tape, &pos_ids);
    let d_pos = model.distance_batch(&mut tape, arc, pos_points);
    let pos_pen_var = tape.input(pos_pen);
    let mut d_negs = Vec::with_capacity(m);
    let mut neg_pens = Vec::with_capacity(m);
    for j in 0..m {
        let ids: Vec<u32> = batch.iter().map(|ex| ex.negatives[j].0).collect();
        let neg_pen = pen(&ids);
        let points = model.entity_points(&mut tape, &ids);
        d_negs.push(model.distance_batch(&mut tape, arc, points));
        neg_pens.push(tape.input(neg_pen));
    }
    let loss = margin_loss(
        &mut tape,
        d_pos,
        Some(pos_pen_var),
        &d_negs,
        Some(&neg_pens),
        cfg.gamma,
    );
    // train_batch scales each shard's mean by its batch share — exactly 1.0
    // for a single-shard batch — before reading it back.
    let scaled = tape.scale(loss, 1.0);
    tape.value(scaled).item()
}

/// For every training structure: the loss `train_batch` reports on the
/// compiled plan equals the recursive reference bit for bit. The batch fits
/// one training shard so the reference needs no shard reduction.
#[test]
fn first_train_loss_matches_ast_reference() {
    let (g, mut model) = setup();
    for (i, s) in Structure::training().into_iter().enumerate() {
        let batch = examples(&g, s, 8, 40 + i as u64);
        let want = reference_loss(&model, &batch);
        let got = model.train_batch(&batch);
        assert_eq!(got.to_bits(), want.to_bits(), "{s}: {got} vs {want}");
    }
}
