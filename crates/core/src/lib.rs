//! HaLk — a holistic approach for answering logical queries on knowledge
//! graphs (Wu, Xu, Lin, Zhang — ICDE 2023), reproduced in Rust.
//!
//! This crate is the paper's primary contribution: entities embedded as
//! points on a circle, queries as arc segments, and **all five**
//! first-order-logic operators — projection, intersection, difference,
//! negation and union — supported in one end-to-end trainable framework
//! ([`model::HalkModel`]).
//!
//! The surrounding machinery is model-agnostic so the baselines plug into
//! the same harness: the [`qmodel::QueryModel`] trait, the Algorithm-1
//! [`train`] loop, the filtered-ranking [`eval`] protocol, and the
//! [`prune`] module that feeds top-k candidate sets to subgraph matchers
//! (§IV-D).
//!
//! ```
//! use halk_core::{HalkConfig, HalkModel};
//! use halk_core::train::{train_model, TrainConfig};
//! use halk_core::qmodel::QueryModel;
//! use halk_kg::{generate, SynthConfig};
//! use halk_logic::Structure;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let graph = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(1));
//! let mut model = HalkModel::new(&graph, HalkConfig::tiny());
//! train_model(&mut model, &graph, &[Structure::P1], &TrainConfig::tiny()).unwrap();
//! let scores = model.score_all(&halk_logic::Query::atom(
//!     graph.triples()[0].h,
//!     graph.triples()[0].r,
//! ));
//! assert_eq!(scores.len(), graph.n_entities());
//! ```

pub mod arcvar;
pub mod config;
pub mod eval;
pub mod exec;
pub mod loss;
pub mod lsh;
pub mod model;
pub mod obs;
pub mod prune;
pub mod qmodel;
pub mod scorer;
pub mod shard;
pub mod train;

pub use config::{Ablation, DistanceMode, HalkConfig};
pub use eval::{
    evaluate_structure, evaluate_structure_exec, evaluate_structure_pool, evaluate_table,
    evaluate_table_pool, EvalCell,
};
pub use exec::{ExecBackend, ExecConfig, Executor, ShapeKey, DEFAULT_BATCH_CAP};
pub use halk_par::Pool;
pub use lsh::EntityLsh;
pub use model::HalkModel;
pub use qmodel::{QueryModel, ScoreCache, TrainExample};
pub use scorer::{
    top_k_indices, ArcScorer, BoxScorer, EntityTrig, L1Scorer, Precision, TopK, SCORE_SLICE,
};
pub use shard::{
    sharded_top_k, sharded_top_k_tagged, sharded_top_k_timed, ArcShards, ShardedTopK, ShardedTrig,
    SweepTiming,
};
pub use train::{train_model, TrainConfig, TrainError, TrainStats};
