//! Glue between `halk-par`'s observability hooks and the `halk-obs`
//! metrics/trace backends.
//!
//! `halk-par` is dependency-free, so it exposes `fn`-pointer hooks instead
//! of linking `halk-obs` directly; this module is the one place that wires
//! them together. [`install`] is idempotent (a `Once`) and cheap, so every
//! binary that wants pool metrics calls it at startup — the CLI and the
//! experiment harness both do.
//!
//! Per labeled pool region (see [`halk_par::Pool::labeled`]) the stats
//! hook records:
//!
//! - `halk_pool_wall_us_<region>` — histogram of region wall time;
//! - `halk_pool_busy_us_<region>` — histogram of per-worker busy time
//!   (one sample per worker per region, so `sum/count` is the mean worker
//!   busy time and `sum` vs. `wall × workers` gives utilization);
//! - `halk_pool_regions_total_<region>` — counter of regions executed.
//!
//! The worker-exit hook flushes each pool worker's trace buffer before its
//! closure returns: `std::thread::scope` waits for the closure, not for
//! thread-local destructors, so without this a trace file read shortly
//! after a region could miss the tail of a worker's events.

use std::sync::Once;

/// Installs the `halk-par` → `halk-obs` observability hooks (idempotent).
pub fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        halk_par::set_stats_hook(Some(on_pool_stats));
        halk_par::set_worker_exit_hook(Some(halk_obs::trace::flush));
    });
}

fn on_pool_stats(s: &halk_par::PoolStats) {
    halk_obs::metrics::counter(&format!("halk_pool_regions_total_{}", s.region)).inc();
    halk_obs::metrics::histogram(&format!("halk_pool_wall_us_{}", s.region))
        .record(s.wall_ns / 1_000);
    let busy = halk_obs::metrics::histogram(&format!("halk_pool_busy_us_{}", s.region));
    for &ns in &s.busy_ns {
        busy.record(ns / 1_000);
    }
    // Rolling wall/busy totals feed the live per-shard busy% in `halk top`
    // (busy/wall over the window). One branch each when windowed
    // collection is disarmed; the hook fires once per region, not per row.
    if halk_obs::window::enabled() {
        halk_obs::window::counter(&format!("halk_pool_wall_us_{}", s.region))
            .add_unconditional(s.wall_ns / 1_000);
        halk_obs::window::counter(&format!("halk_pool_busy_us_{}", s.region))
            .add_unconditional(s.busy_ns.iter().map(|ns| ns / 1_000).sum());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_par::Pool;

    #[test]
    fn installed_hooks_feed_pool_metrics() {
        install();
        install(); // idempotent
        let items: Vec<u64> = (0..32).collect();
        let got = Pool::new(2)
            .labeled("core_obs_glue_test")
            .par_map_dyn(&items, |x| x + 1);
        assert_eq!(got.len(), 32);
        let regions =
            halk_obs::metrics::counter("halk_pool_regions_total_core_obs_glue_test").get();
        assert!(regions >= 1, "stats hook ran for the labeled region");
        let wall = halk_obs::metrics::histogram("halk_pool_wall_us_core_obs_glue_test");
        assert!(wall.count() >= 1);
        let busy = halk_obs::metrics::histogram("halk_pool_busy_us_core_obs_glue_test");
        assert!(busy.count() >= 2, "one busy sample per worker");
    }
}
