//! The skeleton-keyed batch executor: one group lifecycle under train,
//! eval, and serve (ROADMAP item 5).
//!
//! HaLk's pipeline is the same on every surface — compile a plan, embed
//! the skeleton batch, score entities, reduce — and before this module the
//! repo carried three hand-rolled fan-outs over those primitives:
//! `train_batch`'s fixed-8 shard loop, `evaluate_structure_pool`'s
//! speculative chunk pipeline, and `halk-serve`'s `worker_loop` group
//! drain. [`Executor`] owns what they shared:
//!
//! * **Skeleton grouping.** Jobs are keyed by [`ShapeKey`] — an
//!   `Arc<PlanShape>` compared by *pointer* identity (the same
//!   homogeneity guard `train_batch` has always used) plus a small
//!   backend-defined `lane` for sub-keys like serve's exact-vs-halk
//!   engine split. [`Executor::submit`] partitions a job list into
//!   same-key groups capped at [`Executor::batch_cap`], runs each group
//!   through the backend's reduce hook, and scatters the outputs back
//!   into submission order.
//! * **Per-structure caches.** The compiled-plan cache ([`PlanCache`],
//!   FIFO-bounded) lives here, as does the scoring-cache layer: the
//!   generic [`QueryModel::score_cache`] product (HaLk's full
//!   [`EntityTrig`] table) and the serving-side [`ShardedTrig`]
//!   shard-local tables at any [`Precision`]. Both are built at most once
//!   per parameter state (versioned by the optimizer step count) and
//!   shared via `Arc` — eval no longer rebuilds the trig table per
//!   structure, and serve's resident tables come from the same layer.
//! * **The pool.** [`Executor::pool`] is the labeled `halk-par` pool every
//!   group kernel fans out on (`par_map_mut` for training shards,
//!   `par_map_dyn` for eval scoring, `par_shards` inside
//!   [`sharded_top_k`](crate::shard::sharded_top_k) for serving sweeps).
//!   Thread count is a scheduling knob only; every backend's contract is
//!   bit-identical results at any setting.
//! * **Observability.** Every group opens an `exec_group` span and ticks
//!   `halk_exec_groups_total` / `halk_exec_jobs_total` /
//!   `halk_exec_group_size`; the cache layer ticks
//!   `halk_exec_cache_builds_total` vs `halk_exec_cache_hits_total`, which
//!   is what the eval-reuse regression test pins.
//!
//! What stays with each surface is exactly the reduce hook
//! ([`ExecBackend::exec_group`]) and the protocol around it: train stages
//! per-shard gradients and folds them in fixed shard order, eval computes
//! filtered ranks and accepts them in attempt order, serve turns merged
//! top-k heaps into protocol replies. Per-request deadlines ride inside
//! the jobs and are honored by the group kernels (slice-boundary checks in
//! the sharded sweep), so a deadline-blown request degrades alone without
//! stalling its group.

use crate::model::HalkModel;
use crate::qmodel::{QueryModel, ScoreCache};
use crate::scorer::{ArcScorer, Precision};
use crate::shard::ShardedTrig;
use halk_logic::plan::{PlanCache, PlanShape};
use halk_logic::Query;
use halk_par::Pool;
use std::sync::{Arc, Mutex};

/// Serve's default batch-drain cap: most jobs one worker groups into a
/// single same-skeleton kernel pass (`halk serve --batch-cap` overrides).
pub const DEFAULT_BATCH_CAP: usize = 16;

/// Construction parameters for an [`Executor`]. `Default` gives an
/// unbounded, auto-threaded executor labeled `"exec"` scoring at full
/// precision.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Worker threads for group kernels (0 = auto, like [`Pool::auto`]).
    pub threads: usize,
    /// Pool region label (shows up in `halk_pool_*_<label>` metrics).
    pub label: &'static str,
    /// Largest same-key group [`Executor::submit`] forms; 0 = unbounded.
    /// Serving uses [`DEFAULT_BATCH_CAP`]; train and eval run unbounded
    /// (a training batch is one group by construction).
    pub batch_cap: usize,
    /// Arc-shard count for [`Executor::sharded_trig`] (0 = the pool's
    /// thread budget at build time).
    pub shards: usize,
    /// Storage precision of the shard-local trig tables.
    pub precision: Precision,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            threads: 0,
            label: "exec",
            batch_cap: 0,
            shards: 0,
            precision: Precision::F32,
        }
    }
}

/// The skeleton-batching key: jobs group iff their shapes are the *same
/// `Arc` allocation* (compiled once, shared via the executor's
/// [`PlanCache`]) and their lanes match. The lane is a backend-defined
/// sub-key — serve uses it to keep exact and halk requests for the same
/// skeleton in separate groups.
#[derive(Debug, Clone)]
pub struct ShapeKey {
    shape: Arc<PlanShape>,
    lane: u32,
}

impl ShapeKey {
    /// A key on the default lane (0).
    pub fn new(shape: Arc<PlanShape>) -> ShapeKey {
        ShapeKey { shape, lane: 0 }
    }

    /// A key with an explicit backend-defined lane.
    pub fn with_lane(shape: Arc<PlanShape>, lane: u32) -> ShapeKey {
        ShapeKey { shape, lane }
    }

    /// The compiled shape this key points at.
    pub fn shape(&self) -> &Arc<PlanShape> {
        &self.shape
    }

    /// The backend-defined sub-key.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Same group ⇔ same shape pointer and same lane.
    pub fn same_group(&self, other: &ShapeKey) -> bool {
        self.lane == other.lane && Arc::ptr_eq(&self.shape, &other.shape)
    }
}

/// One surface of the executor: a key function and a reduce hook.
///
/// [`Executor::submit`] calls [`key_of`] once per job (in submission
/// order — key resolution may touch the plan cache, so it stays
/// sequential and deterministic), forms same-key groups, and hands each
/// group to [`exec_group`], which must return exactly one output per job
/// *in the order given*. Jobs with no key (serve's fault probes) always
/// run in a group of one.
///
/// [`key_of`]: ExecBackend::key_of
/// [`exec_group`]: ExecBackend::exec_group
pub trait ExecBackend: Sync {
    /// One unit of work (a training example index, an eval candidate
    /// query, a prepared serve request).
    type Job: Sync;
    /// Per-job result (unit for train, ranks for eval, a protocol
    /// response for serve).
    type Out: Send;

    /// The skeleton-batching key, or `None` to run the job alone.
    fn key_of(&self, exec: &Executor, job: &Self::Job) -> Option<ShapeKey>;

    /// The reduce hook: run one same-key group, returning one output per
    /// job in the given order. This is where the surfaces differ —
    /// gradient staging for train, rank folds for eval, top-k replies for
    /// serve — while the embed/score primitives come from `exec`
    /// ([`Executor::pool`], [`Executor::scorers_for_group`],
    /// [`Executor::score_cache`], [`Executor::sharded_trig`]).
    fn exec_group(
        &self,
        exec: &Executor,
        key: Option<&ShapeKey>,
        jobs: &[&Self::Job],
    ) -> Vec<Self::Out>;

    /// Optional tag for the group's `exec_group` trace span. Serve returns
    /// `req=<id>,...` plus the engine lane here so one grep of the JSONL
    /// reconstructs a request's hop chain (DESIGN.md §16); the default
    /// leaves the span detail-less, so train and eval traces are
    /// unchanged. Called only when tracing is enabled.
    fn group_detail(&self, key: Option<&ShapeKey>, jobs: &[&Self::Job]) -> Option<String> {
        let _ = (key, jobs);
        None
    }
}

/// Scoring caches for one parameter state (see [`Executor::score_cache`]).
struct CacheState {
    /// `ParamStore::steps_taken` when the caches were built; a moved
    /// version invalidates both (training between evals).
    version: u64,
    score: Option<Arc<ScoreCache>>,
    sharded: Option<Arc<ShardedTrig>>,
}

/// The skeleton-keyed batch executor (see the module docs).
///
/// `Sync` by construction: one executor is shared by reference across
/// worker threads (serve's workers, eval's table cells), with the cache
/// layer behind a mutex and the plan cache behind its own lock.
pub struct Executor {
    threads: usize,
    label: &'static str,
    batch_cap: usize,
    shards: usize,
    precision: Precision,
    plans: PlanCache,
    cache: Mutex<CacheState>,
}

impl Executor {
    /// Builds an executor from a config (see [`ExecConfig`] for knobs).
    pub fn new(cfg: ExecConfig) -> Executor {
        Executor {
            threads: cfg.threads,
            label: cfg.label,
            batch_cap: cfg.batch_cap,
            shards: cfg.shards,
            precision: cfg.precision,
            plans: PlanCache::new(),
            cache: Mutex::new(CacheState {
                version: 0,
                score: None,
                sharded: None,
            }),
        }
    }

    // ------------------------------------------------------------- pool

    /// The labeled fork-join pool group kernels fan out on.
    pub fn pool(&self) -> Pool {
        if self.threads == 0 {
            Pool::auto()
        } else {
            Pool::new(self.threads)
        }
        .labeled(self.label)
    }

    /// Sets the worker-thread count (0 = auto). A scheduling knob only:
    /// every backend contract is bit-identical results at any setting.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    // ------------------------------------------------------------ plans

    /// The executor-owned compiled-plan cache (FIFO-bounded; see
    /// `halk_logic::plan::PlanCache`).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Compiles (or returns the cached) shape for a query. The returned
    /// `Arc` is the grouping identity: same skeleton ⇒ same pointer.
    pub fn shape_for(&self, query: &Query) -> Arc<PlanShape> {
        self.plans.shape_for(query)
    }

    // --------------------------------------------------------- batching

    /// The configured group-size cap (0 = unbounded).
    pub fn batch_cap(&self) -> usize {
        self.batch_cap
    }

    /// Overrides the group-size cap (0 = unbounded).
    pub fn set_batch_cap(&mut self, cap: usize) {
        self.batch_cap = cap;
    }

    // ----------------------------------------------------------- caches

    /// The arc-shard count [`Executor::sharded_trig`] builds at (0 = the
    /// pool's thread budget).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Overrides the shard count, dropping any resident sharded tables.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
        self.invalidate();
    }

    /// The trig storage precision of the executor's sharded tables.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Overrides the precision, dropping any resident sharded tables.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
        self.invalidate();
    }

    /// Drops every resident cache (next access rebuilds).
    pub fn invalidate(&self) {
        let mut st = self.cache.lock().expect("exec cache");
        st.score = None;
        st.sharded = None;
    }

    /// The model's scoring cache for its *current* parameter state, built
    /// at most once per state and shared via `Arc`. Versioned by the
    /// optimizer step count, so a training step between evals rebuilds;
    /// across structures of one eval run the same table is reused (this
    /// is what deduplicates eval's per-structure `EntityTrig` with
    /// serve's resident tables — both come from this layer).
    pub fn score_cache<M: QueryModel + ?Sized>(&self, model: &M) -> Option<Arc<ScoreCache>> {
        let version = model.param_store().map_or(0, |s| s.steps_taken());
        let mut st = self.cache.lock().expect("exec cache");
        st.roll_to(version);
        if let Some(cache) = &st.score {
            halk_obs::counter!("halk_exec_cache_hits_total").inc();
            halk_obs::windowed_counter!("halk_exec_cache_hits_total").inc();
            return Some(cache.clone());
        }
        let built = model.score_cache().map(Arc::new);
        if built.is_some() {
            halk_obs::counter!("halk_exec_cache_builds_total").inc();
            halk_obs::windowed_counter!("halk_exec_cache_builds_total").inc();
        }
        st.score = built.clone();
        built
    }

    /// The resident shard-local trig tables for the model's current
    /// parameter state, building them on first use at the configured
    /// shard count and precision. The build is held under the cache lock
    /// so concurrent callers share one table instead of racing to build.
    pub fn sharded_trig(&self, model: &HalkModel) -> Arc<ShardedTrig> {
        let version = model.param_store().steps_taken();
        let mut st = self.cache.lock().expect("exec cache");
        st.roll_to(version);
        if let Some(sharded) = &st.sharded {
            halk_obs::counter!("halk_exec_cache_hits_total").inc();
            halk_obs::windowed_counter!("halk_exec_cache_hits_total").inc();
            return sharded.clone();
        }
        let shards = if self.shards == 0 {
            self.pool().threads()
        } else {
            self.shards
        }
        .max(1);
        let built = Arc::new(model.entity_shards_with(shards, self.precision));
        halk_obs::counter!("halk_exec_cache_builds_total").inc();
        halk_obs::windowed_counter!("halk_exec_cache_builds_total").inc();
        st.sharded = Some(built.clone());
        built
    }

    /// Installs precomputed shard tables (a snapshot's re-sliced `TRIG`
    /// section) as the resident cache for parameter state `version`,
    /// skipping the sin/cos build entirely.
    pub fn install_sharded(&self, version: u64, sharded: ShardedTrig) {
        let mut st = self.cache.lock().expect("exec cache");
        st.version = version;
        st.score = None;
        st.sharded = Some(Arc::new(sharded));
    }

    /// The resident sharded tables, if already built/installed (never
    /// builds; serving uses this after its boot-time warm).
    pub fn resident_sharded(&self) -> Option<Arc<ShardedTrig>> {
        self.cache.lock().expect("exec cache").sharded.clone()
    }

    // ------------------------------------------------------------ embed

    /// One batched tape embedding for a same-shape group: compiles every
    /// query's [`ArcScorer`] in a single plan execution (B×d slot
    /// tensors), the amortization serving has always exploited — exposed
    /// here so every backend (and the bench harness) shares it.
    pub fn scorers_for_group(
        &self,
        model: &HalkModel,
        shape: &PlanShape,
        queries: &[&Query],
    ) -> Vec<ArcScorer> {
        model.scorers_for_shape(shape, queries)
    }

    // ----------------------------------------------------------- submit

    /// Runs a job list through the backend: keys every job (in order),
    /// partitions into same-key groups capped at [`Executor::batch_cap`]
    /// (first-fit into the most recent open group, so grouping is
    /// deterministic in submission order), executes groups in first-seen
    /// order, and scatters outputs back to submission order.
    ///
    /// Group execution is sequential at this level — parallelism lives
    /// *inside* the group kernels, on [`Executor::pool`] — which is what
    /// keeps every surface's reduction order independent of thread count.
    pub fn submit<B: ExecBackend>(&self, backend: &B, jobs: &[B::Job]) -> Vec<B::Out> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let cap = if self.batch_cap == 0 {
            usize::MAX
        } else {
            self.batch_cap
        };
        let keys: Vec<Option<ShapeKey>> = jobs.iter().map(|j| backend.key_of(self, j)).collect();
        let mut groups: Vec<(Option<ShapeKey>, Vec<usize>)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let open = key.as_ref().and_then(|k| {
                groups
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, (gk, idxs))| {
                        idxs.len() < cap && gk.as_ref().is_some_and(|g| g.same_group(k))
                    })
                    .map(|(gi, _)| gi)
            });
            match open {
                Some(gi) => groups[gi].1.push(i),
                None => groups.push((key.clone(), vec![i])),
            }
        }
        halk_obs::counter!("halk_exec_jobs_total").add(jobs.len() as u64);
        let mut out: Vec<Option<B::Out>> = jobs.iter().map(|_| None).collect();
        for (key, idxs) in groups {
            let group: Vec<&B::Job> = idxs.iter().map(|&i| &jobs[i]).collect();
            // The backend's detail hook (request ids, lanes) is consulted
            // only when tracing is on; the disabled path stays one relaxed
            // load, exactly like a plain `span!`.
            let _span = if halk_obs::trace::enabled() {
                match backend.group_detail(key.as_ref(), &group) {
                    Some(d) => halk_obs::trace::span_detail("exec_group", move || d),
                    None => halk_obs::trace::span("exec_group"),
                }
            } else {
                halk_obs::trace::span("exec_group")
            };
            halk_obs::counter!("halk_exec_groups_total").inc();
            halk_obs::histogram!("halk_exec_group_size").record(idxs.len() as u64);
            let results = backend.exec_group(self, key.as_ref(), &group);
            assert_eq!(
                results.len(),
                idxs.len(),
                "exec_group must return one output per job"
            );
            for (&i, r) in idxs.iter().zip(results) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|o| o.expect("grouping covers every job"))
            .collect()
    }
}

impl CacheState {
    /// Drops stale caches when the parameter state moved.
    fn roll_to(&mut self, version: u64) {
        if self.version != version {
            self.version = version;
            self.score = None;
            self.sharded = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{EntityId, RelationId};

    /// A backend that records group composition: output = (group ordinal
    /// as observed via a counter, index within group).
    struct Recorder {
        shapes: Vec<Option<ShapeKey>>,
        groups: Mutex<Vec<Vec<usize>>>,
    }

    impl ExecBackend for Recorder {
        type Job = usize;
        type Out = usize;
        fn key_of(&self, _exec: &Executor, job: &usize) -> Option<ShapeKey> {
            self.shapes[*job].clone()
        }
        fn exec_group(
            &self,
            _exec: &Executor,
            _key: Option<&ShapeKey>,
            jobs: &[&usize],
        ) -> Vec<usize> {
            self.groups
                .lock()
                .unwrap()
                .push(jobs.iter().map(|&&j| j).collect());
            // Output = the job id, so submit's scatter is checkable.
            jobs.iter().map(|&&j| j).collect()
        }
    }

    fn shape(seed: u32) -> Arc<PlanShape> {
        // Distinct anchors share a skeleton; distinct *arities* don't, so
        // build distinct shapes from structurally different queries.
        let base = Query::atom(EntityId(0), RelationId(0));
        let q = (0..seed).fold(base, |q, _| q.project(RelationId(0)));
        Arc::new(PlanShape::compile(&q))
    }

    fn exec_with_cap(cap: usize) -> Executor {
        Executor::new(ExecConfig {
            threads: 1,
            batch_cap: cap,
            ..ExecConfig::default()
        })
    }

    #[test]
    fn groups_by_pointer_identity_and_restores_submission_order() {
        let a = shape(1);
        let b = shape(2);
        // Interleaved keys: a b a b a — two groups, outputs in input order.
        let shapes = vec![
            Some(ShapeKey::new(a.clone())),
            Some(ShapeKey::new(b.clone())),
            Some(ShapeKey::new(a.clone())),
            Some(ShapeKey::new(b)),
            Some(ShapeKey::new(a)),
        ];
        let backend = Recorder {
            shapes,
            groups: Mutex::new(Vec::new()),
        };
        let jobs: Vec<usize> = (0..5).collect();
        let out = exec_with_cap(0).submit(&backend, &jobs);
        assert_eq!(out, jobs, "outputs scatter back to submission order");
        let groups = backend.groups.into_inner().unwrap();
        assert_eq!(groups, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn equal_but_distinct_arcs_do_not_group() {
        // Two separately compiled (equal) shapes: identity is the Arc
        // pointer, exactly like train_batch's homogeneity guard.
        let backend = Recorder {
            shapes: vec![Some(ShapeKey::new(shape(1))), Some(ShapeKey::new(shape(1)))],
            groups: Mutex::new(Vec::new()),
        };
        let out = exec_with_cap(0).submit(&backend, &[0usize, 1]);
        assert_eq!(out, vec![0, 1]);
        assert_eq!(backend.groups.into_inner().unwrap().len(), 2);
    }

    #[test]
    fn lanes_split_same_shape_groups() {
        let a = shape(1);
        let backend = Recorder {
            shapes: vec![
                Some(ShapeKey::with_lane(a.clone(), 0)),
                Some(ShapeKey::with_lane(a.clone(), 1)),
                Some(ShapeKey::with_lane(a, 0)),
            ],
            groups: Mutex::new(Vec::new()),
        };
        let out = exec_with_cap(0).submit(&backend, &[0usize, 1, 2]);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(
            backend.groups.into_inner().unwrap(),
            vec![vec![0, 2], vec![1]]
        );
    }

    #[test]
    fn batch_cap_splits_oversized_groups() {
        let a = shape(1);
        let backend = Recorder {
            shapes: (0..5).map(|_| Some(ShapeKey::new(a.clone()))).collect(),
            groups: Mutex::new(Vec::new()),
        };
        let jobs: Vec<usize> = (0..5).collect();
        let out = exec_with_cap(2).submit(&backend, &jobs);
        assert_eq!(out, jobs);
        assert_eq!(
            backend.groups.into_inner().unwrap(),
            vec![vec![0, 1], vec![2, 3], vec![4]],
            "cap 2 splits 5 same-key jobs into 2+2+1 in order"
        );
    }

    #[test]
    fn keyless_jobs_run_alone() {
        let a = shape(1);
        let backend = Recorder {
            shapes: vec![
                None,
                Some(ShapeKey::new(a.clone())),
                None,
                Some(ShapeKey::new(a)),
            ],
            groups: Mutex::new(Vec::new()),
        };
        let out = exec_with_cap(0).submit(&backend, &[0usize, 1, 2, 3]);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(
            backend.groups.into_inner().unwrap(),
            vec![vec![0], vec![1, 3], vec![2]]
        );
    }

    #[test]
    fn empty_submit_is_empty() {
        let backend = Recorder {
            shapes: Vec::new(),
            groups: Mutex::new(Vec::new()),
        };
        assert!(exec_with_cap(0).submit(&backend, &[]).is_empty());
    }
}
