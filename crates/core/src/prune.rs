//! Embedding-based pruning for subgraph matching (§IV-D).
//!
//! "For each query, we use HaLk to obtain top-20 candidates for each
//! variable node and add these candidates into a node set S. After that, an
//! induced data graph based on S could be generated" — the matcher then runs
//! on the (much smaller) induced graph, trading a little accuracy for a
//! large online-time reduction (Fig. 6a).

use crate::model::HalkModel;
use crate::scorer::TopK;
use halk_kg::{EntityId, Graph};
use halk_logic::Query;
use halk_obs::Deadline;
use std::cell::RefCell;

thread_local! {
    /// Pooled per-thread selection scratch: the bounded heap plus its
    /// sorted drain buffer, reused across calls so the pruning hot path
    /// (hit on every served query) allocates nothing in steady state —
    /// previously each call built a fresh `n_entities` score vector *and*
    /// an `n_entities` index vector for the argsort.
    static TOPK_SCRATCH: RefCell<(TopK, Vec<(u32, f32)>)> =
        RefCell::new((TopK::new(0), Vec::new()));
}

/// Top-`k` entity candidates for *one* query node, by embedding distance.
/// Streams the entity table through a pooled bounded heap; the selection is
/// bit-identical to the full-vector `score_all` + `top_k_indices` path.
pub fn top_k_candidates(model: &HalkModel, query: &Query, k: usize) -> Vec<EntityId> {
    let trig = model.entity_trig();
    let scorer = model.scorer_for(query);
    TOPK_SCRATCH.with(|cell| {
        let (heap, drain) = &mut *cell.borrow_mut();
        heap.reset(k);
        scorer.top_k_until(&trig, 0, heap, &Deadline::never());
        heap.drain_sorted_into(drain);
        drain.iter().map(|&(i, _)| EntityId(i)).collect()
    })
}

/// The candidate node set `S`: top-`k` candidates of every variable node of
/// the computation tree (every sub-query root), plus all anchors. The
/// entity-table trig and the score buffer are built once and shared across
/// every sub-query.
pub fn candidate_set(model: &HalkModel, query: &Query, k: usize) -> Vec<EntityId> {
    let mut keep = vec![false; model.n_entities()];
    // Anchors are always part of the induced graph.
    for a in query.anchors() {
        keep[a.index()] = true;
    }
    // Every operator node of the tree is a variable node of the query graph.
    let mut subqueries: Vec<Query> = Vec::new();
    query.visit(&mut |q| {
        if !matches!(q, Query::Anchor(_)) {
            subqueries.push(q.clone());
        }
    });
    let trig = model.entity_trig();
    TOPK_SCRATCH.with(|cell| {
        let (heap, drain) = &mut *cell.borrow_mut();
        for sub in &subqueries {
            heap.reset(k);
            model
                .scorer_for(sub)
                .top_k_until(&trig, 0, heap, &Deadline::never());
            heap.drain_sorted_into(drain);
            for &(e, _) in drain.iter() {
                keep[e as usize] = true;
            }
        }
    });
    keep.iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(i, _)| EntityId(i as u32))
        .collect()
}

/// Builds the induced data graph over the candidate set `S` (§IV-D).
pub fn induced_graph(graph: &Graph, candidates: &[EntityId]) -> Graph {
    let mut keep = vec![false; graph.n_entities()];
    for e in candidates {
        keep[e.index()] = true;
    }
    graph.induced_subgraph(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HalkConfig;
    use halk_kg::{generate, RelationId, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, HalkModel) {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(50));
        let model = HalkModel::new(&g, HalkConfig::tiny());
        (g, model)
    }

    #[test]
    fn top_k_returns_k_distinct_best() {
        let (g, model) = setup();
        let t = g.triples()[0];
        let q = Query::atom(t.h, t.r);
        let cands = top_k_candidates(&model, &q, 20);
        assert_eq!(cands.len(), 20);
        let mut sorted = cands.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates in top-k");
        // They are the globally best-scoring entities.
        let scores = model.score_all(&q);
        let worst_kept = cands
            .iter()
            .map(|e| scores[e.index()])
            .fold(f32::MIN, f32::max);
        let better_outside = scores
            .iter()
            .enumerate()
            .filter(|(i, &s)| s < worst_kept && !cands.contains(&EntityId(*i as u32)))
            .count();
        assert_eq!(better_outside, 0);
    }

    #[test]
    fn candidate_set_includes_anchors_and_scales_with_nodes() {
        let (g, model) = setup();
        let t = g.triples()[0];
        let q1 = Query::atom(t.h, t.r);
        let q2 = Query::atom(t.h, t.r).project(RelationId(0));
        let s1 = candidate_set(&model, &q1, 10);
        let s2 = candidate_set(&model, &q2, 10);
        assert!(s1.contains(&t.h));
        assert!(s2.contains(&t.h));
        // Deeper query has more variable nodes → at least as many candidates.
        assert!(s2.len() >= s1.len());
        assert!(s1.len() <= 11); // 10 candidates + anchor
    }

    #[test]
    fn induced_graph_is_subgraph_and_smaller() {
        let (g, model) = setup();
        let t = g.triples()[0];
        let q = Query::atom(t.h, t.r);
        let cands = candidate_set(&model, &q, 20);
        let sub = induced_graph(&g, &cands);
        assert!(sub.is_subgraph_of(&g));
        assert!(sub.n_triples() < g.n_triples());
        // Entity id space is preserved for comparability.
        assert_eq!(sub.n_entities(), g.n_entities());
    }
}
