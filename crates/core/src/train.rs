//! The generic training loop (Algorithm 1 of the paper).
//!
//! Works for any [`QueryModel`], so the baselines are trained by exactly the
//! same harness with exactly the same budget — the paper's own protocol
//! ("all ablated networks are trained on the same experimental
//! environment", §IV-C). A pool of grounded queries is pre-sampled per
//! structure; each step batches same-structure queries, draws a positive
//! answer and `m` negatives, and takes one optimizer step.

use crate::qmodel::{QueryModel, TrainExample};
use halk_kg::Graph;
use halk_logic::{answers, EntitySet, GroundedQuery, Sampler, Structure};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Knobs for one training run (model-independent).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Total optimizer steps.
    pub steps: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Negative samples per query.
    pub negatives: usize,
    /// Pre-sampled query pool size per structure.
    pub queries_per_structure: usize,
    /// Scheduling weight of the 1p structure relative to the others:
    /// the projection operator underpins every other operator, so the
    /// benchmark protocol oversamples link-prediction batches. Applied to
    /// every model equally.
    pub p1_weight: usize,
    /// Seed for sampling.
    pub seed: u64,
    /// Print a progress line every N steps (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            steps: 600,
            batch_size: 64,
            negatives: 16,
            queries_per_structure: 150,
            p1_weight: 3,
            seed: 13,
            log_every: 0,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            steps: 30,
            batch_size: 8,
            negatives: 4,
            queries_per_structure: 20,
            ..Self::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Loss after each step.
    pub losses: Vec<f32>,
    /// Wall-clock training time (the "offline time" of Fig. 6b).
    pub wall: Duration,
    /// Structures actually trained (those the model supports and that were
    /// groundable on the graph).
    pub trained_structures: Vec<Structure>,
}

impl TrainStats {
    /// Mean loss over the last quarter of training.
    pub fn tail_loss(&self) -> f32 {
        let n = self.losses.len();
        if n == 0 {
            return f32::NAN;
        }
        let tail = &self.losses[n - (n / 4).max(1)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// A pre-sampled pool of grounded training queries with their exact answer
/// sets on the training graph.
struct Pool {
    structure: Structure,
    items: Vec<(GroundedQuery, EntitySet)>,
}

/// Trains `model` on `graph` over the given structures (those the model
/// supports), following Algorithm 1: batches of same-structure queries,
/// margin loss, Adam — until the step budget is exhausted.
pub fn train_model<M: QueryModel + ?Sized>(
    model: &mut M,
    graph: &Graph,
    structures: &[Structure],
    cfg: &TrainConfig,
) -> TrainStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = Sampler::new(graph);

    let pools: Vec<Pool> = structures
        .iter()
        .filter(|&&s| model.supports(s))
        .filter_map(|&s| {
            // 1p trains on every (head, relation) pair — the paper's
            // protocol; other structures use a sampled pool.
            let qs = if s == Structure::P1 {
                sampler.all_p1()
            } else {
                sampler.sample_many(s, cfg.queries_per_structure, &mut rng)
            };
            if qs.is_empty() {
                return None;
            }
            let items = qs
                .into_iter()
                .map(|gq| {
                    let ans = answers(&gq.query, graph);
                    (gq, ans)
                })
                .collect();
            Some(Pool {
                structure: s,
                items,
            })
        })
        .collect();
    assert!(!pools.is_empty(), "no trainable structures for {}", model.name());

    // Round-robin schedule with the 1p pool repeated `p1_weight` times.
    let mut schedule: Vec<usize> = Vec::new();
    for (i, pool) in pools.iter().enumerate() {
        let reps = if pool.structure == Structure::P1 {
            cfg.p1_weight.max(1)
        } else {
            1
        };
        schedule.extend(std::iter::repeat(i).take(reps));
    }

    let start = Instant::now();
    let mut losses = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let pool = &pools[schedule[step % schedule.len()]];
        let batch: Vec<TrainExample> = (0..cfg.batch_size)
            .filter_map(|_| {
                let (gq, ans) = pool.items.choose(&mut rng)?;
                let members = ans.to_vec();
                let positive = *members.choose(&mut rng)?;
                let negatives = sampler.negatives(ans, cfg.negatives, &mut rng);
                if negatives.len() < cfg.negatives {
                    return None;
                }
                Some(TrainExample {
                    query: gq.query.clone(),
                    positive,
                    negatives,
                })
            })
            .collect();
        if batch.is_empty() {
            continue;
        }
        let loss = model.train_batch(&batch);
        if cfg.log_every > 0 && step % cfg.log_every == 0 {
            eprintln!(
                "[{}] step {step:5} structure {:5} loss {loss:.4}",
                model.name(),
                pool.structure
            );
        }
        losses.push(loss);
    }

    TrainStats {
        losses,
        wall: start.elapsed(),
        trained_structures: pools.iter().map(|p| p.structure).collect(),
    }
}

/// Convenience: uniformly random entity ids (used by harness warm-ups).
pub fn random_entities(n_universe: usize, count: usize, rng: &mut impl Rng) -> Vec<u32> {
    (0..count).map(|_| rng.gen_range(0..n_universe as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HalkConfig;
    use crate::model::HalkModel;
    use halk_kg::{generate, SynthConfig};

    #[test]
    fn training_runs_and_reduces_loss() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(31));
        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let mut tc = TrainConfig::tiny();
        tc.steps = 120;
        let stats = train_model(&mut model, &g, &[Structure::P1, Structure::I2], &tc);
        assert_eq!(stats.losses.len(), 120);
        let head: f32 = stats.losses[..20].iter().sum::<f32>() / 20.0;
        let tail = stats.tail_loss();
        assert!(tail < head, "loss head {head} tail {tail}");
        assert_eq!(
            stats.trained_structures,
            vec![Structure::P1, Structure::I2]
        );
        assert!(stats.wall.as_nanos() > 0);
    }

    #[test]
    fn unsupported_structures_are_skipped() {
        // A model that refuses difference structures should only train on
        // the rest; exercised here through HaLk by filtering the input list.
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(32));
        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let stats = train_model(&mut model, &g, &[Structure::P1], &TrainConfig::tiny());
        assert_eq!(stats.trained_structures, vec![Structure::P1]);
    }

    #[test]
    fn tail_loss_of_empty_is_nan() {
        let s = TrainStats {
            losses: vec![],
            wall: Duration::ZERO,
            trained_structures: vec![],
        };
        assert!(s.tail_loss().is_nan());
    }
}
