//! The generic training loop (Algorithm 1 of the paper).
//!
//! Works for any [`QueryModel`], so the baselines are trained by exactly the
//! same harness with exactly the same budget — the paper's own protocol
//! ("all ablated networks are trained on the same experimental
//! environment", §IV-C). A pool of grounded queries is pre-sampled per
//! structure; each step batches same-structure queries, draws a positive
//! answer and `m` negatives, and takes one optimizer step.
//!
//! The loop is crash-safe for models exposing a parameter store: it can
//! periodically checkpoint to disk (rotating the last K files), resume a
//! run from such a checkpoint at the recorded step, and — when a batch
//! produces a non-finite loss or parameters — roll the model back to the
//! last good snapshot and skip the batch instead of poisoning the run.

use crate::qmodel::{QueryModel, TrainExample};
use halk_kg::Graph;
use halk_logic::plan::{execute_set, PlanBindings, PlanCache};
use halk_logic::{EntitySet, GroundedQuery, Sampler, Structure};
use halk_nn::checkpoint;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for one training run (model-independent).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Total optimizer steps.
    pub steps: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Negative samples per query.
    pub negatives: usize,
    /// Pre-sampled query pool size per structure.
    pub queries_per_structure: usize,
    /// Scheduling weight of the 1p structure relative to the others:
    /// the projection operator underpins every other operator, so the
    /// benchmark protocol oversamples link-prediction batches. Applied to
    /// every model equally.
    pub p1_weight: usize,
    /// Seed for sampling.
    pub seed: u64,
    /// Print a progress line every N steps (0 = silent).
    pub log_every: usize,
    /// Write a checkpoint every N steps (0 = disabled). Requires
    /// `checkpoint_dir` and a model that exposes its parameter store.
    pub checkpoint_every: usize,
    /// Directory receiving `step-*.ckpt` files (created if missing).
    pub checkpoint_dir: Option<PathBuf>,
    /// How many rotated checkpoint files to keep (older ones are deleted;
    /// clamped to at least 1).
    pub keep_checkpoints: usize,
    /// Resume from this checkpoint file: restores parameters, Adam state
    /// and the step counter, then trains the remaining steps.
    pub resume_from: Option<PathBuf>,
    /// Worker threads for data-parallel training and pool setup
    /// (0 = auto via `HALK_THREADS` or the machine's parallelism; 1 =
    /// strictly sequential). Purely a scheduling knob — results are
    /// bit-identical at every setting.
    pub threads: usize,
    /// Cooperative stop flag (e.g. set from a SIGINT handler): checked
    /// between steps, so the in-flight step always completes, a final
    /// checkpoint is written, and the run returns normally with
    /// [`TrainStats::interrupted`] set instead of dying mid-update.
    pub stop: Option<Arc<AtomicBool>>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            steps: 600,
            batch_size: 64,
            negatives: 16,
            queries_per_structure: 150,
            p1_weight: 3,
            seed: 13,
            log_every: 0,
            checkpoint_every: 0,
            checkpoint_dir: None,
            keep_checkpoints: 3,
            resume_from: None,
            threads: 0,
            stop: None,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            steps: 30,
            batch_size: 8,
            negatives: 4,
            queries_per_structure: 20,
            ..Self::default()
        }
    }
}

/// Why a training run could not proceed.
#[derive(Debug)]
pub enum TrainError {
    /// None of the requested structures is both supported by the model and
    /// groundable on the graph.
    NoTrainableStructures { model: String },
    /// `resume_from` / `checkpoint_every` were set but the model does not
    /// expose a parameter store.
    NoParamStore { model: String },
    /// The resume checkpoint could not be read or decoded.
    Resume { path: PathBuf, error: io::Error },
    /// The resume checkpoint's parameter shapes do not match the model.
    ResumeShapeMismatch { path: PathBuf },
    /// A periodic checkpoint could not be written.
    SaveCheckpoint { path: PathBuf, error: io::Error },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NoTrainableStructures { model } => {
                write!(f, "no trainable structures for {model}")
            }
            TrainError::NoParamStore { model } => write!(
                f,
                "{model} exposes no parameter store; checkpointing and resume are unavailable"
            ),
            TrainError::Resume { path, error } => {
                write!(f, "cannot resume from {}: {error}", path.display())
            }
            TrainError::ResumeShapeMismatch { path } => write!(
                f,
                "checkpoint {} does not match the model's parameter shapes",
                path.display()
            ),
            TrainError::SaveCheckpoint { path, error } => {
                write!(f, "cannot write checkpoint {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Resume { error, .. } | TrainError::SaveCheckpoint { error, .. } => {
                Some(error)
            }
            _ => None,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Loss after each step.
    pub losses: Vec<f32>,
    /// Wall-clock training time (the "offline time" of Fig. 6b).
    pub wall: Duration,
    /// Structures actually trained (those the model supports and that were
    /// groundable on the graph).
    pub trained_structures: Vec<Structure>,
    /// Steps whose batch produced a non-finite loss or parameters and were
    /// rolled back to the last good snapshot instead of applied.
    pub rollbacks: usize,
    /// Step the run started at (> 0 when resumed from a checkpoint).
    pub start_step: usize,
    /// True when the run stopped early via [`TrainConfig::stop`]; the
    /// in-flight step completed and a final checkpoint was written, so a
    /// resume from the checkpoint directory continues seamlessly.
    pub interrupted: bool,
}

impl TrainStats {
    /// Mean loss over the last quarter of training.
    pub fn tail_loss(&self) -> f32 {
        let n = self.losses.len();
        if n == 0 {
            return f32::NAN;
        }
        let tail = &self.losses[n - (n / 4).max(1)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// A pre-sampled pool of grounded training queries with their exact answer
/// sets on the training graph.
struct Pool {
    structure: Structure,
    items: Vec<(GroundedQuery, EntitySet)>,
}

/// How often the divergence guard refreshes its in-memory snapshot when
/// disk checkpointing is disabled.
const SNAPSHOT_EVERY: usize = 50;

/// Rotating on-disk checkpoint writer.
struct Checkpointer {
    dir: PathBuf,
    every: usize,
    keep: usize,
    written: Vec<PathBuf>,
}

impl Checkpointer {
    fn path_for(dir: &Path, step: usize) -> PathBuf {
        dir.join(format!("step-{step:08}.ckpt"))
    }

    fn save(&mut self, store: &halk_nn::ParamStore, step: usize) -> Result<(), TrainError> {
        let path = Self::path_for(&self.dir, step);
        let annotate = |error: io::Error| TrainError::SaveCheckpoint {
            path: path.clone(),
            error,
        };
        std::fs::create_dir_all(&self.dir).map_err(annotate)?;
        checkpoint::save_file(store, &path).map_err(annotate)?;
        self.written.push(path);
        while self.written.len() > self.keep.max(1) {
            // Rotation is best-effort: a missing old file is not an error.
            let _ = std::fs::remove_file(self.written.remove(0));
        }
        Ok(())
    }
}

/// Trains `model` on `graph` over the given structures (those the model
/// supports), following Algorithm 1: batches of same-structure queries,
/// margin loss, Adam — until the step budget is exhausted.
///
/// With `cfg.checkpoint_every`/`checkpoint_dir` set, the parameter store is
/// written crash-safely every N steps (keeping the last
/// `cfg.keep_checkpoints` files plus a final one); with `cfg.resume_from`
/// set, parameters, Adam state and the step counter are restored first and
/// only the remaining steps run. Batches that produce a non-finite loss or
/// parameters are rolled back and counted in [`TrainStats::rollbacks`].
pub fn train_model<M: QueryModel + ?Sized>(
    model: &mut M,
    graph: &Graph,
    structures: &[Structure],
    cfg: &TrainConfig,
) -> Result<TrainStats, TrainError> {
    let _span = halk_obs::span!("train_model", || format!(
        "{} steps={} batch={}",
        model.name(),
        cfg.steps,
        cfg.batch_size
    ));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = Sampler::new(graph);
    let par = if cfg.threads == 0 {
        halk_par::Pool::auto()
    } else {
        halk_par::Pool::new(cfg.threads)
    }
    .labeled("train_pool_setup");
    model.set_threads(par.threads());

    let setup_span = halk_obs::span!("train_pool_setup");
    let pools: Vec<Pool> = structures
        .iter()
        .filter(|&&s| model.supports(s))
        .filter_map(|&s| {
            // 1p trains on every (head, relation) pair — the paper's
            // protocol; other structures use a sampled pool.
            let qs = if s == Structure::P1 {
                sampler.all_p1()
            } else {
                sampler.sample_many(s, cfg.queries_per_structure, &mut rng)
            };
            if qs.is_empty() {
                return None;
            }
            // Answer sets vary in size, so fan the exact-answer
            // computation out through the dynamic splitter; zipping the
            // in-order results back preserves the sequential pool layout.
            // All queries in a pool share one structure, so the plan cache
            // compiles exactly one shape here.
            let plans = PlanCache::new();
            let anss = par.par_map_dyn(&qs, |gq| {
                let shape = plans.shape_for(&gq.query);
                execute_set(&shape, &PlanBindings::of(&gq.query), graph)
            });
            let items = qs.into_iter().zip(anss).collect();
            Some(Pool {
                structure: s,
                items,
            })
        })
        .collect();
    drop(setup_span);
    if pools.is_empty() {
        return Err(TrainError::NoTrainableStructures {
            model: model.name().to_string(),
        });
    }

    // Round-robin schedule with the 1p pool repeated `p1_weight` times.
    let mut schedule: Vec<usize> = Vec::new();
    for (i, pool) in pools.iter().enumerate() {
        let reps = if pool.structure == Structure::P1 {
            cfg.p1_weight.max(1)
        } else {
            1
        };
        schedule.extend(std::iter::repeat_n(i, reps));
    }

    // Resume: restore parameters + Adam state + step counter.
    let mut start_step = 0usize;
    if let Some(path) = &cfg.resume_from {
        let restored = checkpoint::load_file(path).map_err(|error| TrainError::Resume {
            path: path.clone(),
            error,
        })?;
        let model_name = model.name().to_string();
        let store = model
            .param_store_mut()
            .ok_or(TrainError::NoParamStore { model: model_name })?;
        if !store.same_shapes(&restored) {
            return Err(TrainError::ResumeShapeMismatch { path: path.clone() });
        }
        start_step = (restored.steps_taken() as usize).min(cfg.steps);
        *store = restored;
    }

    let mut checkpointer = match (&cfg.checkpoint_dir, cfg.checkpoint_every) {
        (Some(dir), every) if every > 0 => {
            if model.param_store().is_none() {
                return Err(TrainError::NoParamStore {
                    model: model.name().to_string(),
                });
            }
            // Adopt checkpoints already in the directory (from the run being
            // resumed) so rotation stays bounded across restarts too.
            let mut written: Vec<PathBuf> = std::fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .filter_map(|e| e.ok())
                        .map(|e| e.path())
                        .filter(|p| {
                            p.extension().is_some_and(|x| x == "ckpt")
                                && p.file_name()
                                    .is_some_and(|n| n.to_string_lossy().starts_with("step-"))
                        })
                        .collect()
                })
                .unwrap_or_default();
            written.sort();
            Some(Checkpointer {
                dir: dir.clone(),
                every,
                keep: cfg.keep_checkpoints,
                written,
            })
        }
        _ => None,
    };

    // Divergence guard: an in-memory snapshot of the last known-good
    // parameters (initially the starting state), refreshed at checkpoint
    // cadence — or every SNAPSHOT_EVERY steps when not checkpointing.
    let mut last_good: Option<Vec<u8>> = model.param_store().map(checkpoint::to_bytes);
    let snapshot_every = if cfg.checkpoint_every > 0 {
        cfg.checkpoint_every
    } else {
        SNAPSHOT_EVERY
    };

    let start = Instant::now();
    let mut losses = Vec::with_capacity(cfg.steps.saturating_sub(start_step));
    let mut rollbacks = 0usize;
    let mut interrupted = false;
    let mut completed = start_step;
    for step in start_step..cfg.steps {
        // Cooperative interruption point: between steps, never inside one,
        // so the parameter store is always at a step boundary.
        if cfg.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst)) {
            interrupted = true;
            halk_obs::log!(
                Warn,
                "[{}] stop requested; halting after step {step} of {}",
                model.name(),
                cfg.steps
            );
            break;
        }
        completed = step + 1;
        let step_start = Instant::now();
        let pool = &pools[schedule[step % schedule.len()]];
        let batch: Vec<TrainExample> = (0..cfg.batch_size)
            .filter_map(|_| {
                let (gq, ans) = pool.items.choose(&mut rng)?;
                let members = ans.to_vec();
                let positive = *members.choose(&mut rng)?;
                let negatives = sampler.negatives(ans, cfg.negatives, &mut rng);
                if negatives.len() < cfg.negatives {
                    return None;
                }
                Some(TrainExample {
                    query: gq.query.clone(),
                    positive,
                    negatives,
                })
            })
            .collect();
        if batch.is_empty() {
            continue;
        }
        let loss = model.train_batch(&batch);
        halk_obs::counter!("halk_train_steps_total").inc();
        halk_obs::histogram!("halk_train_step_us").record(step_start.elapsed().as_micros() as u64);

        let healthy = loss.is_finite()
            && model
                .param_store()
                .is_none_or(halk_nn::ParamStore::all_finite);
        if !healthy {
            rollbacks += 1;
            halk_obs::counter!("halk_train_rollbacks_total").inc();
            if let (Some(bytes), Some(store)) = (&last_good, model.param_store_mut()) {
                *store = checkpoint::from_bytes(bytes)
                    .expect("in-memory snapshot is always a valid checkpoint");
            }
            halk_obs::log!(
                Warn,
                "[{}] step {step:5} structure {:5} diverged (loss {loss}); rolled back",
                model.name(),
                pool.structure
            );
            continue;
        }
        halk_obs::gauge!("halk_train_last_loss").set(loss as f64);

        if cfg.log_every > 0 && step % cfg.log_every == 0 {
            eprintln!(
                "[{}] step {step:5} structure {:5} loss {loss:.4}",
                model.name(),
                pool.structure
            );
        }
        losses.push(loss);

        let boundary = (step + 1) % snapshot_every == 0;
        if let (Some(ck), Some(store)) = (checkpointer.as_mut(), model.param_store()) {
            if (step + 1) % ck.every == 0 {
                let _ck_span = halk_obs::span!("checkpoint_save");
                let ck_start = Instant::now();
                ck.save(store, step + 1)?;
                halk_obs::histogram!("halk_train_checkpoint_write_us")
                    .record(ck_start.elapsed().as_micros() as u64);
            }
        }
        if boundary {
            if let Some(store) = model.param_store() {
                last_good = Some(checkpoint::to_bytes(store));
            }
        }
    }

    // A final checkpoint so a resumed run can always pick up the end state
    // — when `steps` is not a multiple of `checkpoint_every`, and when an
    // interrupt stopped the run between periodic checkpoints.
    if let (Some(ck), Some(store)) = (checkpointer.as_mut(), model.param_store()) {
        if completed > start_step && !completed.is_multiple_of(ck.every) {
            let _ck_span = halk_obs::span!("checkpoint_save");
            let ck_start = Instant::now();
            ck.save(store, completed)?;
            halk_obs::histogram!("halk_train_checkpoint_write_us")
                .record(ck_start.elapsed().as_micros() as u64);
        }
    }

    Ok(TrainStats {
        losses,
        wall: start.elapsed(),
        trained_structures: pools.iter().map(|p| p.structure).collect(),
        rollbacks,
        start_step,
        interrupted,
    })
}

/// Convenience: uniformly random entity ids (used by harness warm-ups).
pub fn random_entities(n_universe: usize, count: usize, rng: &mut impl Rng) -> Vec<u32> {
    (0..count)
        .map(|_| rng.gen_range(0..n_universe as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HalkConfig;
    use crate::model::HalkModel;
    use halk_kg::{generate, SynthConfig};

    #[test]
    fn training_runs_and_reduces_loss() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(31));
        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let mut tc = TrainConfig::tiny();
        tc.steps = 120;
        let stats = train_model(&mut model, &g, &[Structure::P1, Structure::I2], &tc).unwrap();
        assert_eq!(stats.losses.len(), 120);
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(stats.start_step, 0);
        let head: f32 = stats.losses[..20].iter().sum::<f32>() / 20.0;
        let tail = stats.tail_loss();
        assert!(tail < head, "loss head {head} tail {tail}");
        assert_eq!(stats.trained_structures, vec![Structure::P1, Structure::I2]);
        assert!(stats.wall.as_nanos() > 0);
    }

    #[test]
    fn unsupported_structures_are_skipped() {
        // A model that refuses difference structures should only train on
        // the rest; exercised here through HaLk by filtering the input list.
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(32));
        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let stats = train_model(&mut model, &g, &[Structure::P1], &TrainConfig::tiny()).unwrap();
        assert_eq!(stats.trained_structures, vec![Structure::P1]);
    }

    #[test]
    fn no_trainable_structures_is_an_error_not_a_panic() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(33));
        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let err = train_model(&mut model, &g, &[], &TrainConfig::tiny()).unwrap_err();
        assert!(matches!(err, TrainError::NoTrainableStructures { .. }));
        assert!(err.to_string().contains("HaLk"));
    }

    #[test]
    fn tail_loss_of_empty_is_nan() {
        let s = TrainStats {
            losses: vec![],
            wall: Duration::ZERO,
            trained_structures: vec![],
            rollbacks: 0,
            start_step: 0,
            interrupted: false,
        };
        assert!(s.tail_loss().is_nan());
    }

    /// Wraps HaLk and raises the stop flag mid-run, as a signal handler
    /// would, to exercise cooperative interruption.
    struct StopsItself {
        inner: HalkModel,
        calls: usize,
        stop_at: usize,
        flag: Arc<AtomicBool>,
    }

    impl QueryModel for StopsItself {
        fn name(&self) -> &'static str {
            "StopsItself"
        }

        fn supports(&self, s: Structure) -> bool {
            self.inner.supports(s)
        }

        fn train_batch(&mut self, batch: &[TrainExample]) -> f32 {
            self.calls += 1;
            if self.calls == self.stop_at {
                self.flag.store(true, Ordering::SeqCst);
            }
            self.inner.train_batch(batch)
        }

        fn score_all(&self, query: &halk_logic::Query) -> Vec<f32> {
            QueryModel::score_all(&self.inner, query)
        }

        fn n_entities(&self) -> usize {
            QueryModel::n_entities(&self.inner)
        }

        fn param_store(&self) -> Option<&halk_nn::ParamStore> {
            Some(&self.inner.store)
        }

        fn param_store_mut(&mut self) -> Option<&mut halk_nn::ParamStore> {
            Some(&mut self.inner.store)
        }
    }

    #[test]
    fn stop_flag_finishes_step_and_writes_final_checkpoint() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(38));
        let dir = std::env::temp_dir().join("halk_train_ckpt_interrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let flag = Arc::new(AtomicBool::new(false));
        let mut model = StopsItself {
            inner: HalkModel::new(&g, HalkConfig::tiny()),
            calls: 0,
            stop_at: 7,
            flag: flag.clone(),
        };
        let tc = TrainConfig {
            steps: 100,
            checkpoint_every: 50,
            checkpoint_dir: Some(dir.clone()),
            stop: Some(flag),
            ..TrainConfig::tiny()
        };
        let stats = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap();
        // The flag went up during step 7 (0-based step 6); that step
        // completed, the next never started.
        assert!(stats.interrupted);
        assert_eq!(stats.losses.len(), 7);
        // The final checkpoint reflects the interrupted state, so resume
        // continues from step 7 rather than replaying it.
        assert_eq!(
            std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect::<Vec<_>>(),
            vec!["step-00000007.ckpt"]
        );
        let mut resumed = HalkModel::new(&g, HalkConfig::tiny());
        let tc2 = TrainConfig {
            steps: 10,
            resume_from: Some(dir.join("step-00000007.ckpt")),
            ..TrainConfig::tiny()
        };
        let stats2 = train_model(&mut resumed, &g, &[Structure::P1], &tc2).unwrap();
        assert_eq!(stats2.start_step, 7);
        assert!(!stats2.interrupted);
        assert_eq!(stats2.losses.len(), 3);
    }

    #[test]
    fn periodic_checkpoints_rotate_and_resume_restores_step() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(34));
        let dir = std::env::temp_dir().join("halk_train_ckpt_rotate");
        let _ = std::fs::remove_dir_all(&dir);

        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let tc = TrainConfig {
            steps: 40,
            checkpoint_every: 10,
            checkpoint_dir: Some(dir.clone()),
            keep_checkpoints: 2,
            ..TrainConfig::tiny()
        };
        let stats = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap();
        assert_eq!(stats.losses.len(), 40);

        let mut files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        // keep_checkpoints = 2 and 40 % 10 == 0: only the 2 newest remain.
        assert_eq!(files, vec!["step-00000030.ckpt", "step-00000040.ckpt"]);

        // Resume the last checkpoint into a fresh model: the loop must
        // fast-forward past the already-trained steps.
        let mut resumed = HalkModel::new(&g, HalkConfig::tiny());
        let tc2 = TrainConfig {
            steps: 40,
            resume_from: Some(dir.join("step-00000040.ckpt")),
            ..TrainConfig::tiny()
        };
        let stats2 = train_model(&mut resumed, &g, &[Structure::P1], &tc2).unwrap();
        assert_eq!(stats2.start_step, 40);
        assert!(stats2.losses.is_empty(), "no steps were left to train");
        assert_eq!(resumed.store.steps_taken(), 40);
    }

    #[test]
    fn resume_from_garbage_is_a_typed_error() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(35));
        let dir = std::env::temp_dir().join("halk_train_ckpt_garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.ckpt");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let tc = TrainConfig {
            resume_from: Some(path),
            ..TrainConfig::tiny()
        };
        let err = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap_err();
        assert!(matches!(err, TrainError::Resume { .. }));
    }

    #[test]
    fn resume_shape_mismatch_is_rejected() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(36));
        let dir = std::env::temp_dir().join("halk_train_ckpt_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("other.ckpt");

        // Checkpoint of a differently-shaped store.
        let mut store = halk_nn::ParamStore::new();
        store.add(halk_nn::Tensor::zeros(2, 2));
        checkpoint::save_file(&store, &path).unwrap();

        let mut model = HalkModel::new(&g, HalkConfig::tiny());
        let tc = TrainConfig {
            resume_from: Some(path),
            ..TrainConfig::tiny()
        };
        let err = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap_err();
        assert!(matches!(err, TrainError::ResumeShapeMismatch { .. }));
    }

    /// Wraps HaLk and poisons the loss/parameters at a scripted step to
    /// exercise the divergence guard.
    struct Sabotaged {
        inner: HalkModel,
        calls: usize,
        poison_at: usize,
    }

    impl QueryModel for Sabotaged {
        fn name(&self) -> &'static str {
            "Sabotaged"
        }

        fn supports(&self, s: Structure) -> bool {
            self.inner.supports(s)
        }

        fn train_batch(&mut self, batch: &[TrainExample]) -> f32 {
            let loss = self.inner.train_batch(batch);
            self.calls += 1;
            if self.calls == self.poison_at {
                // Simulate a numerically-exploded update: a NaN parameter
                // lands in the store and the batch loss is NaN.
                self.inner.store.add(halk_nn::Tensor::scalar(f32::NAN));
                return f32::NAN;
            }
            loss
        }

        fn score_all(&self, query: &halk_logic::Query) -> Vec<f32> {
            QueryModel::score_all(&self.inner, query)
        }

        fn n_entities(&self) -> usize {
            QueryModel::n_entities(&self.inner)
        }

        fn param_store(&self) -> Option<&halk_nn::ParamStore> {
            Some(&self.inner.store)
        }

        fn param_store_mut(&mut self) -> Option<&mut halk_nn::ParamStore> {
            Some(&mut self.inner.store)
        }
    }

    #[test]
    fn divergence_rolls_back_and_training_completes() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(37));
        let mut model = Sabotaged {
            inner: HalkModel::new(&g, HalkConfig::tiny()),
            calls: 0,
            poison_at: 12,
        };
        let mut tc = TrainConfig::tiny();
        tc.steps = 25;
        let stats = train_model(&mut model, &g, &[Structure::P1], &tc).unwrap();
        assert_eq!(stats.rollbacks, 1);
        // The poisoned step is skipped; every recorded loss is finite and
        // the parameters end finite.
        assert_eq!(stats.losses.len(), 24);
        assert!(stats.losses.iter().all(|l| l.is_finite()));
        assert!(model.inner.store.all_finite());
    }
}
