//! Arc embeddings on the autodiff tape.
//!
//! [`ArcVar`] is the differentiable counterpart of
//! [`halk_geometry::Arc`]: a batch of per-dimension `(center, arclength)`
//! pairs living as tape variables, plus the tape-level versions of the
//! paper's closed-form helpers — start/end points (Definitions 1–2), the
//! squash `g` (Eq. 3), and chord lengths. All trigonometry goes through
//! `sin`/`cos`, so raw angle parameters never need explicit wrapping: every
//! downstream quantity is automatically 2π-periodic.

use halk_nn::{Tape, Var};

/// A batch of arc embeddings on the tape: `center` and `len` are `B×d`.
#[derive(Debug, Clone, Copy)]
pub struct ArcVar {
    /// Center angles `A_c` (radians, unwrapped).
    pub center: Var,
    /// Arclengths `A_l` (non-negative by construction of the operators).
    pub len: Var,
}

impl ArcVar {
    /// Start point `A_S = A_c − A_l/(2ρ)` (Definition 1).
    pub fn start(self, tape: &mut Tape, rho: f32) -> Var {
        let half = tape.scale(self.len, 1.0 / (2.0 * rho));
        tape.sub(self.center, half)
    }

    /// End point `A_E = A_c + A_l/(2ρ)` (Definition 2).
    pub fn end(self, tape: &mut Tape, rho: f32) -> Var {
        let half = tape.scale(self.len, 1.0 / (2.0 * rho));
        tape.add(self.center, half)
    }

    /// The concatenated `(start ‖ end)` pair — the coordinated combination
    /// representation the projection/attention networks take as input.
    pub fn start_end_concat(self, tape: &mut Tape, rho: f32) -> Var {
        let s = self.start(tape, rho);
        let e = self.end(tape, rho);
        tape.concat_cols(&[s, e])
    }

    /// Periodic `(start ‖ end)` features for the operator networks:
    /// `cos A_S ‖ sin A_S ‖ cos A_E ‖ sin A_E` (`B×4d`). Angles accumulate
    /// unboundedly over multi-hop rotations, and an MLP cannot generalize
    /// over `θ` vs `θ + 2π`; the unit-circle encoding is the faithful
    /// representation of a point on the paper's circle.
    pub fn start_end_features(self, tape: &mut Tape, rho: f32) -> Var {
        let s = self.start(tape, rho);
        let e = self.end(tape, rho);
        let cs = tape.cos(s);
        let ss = tape.sin(s);
        let ce = tape.cos(e);
        let se = tape.sin(e);
        tape.concat_cols(&[cs, ss, ce, se])
    }

    /// Arc angle `A_α = A_l / ρ`.
    pub fn span_angle(self, tape: &mut Tape, rho: f32) -> Var {
        tape.scale(self.len, 1.0 / rho)
    }
}

/// The squashing function `g(x) = π·tanh(λx) + π` (Eq. 3) on the tape,
/// mapping raw activations into `(0, 2π)`.
pub fn g_squash(tape: &mut Tape, x: Var, lambda: f32) -> Var {
    let scaled = tape.scale(x, lambda);
    let t = tape.tanh(scaled);
    let pi_t = tape.scale(t, std::f32::consts::PI);
    tape.add_scalar(pi_t, std::f32::consts::PI)
}

/// Clamps a tensor into `[lo, hi]` elementwise (sub-gradient routes to the
/// active side, like ReLU). Used to keep residually-updated arc angles in
/// the legal `[0, 2π]` range.
pub fn clamp(tape: &mut Tape, x: Var, lo: f32, hi: f32) -> Var {
    let (rows, cols) = {
        let t = tape.value(x);
        (t.rows, t.cols)
    };
    let lo_c = tape.constant(rows, cols, lo);
    let hi_c = tape.constant(rows, cols, hi);
    let m = tape.max(x, lo_c);
    tape.min(m, hi_c)
}

/// Chord length between two angle tensors: `2ρ·|sin((a−b)/2)|` — the
/// periodicity-safe distance of Eq. 9 / Eq. 16.
pub fn chord(tape: &mut Tape, a: Var, b: Var, rho: f32) -> Var {
    let d = tape.sub(a, b);
    let half = tape.scale(d, 0.5);
    let s = tape.sin(half);
    let abs = tape.abs(s);
    tape.scale(abs, 2.0 * rho)
}

/// Chord length between a `B×d` angle tensor and a broadcast `1×d` row.
pub fn chord_vs_row(tape: &mut Tape, batch: Var, row: Var, rho: f32) -> Var {
    let neg_row = tape.neg(row);
    let d = tape.add_row(batch, neg_row);
    let half = tape.scale(d, 0.5);
    let s = tape.sin(half);
    let abs = tape.abs(s);
    tape.scale(abs, 2.0 * rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_nn::Tensor;

    #[test]
    fn start_end_match_geometry_definitions() {
        let mut t = Tape::new();
        let c = t.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let l = t.input(Tensor::from_vec(1, 2, vec![0.8, 0.4]));
        let arc = ArcVar { center: c, len: l };
        let s = arc.start(&mut t, 1.0);
        let e = arc.end(&mut t, 1.0);
        assert!((t.value(s).data[0] - 0.6).abs() < 1e-6);
        assert!((t.value(e).data[0] - 1.4).abs() < 1e-6);
        assert!((t.value(s).data[1] - 1.8).abs() < 1e-6);
        // Reference implementation agreement.
        let g = halk_geometry::Arc::new(1.0, 0.8, 1.0);
        assert!((t.value(s).data[0] - g.start()).abs() < 1e-5);
        assert!((t.value(e).data[0] - g.end()).abs() < 1e-5);
    }

    #[test]
    fn concat_has_double_width() {
        let mut t = Tape::new();
        let c = t.input(Tensor::zeros(3, 4));
        let l = t.input(Tensor::zeros(3, 4));
        let arc = ArcVar { center: c, len: l };
        let cat = arc.start_end_concat(&mut t, 1.0);
        assert_eq!((t.value(cat).rows, t.value(cat).cols), (3, 8));
    }

    #[test]
    fn g_squash_matches_reference() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(1, 3, vec![-2.0, 0.0, 2.0]));
        let g = g_squash(&mut t, x, 0.7);
        for (i, &xi) in [-2.0f32, 0.0, 2.0].iter().enumerate() {
            let expect = halk_geometry::g_squash(xi, 0.7);
            assert!((t.value(g).data[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn chord_matches_reference_and_is_periodic() {
        let mut t = Tape::new();
        let a = t.input(Tensor::from_vec(
            1,
            2,
            vec![0.2, 0.2 + std::f32::consts::TAU],
        ));
        let b = t.input(Tensor::from_vec(1, 2, vec![6.0, 6.0]));
        let c = chord(&mut t, a, b, 1.0);
        let expect = halk_geometry::chord(0.2, 6.0, 1.0);
        assert!((t.value(c).data[0] - expect).abs() < 1e-5);
        // Same physical angle shifted by 2π gives the same chord.
        assert!((t.value(c).data[0] - t.value(c).data[1]).abs() < 1e-4);
    }

    #[test]
    fn chord_vs_row_broadcasts() {
        let mut t = Tape::new();
        let batch = t.input(Tensor::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]));
        let row = t.input(Tensor::from_vec(1, 2, vec![0.5, 0.5]));
        let c = chord_vs_row(&mut t, batch, row, 1.0);
        for r in 0..2 {
            for col in 0..2 {
                let a = t.value(batch).get(r, col);
                let expect = halk_geometry::chord(a, 0.5, 1.0);
                assert!((t.value(c).get(r, col) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn span_angle_scales_by_rho() {
        let mut t = Tape::new();
        let c = t.input(Tensor::zeros(1, 1));
        let l = t.input(Tensor::from_vec(1, 1, vec![3.0]));
        let arc = ArcVar { center: c, len: l };
        let alpha = arc.span_angle(&mut t, 2.0);
        assert!((t.value(alpha).item() - 1.5).abs() < 1e-6);
    }
}
