//! The margin-based negative-sampling loss (Eq. 17) as a reusable tape
//! fragment.
//!
//! Every model in the comparison — HaLk and the three baselines — optimizes
//! the same loss shape: `−log σ(γ − d(v‖q)) − (1/m) Σ log σ(d(v'‖q) − γ)`,
//! optionally with additive per-example penalties (HaLk's group term).
//! Centralizing it here guarantees the offline-time comparison of Fig. 6b
//! measures operator cost, not loss-plumbing differences.

use halk_nn::{Tape, Var};

/// Builds the scalar loss from a positive distance column (`B×1`), the
/// negative distance columns (`m` of them, each `B×1`), a margin `γ`, and
/// optional additive penalty columns (pass `None` for models without one).
///
/// # Panics
/// If `d_negs` is empty.
pub fn margin_loss(
    tape: &mut Tape,
    d_pos: Var,
    pos_penalty: Option<Var>,
    d_negs: &[Var],
    neg_penalties: Option<&[Var]>,
    gamma: f32,
) -> Var {
    assert!(
        !d_negs.is_empty(),
        "margin loss needs at least one negative"
    );
    if let Some(ps) = neg_penalties {
        assert_eq!(ps.len(), d_negs.len());
    }

    // Positive: −log σ(γ − d − pen).
    let neg_d = tape.neg(d_pos);
    let margin = tape.add_scalar(neg_d, gamma);
    let x_pos = match pos_penalty {
        Some(p) => tape.sub(margin, p),
        None => margin,
    };
    let ls_pos = tape.log_sigmoid(x_pos);
    let mean_pos = tape.mean_all(ls_pos);
    let loss_pos = tape.neg(mean_pos);

    // Negatives: −(1/m) Σ log σ(d + pen − γ).
    let mut acc = None;
    for (j, &d) in d_negs.iter().enumerate() {
        let with_pen = match neg_penalties {
            Some(ps) => tape.add(d, ps[j]),
            None => d,
        };
        let x = tape.add_scalar(with_pen, -gamma);
        let ls = tape.log_sigmoid(x);
        acc = Some(match acc {
            Some(prev) => tape.add(prev, ls),
            None => ls,
        });
    }
    let sum = acc.expect("nonempty");
    let avg = tape.scale(sum, 1.0 / d_negs.len() as f32);
    let mean_neg = tape.mean_all(avg);
    let loss_neg = tape.neg(mean_neg);

    tape.add(loss_pos, loss_neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_nn::Tensor;

    #[test]
    fn perfect_separation_gives_small_loss() {
        let mut t = Tape::new();
        let d_pos = t.input(Tensor::from_vec(2, 1, vec![0.0, 0.0]));
        let d_neg = t.input(Tensor::from_vec(2, 1, vec![20.0, 20.0]));
        let loss = margin_loss(&mut t, d_pos, None, &[d_neg], None, 5.0);
        assert!(t.value(loss).item() < 0.05);
    }

    #[test]
    fn inverted_separation_gives_large_loss() {
        let mut t = Tape::new();
        let d_pos = t.input(Tensor::from_vec(2, 1, vec![20.0, 20.0]));
        let d_neg = t.input(Tensor::from_vec(2, 1, vec![0.0, 0.0]));
        let loss = margin_loss(&mut t, d_pos, None, &[d_neg], None, 5.0);
        assert!(t.value(loss).item() > 10.0);
    }

    #[test]
    fn penalty_increases_loss() {
        let mut t = Tape::new();
        let d_pos = t.input(Tensor::from_vec(1, 1, vec![2.0]));
        let d_neg = t.input(Tensor::from_vec(1, 1, vec![8.0]));
        let base = margin_loss(&mut t, d_pos, None, &[d_neg], None, 5.0);
        let base_val = t.value(base).item();
        let mut t2 = Tape::new();
        let d_pos = t2.input(Tensor::from_vec(1, 1, vec![2.0]));
        let d_neg = t2.input(Tensor::from_vec(1, 1, vec![8.0]));
        let pen = t2.input(Tensor::from_vec(1, 1, vec![3.0]));
        let with_pen = margin_loss(&mut t2, d_pos, Some(pen), &[d_neg], None, 5.0);
        assert!(t2.value(with_pen).item() > base_val);
    }

    #[test]
    fn negatives_are_averaged() {
        // Two identical negatives must give the same loss as one.
        let mut t = Tape::new();
        let d_pos = t.input(Tensor::from_vec(1, 1, vec![1.0]));
        let n1 = t.input(Tensor::from_vec(1, 1, vec![4.0]));
        let one = margin_loss(&mut t, d_pos, None, &[n1], None, 3.0);
        let one_val = t.value(one).item();
        let mut t2 = Tape::new();
        let d_pos = t2.input(Tensor::from_vec(1, 1, vec![1.0]));
        let n1 = t2.input(Tensor::from_vec(1, 1, vec![4.0]));
        let n2 = t2.input(Tensor::from_vec(1, 1, vec![4.0]));
        let two = margin_loss(&mut t2, d_pos, None, &[n1, n2], None, 3.0);
        assert!((t2.value(two).item() - one_val).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one negative")]
    fn requires_negatives() {
        let mut t = Tape::new();
        let d_pos = t.input(Tensor::scalar(1.0));
        let _ = margin_loss(&mut t, d_pos, None, &[], None, 3.0);
    }
}
