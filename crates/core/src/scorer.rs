//! Vectorized online scoring kernels (the product hot path).
//!
//! Every table and figure funnels through "rank all entities against a query
//! region", and the naive entity-major loop re-derives per-branch trig for
//! every entity. This module splits that work by who it belongs to:
//!
//! * **Per entity** (changes only when parameters change): the half-angle
//!   trig `sin(θ/2), cos(θ/2)` of every entity coordinate, precomputed once
//!   into an [`EntityTrig`] structure-of-arrays.
//! * **Per query** (changes every query): per-branch, per-dim sin/cos of the
//!   arc's half start/end/center angles plus the inside-distance cap, packed
//!   into an [`ArcScorer`].
//!
//! The chord of Eq. 16, `2ρ|sin((θ−a)/2)|`, then factors through the angle
//! subtraction identity `sin((θ−a)/2) = sin(θ/2)cos(a/2) − cos(θ/2)sin(a/2)`,
//! so the per-entity inner loop is pure multiply/abs/min work — branch-free,
//! trig-free, and contiguous over the SoA slices, which the autovectorizer
//! turns into SIMD. The scalar reference path
//! ([`HalkModel::score_all_scalar`]) is kept for equivalence tests and the
//! regression bench; proptests pin agreement to 1e-4 across all
//! [`DistanceMode`]s (see `tests/scorer_equivalence.rs`).
//!
//! [`HalkModel::score_all_scalar`]: crate::model::HalkModel::score_all_scalar
//!
//! [`BoxScorer`] and [`L1Scorer`] give the interval/point baselines the same
//! SoA treatment (their geometry needs no trig at all), and
//! [`top_k_indices`] replaces full sorts with partial selection everywhere a
//! caller only needs the best `k`.

use crate::config::DistanceMode;
use halk_geometry::Arc;
use halk_nn::Tensor;
use halk_obs::Deadline;
use serde::{Deserialize, Serialize};

/// The fixed scoring-slice size shared by every sweep over the entity
/// table: the parallel `par_chunks_mut` sweep, the deadline-checked
/// `score_until` loop and the streaming [`ArcScorer::top_k_until`] path
/// all quantize work in rows of this many entities. Slice boundaries
/// depend only on the entity count, never on thread or shard counts, so
/// every partition of the table scores bit-identically.
pub const SCORE_SLICE: usize = 1024;

/// Storage precision of the precomputed entity-trig working set — the
/// accuracy/bandwidth knob of the memory diet (DESIGN.md §14). HaLk's
/// ranking only needs score *order* preserved, not bits, so the hot
/// tables can trade precision for bytes. Trig values are bounded in
/// `[-1, 1]`, so the quantized modes use **fixed-point** integers rather
/// than IEEE half floats: on a bounded domain, `i16` fixed point is both
/// strictly more accurate near ±1 than binary16 (3.1e-5 worst-case error
/// vs ~4.9e-4) and far cheaper to decode (integer convert + one multiply,
/// which autovectorizes; no exponent/subnormal handling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Full `f32` storage — the default. Scores are bit-identical to the
    /// historical unquantized path; every bit-identity contract in this
    /// module holds only in this mode.
    #[default]
    F32,
    /// 16-bit fixed point (`round(x · 32767)` stored as `i16`, decoded as
    /// `v / 32767`). Halves resident table bytes; worst-case per-coordinate
    /// error 1.6e-5, which preserves MRR/H@k to well under the 1e-3
    /// equivalence gate on the seed eval.
    I16,
    /// 8-bit fixed point (scale 127) — experimental. Quarters resident
    /// bytes; per-coordinate error up to 4e-3, enough to reorder
    /// near-tied entities. Not covered by the rank-equivalence gate.
    I8,
}

impl Precision {
    /// Bytes one stored trig coordinate pair (`sin`, `cos`) occupies.
    pub fn bytes_per_pair(self) -> usize {
        match self {
            Precision::F32 => 8,
            Precision::I16 => 4,
            Precision::I8 => 2,
        }
    }

    /// The CLI / STATS name (`f32`, `i16`, `i8`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::I16 => "i16",
            Precision::I8 => "i8",
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" | "exact" => Ok(Precision::F32),
            "i16" | "f16" => Ok(Precision::I16), // `f16` accepted as the colloquial 16-bit name
            "i8" => Ok(Precision::I8),
            other => Err(format!("unknown precision '{other}' (f32|i16|i8)")),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const I16_SCALE: f32 = 32767.0;
const I8_SCALE: f32 = 127.0;

#[inline]
fn quantize_i16(x: f32) -> i16 {
    (x * I16_SCALE).round().clamp(-I16_SCALE, I16_SCALE) as i16
}

#[inline]
fn quantize_i8(x: f32) -> i8 {
    (x * I8_SCALE).round().clamp(-I8_SCALE, I8_SCALE) as i8
}

/// The trig arrays in one of the [`Precision`] storage modes.
enum TrigStore {
    F32 {
        half_sin: Vec<f32>,
        half_cos: Vec<f32>,
    },
    I16 {
        half_sin: Vec<i16>,
        half_cos: Vec<i16>,
    },
    I8 {
        half_sin: Vec<i8>,
        half_cos: Vec<i8>,
    },
}

/// Precomputed half-angle trig of an entity table: `sin(θ/2)` and
/// `cos(θ/2)` for every entity coordinate, laid out row-major to match the
/// table. Build once, reuse across every query scored against the same
/// parameters (rebuild after a training step moves the table). Storage
/// [`Precision`] is chosen at build time; the kernels always compute in
/// `f32`, decoding quantized rows on the fly.
pub struct EntityTrig {
    store: TrigStore,
    n_entities: usize,
    dim: usize,
}

impl EntityTrig {
    /// Precomputes trig for an `n×d` table of entity angles at full
    /// precision.
    pub fn new(table: &Tensor) -> Self {
        Self::from_rows(table, 0..table.rows)
    }

    /// [`EntityTrig::new`] at an explicit storage precision.
    pub fn with_precision(table: &Tensor, precision: Precision) -> Self {
        Self::from_rows_with(table, 0..table.rows, precision)
    }

    /// Precomputes trig for the contiguous row range `rows` of a table —
    /// the shard-local constructor: each arc shard owns the trig of its own
    /// entity range and nothing else, so per-shard memory is bounded by the
    /// shard size. Entry `i` of the result is row `rows.start + i` of the
    /// table, element-for-element bit-identical to the same row of a
    /// whole-table [`EntityTrig::new`].
    pub fn from_rows(table: &Tensor, rows: std::ops::Range<usize>) -> Self {
        Self::from_rows_with(table, rows, Precision::F32)
    }

    /// [`EntityTrig::from_rows`] at an explicit storage precision.
    /// Quantization is per element, so the range invariant carries over:
    /// entry `i` equals row `rows.start + i` of a whole-table build at the
    /// same precision, element for element.
    pub fn from_rows_with(
        table: &Tensor,
        rows: std::ops::Range<usize>,
        precision: Precision,
    ) -> Self {
        assert!(rows.end <= table.rows, "trig row range out of bounds");
        let d = table.cols;
        let data = &table.data[rows.start * d..rows.end * d];
        let store = match precision {
            Precision::F32 => TrigStore::F32 {
                half_sin: data.iter().map(|&t| (t * 0.5).sin()).collect(),
                half_cos: data.iter().map(|&t| (t * 0.5).cos()).collect(),
            },
            Precision::I16 => TrigStore::I16 {
                half_sin: data
                    .iter()
                    .map(|&t| quantize_i16((t * 0.5).sin()))
                    .collect(),
                half_cos: data
                    .iter()
                    .map(|&t| quantize_i16((t * 0.5).cos()))
                    .collect(),
            },
            Precision::I8 => TrigStore::I8 {
                half_sin: data.iter().map(|&t| quantize_i8((t * 0.5).sin())).collect(),
                half_cos: data.iter().map(|&t| quantize_i8((t * 0.5).cos())).collect(),
            },
        };
        Self {
            store,
            n_entities: rows.len(),
            dim: d,
        }
    }

    /// Number of entities covered.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The storage precision this table was built at.
    pub fn precision(&self) -> Precision {
        match self.store {
            TrigStore::F32 { .. } => Precision::F32,
            TrigStore::I16 { .. } => Precision::I16,
            TrigStore::I8 { .. } => Precision::I8,
        }
    }

    /// Bytes resident in the trig arrays (the memory-diet number STATS
    /// reports; excludes the fixed-size struct header).
    pub fn resident_bytes(&self) -> usize {
        self.n_entities * self.dim * self.precision().bytes_per_pair()
    }

    /// The raw `(half_sin, half_cos)` arrays of a full-precision table —
    /// `None` for quantized stores. This is the snapshot serialization
    /// surface: an `F32` table's arrays roundtrip bit-exactly through
    /// [`EntityTrig::from_f32_parts`].
    pub fn f32_parts(&self) -> Option<(&[f32], &[f32])> {
        match &self.store {
            TrigStore::F32 { half_sin, half_cos } => Some((half_sin, half_cos)),
            _ => None,
        }
    }

    /// Rebuilds a full-precision table from arrays previously obtained via
    /// [`EntityTrig::f32_parts`] — the snapshot fast-boot constructor that
    /// skips the `O(n_entities · dim)` sin/cos sweep. Shape mismatches are
    /// a typed error (snapshot decode must never panic).
    pub fn from_f32_parts(
        half_sin: Vec<f32>,
        half_cos: Vec<f32>,
        n_entities: usize,
        dim: usize,
    ) -> Result<Self, String> {
        if half_sin.len() != n_entities * dim || half_cos.len() != n_entities * dim {
            return Err(format!(
                "trig arrays hold {}/{} values, {n_entities}x{dim} table needs {}",
                half_sin.len(),
                half_cos.len(),
                n_entities * dim
            ));
        }
        Ok(Self {
            store: TrigStore::F32 { half_sin, half_cos },
            n_entities,
            dim,
        })
    }

    /// Re-slices rows of a full-precision table into a (possibly
    /// quantized) shard table. Quantization applies the same per-element
    /// mapping as [`EntityTrig::from_rows_with`] to the same stored f32
    /// values, so the result is element-for-element bit-identical to
    /// building the shard from the angle table directly — that equality is
    /// what lets a snapshot-booted server serve the same bits as a
    /// TSV-booted one.
    ///
    /// # Panics
    /// If `self` is not an `F32` table or `rows` is out of bounds — both
    /// are caller bugs (callers hold the full-precision table by
    /// construction).
    pub fn slice_rows(&self, rows: std::ops::Range<usize>, precision: Precision) -> Self {
        assert!(rows.end <= self.n_entities, "trig row range out of bounds");
        let d = self.dim;
        let (half_sin, half_cos) = self
            .f32_parts()
            .expect("slice_rows requires a full-precision source table");
        let (sin, cos) = (
            &half_sin[rows.start * d..rows.end * d],
            &half_cos[rows.start * d..rows.end * d],
        );
        let store = match precision {
            Precision::F32 => TrigStore::F32 {
                half_sin: sin.to_vec(),
                half_cos: cos.to_vec(),
            },
            Precision::I16 => TrigStore::I16 {
                half_sin: sin.iter().map(|&v| quantize_i16(v)).collect(),
                half_cos: cos.iter().map(|&v| quantize_i16(v)).collect(),
            },
            Precision::I8 => TrigStore::I8 {
                half_sin: sin.iter().map(|&v| quantize_i8(v)).collect(),
                half_cos: cos.iter().map(|&v| quantize_i8(v)).collect(),
            },
        };
        Self {
            store,
            n_entities: rows.len(),
            dim: d,
        }
    }

    /// Decodes element `j` (row-major) to the `(sin, cos)` pair the kernel
    /// computes with — exact storage bits in `F32` mode, dequantized values
    /// otherwise. Diagnostics and tests; the hot path decodes in bulk.
    pub fn decoded(&self, j: usize) -> (f32, f32) {
        match &self.store {
            TrigStore::F32 { half_sin, half_cos } => (half_sin[j], half_cos[j]),
            TrigStore::I16 { half_sin, half_cos } => (
                half_sin[j] as f32 * (1.0 / I16_SCALE),
                half_cos[j] as f32 * (1.0 / I16_SCALE),
            ),
            TrigStore::I8 { half_sin, half_cos } => (
                half_sin[j] as f32 * (1.0 / I8_SCALE),
                half_cos[j] as f32 * (1.0 / I8_SCALE),
            ),
        }
    }
}

/// A bounded top-k accumulator: a max-heap of the `k` best (lowest)
/// `(score, index)` entries seen so far, with the *worst* kept entry at the
/// root so a streaming producer can reject most rows with one comparison.
///
/// Ordering is ascending score with ties broken by index — via
/// `f32::total_cmp`, which on the scorer's output domain (finite,
/// non-negative: every kernel score is a `min`-fold of sums of absolute
/// values times `2ρ`) coincides exactly with the `partial_cmp`-plus-index
/// order of [`top_k_indices`]. Offering every row of a score vector
/// therefore yields *bit-identically* the same selection as
/// `top_k_indices`, in any offer order and under any partition of the rows
/// (distinct indices make the total order strict, so the k-smallest set is
/// unique). The backing buffer is reusable via [`TopK::reset`], so pooled
/// callers (the pruning engine, the serve workers) allocate nothing per
/// query in steady state.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Max-heap by `(score, index)`; `heap[0]` is the worst kept entry.
    heap: Vec<(f32, u32)>,
}

/// The selection order: ascending score, ties broken by ascending index.
#[inline]
fn rank_cmp(a: (f32, u32), b: (f32, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

impl TopK {
    /// An empty accumulator keeping the best `k` entries.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: Vec::with_capacity(k.min(4096)),
        }
    }

    /// Clears the accumulator for a new sweep with bound `k`, keeping the
    /// backing allocation.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    /// The configured bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Entries currently held (≤ `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entry has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers one `(index, score)` row. Kept iff it ranks among the best
    /// `k` seen so far; once the heap is full the common case is a single
    /// comparison against the root.
    #[inline]
    pub fn offer(&mut self, idx: u32, score: f32) {
        if self.heap.len() < self.k {
            self.heap.push((score, idx));
            self.sift_up(self.heap.len() - 1);
            return;
        }
        if self.k == 0 || rank_cmp((score, idx), self.heap[0]).is_ge() {
            return;
        }
        self.heap[0] = (score, idx);
        self.sift_down(0);
    }

    /// The kept entries in unspecified (heap) order, as `(index, score)`.
    pub fn entries(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.heap.iter().map(|&(s, i)| (i, s))
    }

    /// Merges another accumulator's entries into this one (the coordinator
    /// side of merge-k). Order-independent: the union's k-smallest set is
    /// unique under the strict total order.
    pub fn absorb(&mut self, other: &TopK) {
        for (i, s) in other.entries() {
            self.offer(i, s);
        }
    }

    /// Drains the kept entries into `out` (cleared first) in ascending rank
    /// order — the order [`top_k_indices`] returns — keeping both
    /// allocations for reuse.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<(u32, f32)>) {
        self.heap.sort_unstable_by(|&a, &b| rank_cmp(a, b));
        out.clear();
        out.extend(self.heap.iter().map(|&(s, i)| (i, s)));
        self.heap.clear();
    }

    /// The kept entries in ascending rank order, consuming the accumulator.
    pub fn into_sorted(mut self) -> Vec<(u32, f32)> {
        let mut out = Vec::new();
        self.drain_sorted_into(&mut out);
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if rank_cmp(self.heap[i], self.heap[parent]).is_le() {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && rank_cmp(self.heap[l], self.heap[largest]).is_gt() {
                largest = l;
            }
            if r < n && rank_cmp(self.heap[r], self.heap[largest]).is_gt() {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

/// One DNF branch's arc parameters as structure-of-arrays over dims: sin/cos
/// of the half start/end/center angles, the inside-distance cap and the
/// ZeroedInside containment threshold, all in "|sin|" units (the shared
/// `2ρ` chord factor is applied once per score).
struct BranchSoa {
    sin_s: Vec<f32>,
    cos_s: Vec<f32>,
    sin_e: Vec<f32>,
    cos_e: Vec<f32>,
    sin_c: Vec<f32>,
    cos_c: Vec<f32>,
    /// `|sin(half_angle/2)|` — the Eq. 16 inside-distance cap.
    cap: Vec<f32>,
    /// `sin(min(half_angle + 1e-6, π)/2)` — `|sin((θ−c)/2)| ≤ thr` iff
    /// `Arc::contains_angle(θ)` (both sides are monotone images of the
    /// angular offset on `[0, π]`).
    thr: Vec<f32>,
}

const MODE_LITERAL: u8 = 0;
const MODE_CENTER: u8 = 1;
const MODE_ZEROED: u8 = 2;

/// A query region compiled for scoring: per-branch SoA arc trig plus the
/// distance-mode/η/ρ configuration. Scores are identical (within fp
/// tolerance) to the scalar per-arc formulas in `halk_geometry::Arc`.
pub struct ArcScorer {
    branches: Vec<BranchSoa>,
    dim: usize,
    rho: f32,
    eta: f32,
    mode: DistanceMode,
}

impl ArcScorer {
    /// Compiles DNF branches of [`Arc`]s (all sharing radius `rho`).
    pub fn from_arcs(branches: &[Vec<Arc>], rho: f32, eta: f32, mode: DistanceMode) -> Self {
        let params: Vec<Vec<(f32, f32)>> = branches
            .iter()
            .map(|arcs| arcs.iter().map(|a| (a.center, a.half_angle())).collect())
            .collect();
        Self::from_params(&params, rho, eta, mode)
    }

    /// Compiles DNF branches of raw `(center, half_angle)` pairs per dim.
    /// Angles need not be normalized: the kernel only uses them through
    /// `|sin(·/2)|`, which is invariant under full turns.
    pub fn from_params(
        branches: &[Vec<(f32, f32)>],
        rho: f32,
        eta: f32,
        mode: DistanceMode,
    ) -> Self {
        let dim = branches.first().map_or(0, Vec::len);
        let compiled = branches
            .iter()
            .map(|arcs| {
                assert_eq!(arcs.len(), dim, "ragged branch dimensionality");
                let mut b = BranchSoa {
                    sin_s: Vec::with_capacity(dim),
                    cos_s: Vec::with_capacity(dim),
                    sin_e: Vec::with_capacity(dim),
                    cos_e: Vec::with_capacity(dim),
                    sin_c: Vec::with_capacity(dim),
                    cos_c: Vec::with_capacity(dim),
                    cap: Vec::with_capacity(dim),
                    thr: Vec::with_capacity(dim),
                };
                for &(center, half) in arcs {
                    let start = center - half;
                    let end = center + half;
                    b.sin_s.push((start * 0.5).sin());
                    b.cos_s.push((start * 0.5).cos());
                    b.sin_e.push((end * 0.5).sin());
                    b.cos_e.push((end * 0.5).cos());
                    b.sin_c.push((center * 0.5).sin());
                    b.cos_c.push((center * 0.5).cos());
                    b.cap.push((half * 0.5).sin().abs());
                    b.thr
                        .push(((half + 1e-6).min(std::f32::consts::PI) * 0.5).sin());
                }
                b
            })
            .collect();
        Self {
            branches: compiled,
            dim,
            rho,
            eta,
            mode,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Scores every entity of `trig` into `out` (cleared and refilled; lower
    /// is better; unions take the min across branches). Entities with no
    /// branch score `f32::INFINITY`, matching the scalar fold.
    pub fn score_into(&self, trig: &EntityTrig, out: &mut Vec<f32>) {
        out.clear();
        out.resize(trig.n_entities, f32::INFINITY);
        self.score_slice(trig, 0, out);
    }

    /// Scores the contiguous entity rows `[row0, row0 + out.len())`, folding
    /// each score into `out` with `min` (pre-fill with `f32::INFINITY` for a
    /// plain score). Rows are scored independently, so any partition of the
    /// entity range — including the sharded parallel sweep — produces
    /// bit-identical results to one full-table pass.
    pub fn score_slice(&self, trig: &EntityTrig, row0: usize, out: &mut [f32]) {
        assert_eq!(trig.dim, self.dim, "entity/query dimensionality mismatch");
        assert!(
            row0 + out.len() <= trig.n_entities,
            "entity slice out of range"
        );
        match self.mode {
            DistanceMode::LiteralEq16 => self.score_table::<MODE_LITERAL>(trig, row0, out),
            DistanceMode::CenterAnchored => self.score_table::<MODE_CENTER>(trig, row0, out),
            DistanceMode::ZeroedInside => self.score_table::<MODE_ZEROED>(trig, row0, out),
        }
    }

    /// [`ArcScorer::score_slice`] under a [`Deadline`], checked once per
    /// `slice_rows` rows (the slice boundary — never per entity, so the
    /// inner kernel stays branch-free). Returns the number of rows scored,
    /// always a multiple of `slice_rows` except at the end of the table;
    /// rows beyond it are untouched. Scored prefixes are bit-identical to
    /// the same rows of a full [`ArcScorer::score_slice`] pass, because
    /// rows are scored independently.
    pub fn score_until(
        &self,
        trig: &EntityTrig,
        row0: usize,
        out: &mut [f32],
        slice_rows: usize,
        deadline: &Deadline,
    ) -> usize {
        let slice_rows = slice_rows.max(1);
        let mut done = 0;
        while done < out.len() {
            if deadline.expired() {
                return done;
            }
            let n = slice_rows.min(out.len() - done);
            self.score_slice(trig, row0 + done, &mut out[done..done + n]);
            done += n;
        }
        done
    }

    /// Streaming bounded top-k over the rows of `trig` under a
    /// [`Deadline`]: scores [`SCORE_SLICE`]-row slices into a small stack
    /// scratch and offers each row into `heap`, never materializing a
    /// full score vector. `global_row0` is the table-global index of
    /// `trig`'s first row (the shard offset), so offered indices are
    /// table-global. Returns the number of rows scored; the deadline is
    /// checked once per slice like [`ArcScorer::score_until`].
    ///
    /// Offering rows through a [`TopK`] selects bit-identically the same
    /// entries as [`top_k_indices`] over a full score vector (see the
    /// [`TopK`] ordering contract), so shard-local sweeps merged by
    /// [`TopK::absorb`] reproduce the full-vector reference exactly.
    pub fn top_k_until(
        &self,
        trig: &EntityTrig,
        global_row0: usize,
        heap: &mut TopK,
        deadline: &Deadline,
    ) -> usize {
        let n = trig.n_entities;
        let mut scratch = [0.0f32; SCORE_SLICE];
        let mut done = 0;
        while done < n {
            if deadline.expired() {
                return done;
            }
            let take = SCORE_SLICE.min(n - done);
            let out = &mut scratch[..take];
            out.fill(f32::INFINITY); // score_slice min-folds into `out`
            self.score_slice(trig, done, out);
            for (j, &s) in out.iter().enumerate() {
                heap.offer((global_row0 + done + j) as u32, s);
            }
            done += take;
        }
        done
    }

    /// Convenience wrapper over [`ArcScorer::score_into`].
    pub fn score_all(&self, trig: &EntityTrig) -> Vec<f32> {
        let mut out = Vec::new();
        self.score_into(trig, &mut out);
        out
    }

    /// Scores only the rows `ids` of an angle table (the LSH candidate
    /// path), computing the per-row trig on the fly: `out[i]` is the score
    /// of entity `ids[i]`.
    pub fn score_rows_into(&self, table: &Tensor, ids: &[u32], out: &mut Vec<f32>) {
        assert_eq!(table.cols, self.dim, "entity/query dimensionality mismatch");
        out.clear();
        out.reserve(ids.len());
        let mut sh = vec![0.0f32; self.dim];
        let mut ch = vec![0.0f32; self.dim];
        for &e in ids {
            let row = table.row(e as usize);
            for ((s, c), &t) in sh.iter_mut().zip(ch.iter_mut()).zip(row) {
                *s = (t * 0.5).sin();
                *c = (t * 0.5).cos();
            }
            let score = match self.mode {
                DistanceMode::LiteralEq16 => self.score_row::<MODE_LITERAL>(&sh, &ch),
                DistanceMode::CenterAnchored => self.score_row::<MODE_CENTER>(&sh, &ch),
                DistanceMode::ZeroedInside => self.score_row::<MODE_ZEROED>(&sh, &ch),
            };
            out.push(score);
        }
    }

    fn score_table<const MODE: u8>(&self, trig: &EntityTrig, row0: usize, out: &mut [f32]) {
        let d = self.dim;
        if d == 0 {
            return;
        }
        match &trig.store {
            TrigStore::F32 { half_sin, half_cos } => {
                // The historical unquantized loop, untouched: `F32` scores
                // stay bit-identical to every pre-quantization release.
                let rows_s = half_sin[row0 * d..].chunks_exact(d);
                let rows_c = half_cos[row0 * d..].chunks_exact(d);
                for ((sh, ch), slot) in rows_s.zip(rows_c).zip(out.iter_mut()) {
                    *slot = slot.min(self.score_row::<MODE>(sh, ch));
                }
            }
            TrigStore::I16 { half_sin, half_cos } => {
                self.score_quantized::<MODE, _>(half_sin, half_cos, 1.0 / I16_SCALE, row0, out)
            }
            TrigStore::I8 { half_sin, half_cos } => {
                self.score_quantized::<MODE, _>(half_sin, half_cos, 1.0 / I8_SCALE, row0, out)
            }
        }
    }

    /// Quantized-table sweep: each row is dequantized once into a small
    /// scratch pair (an integer convert plus one multiply per element —
    /// both autovectorize) and then scored by the same branch-free kernel
    /// as the `f32` path, so the decode cost amortizes over all DNF
    /// branches of the query.
    fn score_quantized<const MODE: u8, Q: Copy + Into<f32>>(
        &self,
        half_sin: &[Q],
        half_cos: &[Q],
        inv_scale: f32,
        row0: usize,
        out: &mut [f32],
    ) {
        let d = self.dim;
        let mut sh = vec![0.0f32; d];
        let mut ch = vec![0.0f32; d];
        let rows_s = half_sin[row0 * d..].chunks_exact(d);
        let rows_c = half_cos[row0 * d..].chunks_exact(d);
        for ((qs, qc), slot) in rows_s.zip(rows_c).zip(out.iter_mut()) {
            for j in 0..d {
                sh[j] = qs[j].into() * inv_scale;
                ch[j] = qc[j].into() * inv_scale;
            }
            *slot = slot.min(self.score_row::<MODE>(&sh, &ch));
        }
    }

    /// Min-over-branches score of one entity from its half-angle trig row.
    #[inline]
    fn score_row<const MODE: u8>(&self, sh: &[f32], ch: &[f32]) -> f32 {
        let d = self.dim;
        let mut best = f32::INFINITY;
        for br in &self.branches {
            let (cos_s, sin_s) = (&br.cos_s[..d], &br.sin_s[..d]);
            let (cos_e, sin_e) = (&br.cos_e[..d], &br.sin_e[..d]);
            let (cos_c, sin_c) = (&br.cos_c[..d], &br.sin_c[..d]);
            let (cap, thr) = (&br.cap[..d], &br.thr[..d]);
            let mut acc_o = 0.0f32;
            let mut acc_i = 0.0f32;
            for j in 0..d {
                // sin((θ−a)/2) = sin(θ/2)cos(a/2) − cos(θ/2)sin(a/2).
                let s_s = sh[j] * cos_s[j] - ch[j] * sin_s[j];
                let s_e = sh[j] * cos_e[j] - ch[j] * sin_e[j];
                let s_c = sh[j] * cos_c[j] - ch[j] * sin_c[j];
                let endpoints = s_s.abs().min(s_e.abs());
                let d_o = if MODE == MODE_CENTER {
                    endpoints.min(s_c.abs())
                } else if MODE == MODE_ZEROED {
                    // Branch-free containment mask: 1.0 outside the arc.
                    endpoints * f32::from(s_c.abs() > thr[j])
                } else {
                    endpoints
                };
                acc_o += d_o;
                acc_i += s_c.abs().min(cap[j]);
            }
            best = best.min(acc_o + self.eta * acc_i);
        }
        2.0 * self.rho * best
    }
}

/// NewLook-style interval scoring compiled to SoA: per branch and dim a
/// `(center, offset)` box, scored as
/// `Σ max(|x−c|−o, 0) + η·min(|x−c|, o)` with the min over branches.
pub struct BoxScorer {
    centers: Vec<Vec<f32>>,
    offsets: Vec<Vec<f32>>,
    dim: usize,
    eta: f32,
}

impl BoxScorer {
    /// Compiles DNF branches of `(center, offset)` pairs per dim.
    pub fn new(branches: &[Vec<(f32, f32)>], eta: f32) -> Self {
        let dim = branches.first().map_or(0, Vec::len);
        let centers = branches
            .iter()
            .map(|b| b.iter().map(|&(c, _)| c).collect())
            .collect();
        let offsets = branches
            .iter()
            .map(|b| b.iter().map(|&(_, o)| o).collect())
            .collect();
        Self {
            centers,
            offsets,
            dim,
            eta,
        }
    }

    /// Scores every row of a raw-value table into `out` (cleared and
    /// refilled).
    pub fn score_into(&self, table: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(table.cols, self.dim, "entity/query dimensionality mismatch");
        out.clear();
        out.resize(table.rows, f32::INFINITY);
        let d = self.dim;
        if d == 0 {
            return;
        }
        for (c, o) in self.centers.iter().zip(&self.offsets) {
            let (c, o) = (&c[..d], &o[..d]);
            for (row, slot) in table.data.chunks_exact(d).zip(out.iter_mut()) {
                let mut acc = 0.0f32;
                for j in 0..d {
                    let a = (row[j] - c[j]).abs();
                    acc += (a - o[j]).max(0.0) + self.eta * a.min(o[j]);
                }
                *slot = slot.min(acc);
            }
        }
    }
}

/// Plain L1 point scoring (the MLPMix baseline): per branch a center vector,
/// scored as `Σ|x−c|` with the min over branches.
pub struct L1Scorer {
    centers: Vec<Vec<f32>>,
    dim: usize,
}

impl L1Scorer {
    /// Compiles DNF branches of center vectors.
    pub fn new(branches: &[Vec<f32>]) -> Self {
        let dim = branches.first().map_or(0, Vec::len);
        Self {
            centers: branches.to_vec(),
            dim,
        }
    }

    /// Scores every row of a raw-value table into `out` (cleared and
    /// refilled).
    pub fn score_into(&self, table: &Tensor, out: &mut Vec<f32>) {
        assert_eq!(table.cols, self.dim, "entity/query dimensionality mismatch");
        out.clear();
        out.resize(table.rows, f32::INFINITY);
        let d = self.dim;
        if d == 0 {
            return;
        }
        for c in &self.centers {
            let c = &c[..d];
            for (row, slot) in table.data.chunks_exact(d).zip(out.iter_mut()) {
                let mut acc = 0.0f32;
                for j in 0..d {
                    acc += (row[j] - c[j]).abs();
                }
                *slot = slot.min(acc);
            }
        }
    }
}

/// Indices of the `k` lowest scores, ascending by score with ties broken by
/// index — the same order a stable full sort produces, but via `O(n)`
/// partial selection plus an `O(k log k)` sort of the winners.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &u32, b: &u32| {
        scores[*a as usize]
            .partial_cmp(&scores[*b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(b))
    };
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_unstable_by(cmp);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_geometry::TAU;

    fn scalar_score(arcs: &[Vec<Arc>], theta: &[f32], eta: f32, mode: DistanceMode) -> f32 {
        arcs.iter()
            .map(|branch| {
                branch
                    .iter()
                    .zip(theta)
                    .map(|(a, &t)| match mode {
                        DistanceMode::LiteralEq16 => a.dist(t, eta),
                        DistanceMode::ZeroedInside => {
                            a.outside_dist_zeroed(t) + eta * a.inside_dist(t)
                        }
                        DistanceMode::CenterAnchored => {
                            let d_o = a
                                .outside_dist(t)
                                .min(halk_geometry::chord(t, a.center, a.rho));
                            d_o + eta * a.inside_dist(t)
                        }
                    })
                    .sum::<f32>()
            })
            .fold(f32::INFINITY, f32::min)
    }

    fn grid_arcs(rho: f32) -> Vec<Vec<Arc>> {
        vec![
            vec![Arc::new(0.3, 0.8 * rho, rho), Arc::new(5.9, 2.0 * rho, rho)],
            vec![Arc::new(2.0, 0.0, rho), Arc::new(4.0, TAU * rho, rho)],
        ]
    }

    #[test]
    fn matches_scalar_on_grid_all_modes() {
        let rho = 1.0;
        let eta = 0.05;
        let arcs = grid_arcs(rho);
        let n = 64;
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            data.push(i as f32 * TAU / n as f32);
            data.push((i as f32 * 0.77 + 1.3) % TAU);
        }
        let table = Tensor::from_vec(n, 2, data);
        let trig = EntityTrig::new(&table);
        for mode in [
            DistanceMode::LiteralEq16,
            DistanceMode::CenterAnchored,
            DistanceMode::ZeroedInside,
        ] {
            let scorer = ArcScorer::from_arcs(&arcs, rho, eta, mode);
            let fast = scorer.score_all(&trig);
            for (e, &got) in fast.iter().enumerate() {
                let want = scalar_score(&arcs, table.row(e), eta, mode);
                assert!(
                    (got - want).abs() < 1e-4,
                    "{mode:?} entity {e}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn score_rows_matches_full_table() {
        let rho = 1.0;
        let arcs = grid_arcs(rho);
        let table = Tensor::from_vec(4, 2, vec![0.1, 0.2, 3.0, 4.0, 5.5, 0.9, 2.2, 2.3]);
        let scorer = ArcScorer::from_arcs(&arcs, rho, 0.1, DistanceMode::CenterAnchored);
        let full = scorer.score_all(&EntityTrig::new(&table));
        let mut subset = Vec::new();
        scorer.score_rows_into(&table, &[3, 0, 2], &mut subset);
        assert_eq!(subset, vec![full[3], full[0], full[2]]);
    }

    #[test]
    fn empty_branches_score_infinity() {
        let scorer = ArcScorer::from_arcs(&[], 1.0, 0.1, DistanceMode::LiteralEq16);
        let table = Tensor::from_vec(2, 0, vec![]);
        let out = scorer.score_all(&EntityTrig::new(&table));
        assert_eq!(out, vec![f32::INFINITY; 2]);
    }

    #[test]
    fn box_scorer_matches_scalar() {
        let branches = vec![
            vec![(0.5f32, 0.2f32), (-1.0, 0.8)],
            vec![(2.0, 0.0), (0.0, 3.0)],
        ];
        let eta = 0.3;
        let table = Tensor::from_vec(3, 2, vec![0.4, -0.9, 2.5, 0.1, -4.0, 7.0]);
        let scorer = BoxScorer::new(&branches, eta);
        let mut out = Vec::new();
        scorer.score_into(&table, &mut out);
        for (e, &got) in out.iter().enumerate() {
            let want = branches
                .iter()
                .map(|b| {
                    b.iter()
                        .zip(table.row(e))
                        .map(|(&(c, o), &x)| {
                            let a = (x - c).abs();
                            (a - o).max(0.0) + eta * a.min(o)
                        })
                        .sum::<f32>()
                })
                .fold(f32::INFINITY, f32::min);
            assert!((got - want).abs() < 1e-5);
        }
    }

    #[test]
    fn l1_scorer_matches_scalar() {
        let branches = vec![vec![1.0f32, -2.0], vec![0.0, 0.0]];
        let table = Tensor::from_vec(2, 2, vec![0.5, 0.5, -3.0, 2.0]);
        let scorer = L1Scorer::new(&branches);
        let mut out = Vec::new();
        scorer.score_into(&table, &mut out);
        assert!((out[0] - 1.0f32.min(3.0)).abs() < 1e-6);
        assert!((out[1] - 5.0f32.min(8.0)).abs() < 1e-6);
    }

    #[test]
    fn score_until_prefix_is_bit_identical_and_stops_on_expiry() {
        use halk_obs::Clock;
        let rho = 1.0;
        let arcs = grid_arcs(rho);
        let n = 64;
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            data.push(i as f32 * TAU / n as f32);
            data.push((i as f32 * 0.77 + 1.3) % TAU);
        }
        let table = Tensor::from_vec(n, 2, data);
        let trig = EntityTrig::new(&table);
        let scorer = ArcScorer::from_arcs(&arcs, rho, 0.05, DistanceMode::LiteralEq16);
        let full = scorer.score_all(&trig);

        // Unarmed deadline: everything scored, bit-identical to score_all.
        let mut out = vec![f32::INFINITY; n];
        let done = scorer.score_until(&trig, 0, &mut out, 16, &Deadline::never());
        assert_eq!(done, n);
        assert!(full
            .iter()
            .zip(&out)
            .all(|(a, b)| a.to_bits() == b.to_bits()));

        // An expired mock deadline stops at the first slice boundary:
        // zero rows scored, the buffer untouched.
        let (clock, now) = Clock::mock();
        let d = Deadline::at_ns(&clock, 1);
        now.store(5, std::sync::atomic::Ordering::SeqCst);
        let mut partial = vec![f32::INFINITY; n];
        assert_eq!(scorer.score_until(&trig, 0, &mut partial, 16, &d), 0);
        assert!(partial.iter().all(|s| s.is_infinite()));

        // Partial run resumed from row `done` equals the full pass.
        let mut halves = vec![f32::INFINITY; n];
        let first = scorer.score_until(&trig, 0, &mut halves[..n / 2], 16, &Deadline::never());
        assert_eq!(first, n / 2);
        let second = scorer.score_until(&trig, n / 2, &mut halves[n / 2..], 16, &Deadline::never());
        assert_eq!(second, n / 2);
        assert!(full
            .iter()
            .zip(&halves)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn top_k_matches_stable_sort() {
        let scores = vec![3.0, 1.0, 2.0, 1.0, 0.5, 2.0, 9.0];
        let got = top_k_indices(&scores, 4);
        // Stable order: 0.5@4, 1.0@1, 1.0@3, 2.0@2.
        assert_eq!(got, vec![4, 1, 3, 2]);
        assert_eq!(top_k_indices(&scores, 0), Vec::<u32>::new());
        assert_eq!(top_k_indices(&scores, 100).len(), scores.len());
    }

    #[test]
    fn topk_heap_matches_reference_with_ties_and_reuse() {
        let scores = vec![3.0, 1.0, 2.0, 1.0, 0.5, 2.0, 9.0, 1.0];
        for k in [0, 1, 4, scores.len(), scores.len() + 5] {
            let mut heap = TopK::new(k);
            for (i, &s) in scores.iter().enumerate() {
                heap.offer(i as u32, s);
            }
            let got: Vec<u32> = heap.into_sorted().iter().map(|&(i, _)| i).collect();
            assert_eq!(got, top_k_indices(&scores, k), "k={k}");
        }
        // reset() keeps the buffer but clears state and changes the bound.
        let mut heap = TopK::new(2);
        heap.offer(0, 1.0);
        heap.reset(3);
        for (i, &s) in scores.iter().enumerate() {
            heap.offer(i as u32, s);
        }
        let mut out = Vec::new();
        heap.drain_sorted_into(&mut out);
        assert_eq!(out.iter().map(|&(i, _)| i).collect::<Vec<_>>(), [4, 1, 3]);
        assert!(heap.is_empty());
    }

    #[test]
    fn topk_absorb_is_order_independent() {
        let scores: Vec<f32> = (0..200).map(|i| ((i * 37) % 50) as f32 * 0.25).collect();
        let want = top_k_indices(&scores, 7);
        // Split the offers across three heaps in a scrambled order, then merge.
        let mut parts = [TopK::new(7), TopK::new(7), TopK::new(7)];
        for (i, &s) in scores.iter().enumerate().rev() {
            parts[i % 3].offer(i as u32, s);
        }
        let mut merged = TopK::new(7);
        for p in &parts {
            merged.absorb(p);
        }
        let got: Vec<u32> = merged.into_sorted().iter().map(|&(i, _)| i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn trig_from_rows_matches_full_table() {
        let table = Tensor::from_vec(4, 2, vec![0.1, 0.2, 3.0, 4.0, 5.5, 0.9, 2.2, 2.3]);
        for p in [Precision::F32, Precision::I16, Precision::I8] {
            let full = EntityTrig::with_precision(&table, p);
            let part = EntityTrig::from_rows_with(&table, 1..3, p);
            assert_eq!(part.n_entities(), 2);
            assert_eq!(part.precision(), p);
            for j in 0..4 {
                let (ps, pc) = part.decoded(j);
                let (fs, fc) = full.decoded(2 + j);
                assert_eq!(ps.to_bits(), fs.to_bits(), "{p} sin {j}");
                assert_eq!(pc.to_bits(), fc.to_bits(), "{p} cos {j}");
            }
        }
    }

    #[test]
    fn precision_parses_and_sizes() {
        assert_eq!("f32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("f16".parse::<Precision>().unwrap(), Precision::I16);
        assert_eq!("i16".parse::<Precision>().unwrap(), Precision::I16);
        assert_eq!("i8".parse::<Precision>().unwrap(), Precision::I8);
        assert!("f64".parse::<Precision>().is_err());
        assert_eq!(Precision::default(), Precision::F32);
        let table = Tensor::from_vec(4, 2, vec![0.0; 8]);
        assert_eq!(EntityTrig::new(&table).resident_bytes(), 4 * 2 * 8);
        assert_eq!(
            EntityTrig::with_precision(&table, Precision::I16).resident_bytes(),
            4 * 2 * 4
        );
        assert_eq!(
            EntityTrig::with_precision(&table, Precision::I8).resident_bytes(),
            4 * 2 * 2
        );
    }

    #[test]
    fn quantized_scores_track_exact_within_error_bound() {
        let rho = 1.0;
        let eta = 0.05;
        let arcs = grid_arcs(rho);
        let n = 128;
        let d = 2;
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            data.push(i as f32 * TAU / n as f32);
            data.push((i as f32 * 0.77 + 1.3) % TAU);
        }
        let table = Tensor::from_vec(n, d, data);
        let exact = EntityTrig::new(&table);
        for mode in [
            DistanceMode::LiteralEq16,
            DistanceMode::CenterAnchored,
            DistanceMode::ZeroedInside,
        ] {
            let scorer = ArcScorer::from_arcs(&arcs, rho, eta, mode);
            let want = scorer.score_all(&exact);
            // Worst-case per-coordinate decode error is 1/(2·scale); each
            // coordinate contributes ≤ 2 decoded values per distance term,
            // so bound the score gap by a small multiple of dims · step
            // (the ZeroedInside containment mask can flip on boundary
            // entities, so skip exact-boundary rows there via the bound).
            for (p, step) in [
                (Precision::I16, 0.5 / I16_SCALE),
                (Precision::I8, 0.5 / I8_SCALE),
            ] {
                let q = EntityTrig::with_precision(&table, p);
                let got = scorer.score_all(&q);
                let tol = 2.0 * rho * (d as f32) * 8.0 * step + 1e-5;
                let mut close = 0;
                for (e, (&a, &b)) in want.iter().zip(&got).enumerate() {
                    if (a - b).abs() <= tol {
                        close += 1;
                    } else {
                        // Mask flips under ZeroedInside can move a term by
                        // the full endpoint distance; allow only there.
                        assert_eq!(
                            mode,
                            DistanceMode::ZeroedInside,
                            "{p} {mode:?} entity {e}: {a} vs {b} (tol {tol})"
                        );
                    }
                }
                assert!(close >= n - 2, "{p} {mode:?}: only {close}/{n} close");
            }
        }
    }

    #[test]
    fn quantized_top_k_ranks_match_exact_on_separated_scores() {
        // Rank equivalence on a table whose score gaps dwarf the i16
        // quantization step — the regime the serving gate runs in.
        let rho = 1.0;
        let arcs = grid_arcs(rho);
        let n = SCORE_SLICE + 77;
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            data.push(i as f32 * TAU / n as f32);
            data.push((i as f32 * 0.77 + 1.3) % TAU);
        }
        let table = Tensor::from_vec(n, 2, data);
        let scorer = ArcScorer::from_arcs(&arcs, rho, 0.05, DistanceMode::CenterAnchored);
        let exact = scorer.score_all(&EntityTrig::new(&table));
        let want = top_k_indices(&exact, 10);

        let q = EntityTrig::with_precision(&table, Precision::I16);
        let mut heap = TopK::new(10);
        let rows = scorer.top_k_until(&q, 0, &mut heap, &Deadline::never());
        assert_eq!(rows, n);
        let got: Vec<u32> = heap.into_sorted().iter().map(|&(i, _)| i).collect();
        assert_eq!(got, want, "i16 top-k order drifted from exact");
    }

    #[test]
    fn streaming_top_k_matches_full_vector_reference() {
        let rho = 1.0;
        let arcs = grid_arcs(rho);
        // More rows than one SCORE_SLICE so the streaming loop takes
        // multiple slices.
        let n = SCORE_SLICE + 300;
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            data.push(i as f32 * TAU / n as f32);
            data.push((i as f32 * 0.77 + 1.3) % TAU);
        }
        let table = Tensor::from_vec(n, 2, data);
        let trig = EntityTrig::new(&table);
        let scorer = ArcScorer::from_arcs(&arcs, rho, 0.05, DistanceMode::LiteralEq16);
        let full = scorer.score_all(&trig);
        let want = top_k_indices(&full, 10);

        let mut heap = TopK::new(10);
        let rows = scorer.top_k_until(&trig, 0, &mut heap, &Deadline::never());
        assert_eq!(rows, n);
        let got = heap.into_sorted();
        assert_eq!(got.len(), want.len());
        for (&w, &(i, s)) in want.iter().zip(&got) {
            assert_eq!(i, w);
            assert_eq!(s.to_bits(), full[w as usize].to_bits());
        }

        // An already-expired deadline scores zero rows.
        use halk_obs::Clock;
        let (clock, now) = Clock::mock();
        let d = Deadline::at_ns(&clock, 1);
        now.store(5, std::sync::atomic::Ordering::SeqCst);
        let mut h2 = TopK::new(10);
        assert_eq!(scorer.top_k_until(&trig, 0, &mut h2, &d), 0);
        assert!(h2.is_empty());
    }
}
