//! Locality-sensitive hashing for the online answer search (§III-H).
//!
//! "To get the final answers, we perform a range search in the
//! low-dimensional vector space, which can also be done in constant time
//! using search algorithms such as Locality Sensitive Hashing." This module
//! provides that index: entity point embeddings (angle vectors) are lifted
//! to the unit torus `(cos θ, sin θ) ∈ R^{2d}` — where the chord distance of
//! Eq. 16 *is* the Euclidean distance per dimension — and hashed with
//! random-hyperplane signatures (SimHash). A query probes the buckets of
//! its arc centers across tables, scoring only the retrieved candidates.
//!
//! At benchmark scale a linear scan is already fast (DESIGN.md §4), so the
//! scan remains the default everywhere; the index exists for the constant
//! -time claim and for users with larger graphs, and its recall is pinned by
//! tests.

use crate::model::HalkModel;
use halk_kg::EntityId;
use halk_logic::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A multi-table SimHash index over entity point embeddings.
pub struct EntityLsh {
    /// Random hyperplanes per table: `n_bits × 2d`, row-major.
    planes: Vec<Vec<f32>>,
    /// Bucket maps, one per table.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    n_bits: usize,
    dim: usize,
}

impl EntityLsh {
    /// Builds an index over a model's entity embeddings.
    ///
    /// `n_tables` trades memory for recall; `n_bits` trades bucket size for
    /// selectivity (both in the usual LSH way).
    pub fn build(model: &HalkModel, n_tables: usize, n_bits: usize, seed: u64) -> Self {
        assert!(n_bits <= 64, "signature must fit in u64");
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = model.cfg.dim;
        let lifted_dim = 2 * dim;
        let planes: Vec<Vec<f32>> = (0..n_tables)
            .map(|_| {
                (0..n_bits * lifted_dim)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect()
            })
            .collect();
        let mut tables = vec![HashMap::new(); n_tables];
        let mut lifted = vec![0.0f32; lifted_dim];
        for e in 0..model.n_entities() {
            for j in 0..dim {
                let theta = model.entity_angle(EntityId(e as u32), j);
                lifted[2 * j] = theta.cos();
                lifted[2 * j + 1] = theta.sin();
            }
            for (t, plane) in planes.iter().enumerate() {
                let sig = signature(plane, &lifted, n_bits);
                tables[t].entry(sig).or_insert_with(Vec::new).push(e as u32);
            }
        }
        Self {
            planes,
            tables,
            n_bits,
            dim,
        }
    }

    /// Number of hash tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Candidate entities near a point given by its angle vector: union of
    /// the point's buckets across tables, plus single-bit multi-probe when
    /// the direct buckets are thin.
    pub fn candidates(&self, angles: &[f32]) -> Vec<u32> {
        assert_eq!(angles.len(), self.dim, "query dimensionality mismatch");
        let mut lifted = vec![0.0f32; 2 * self.dim];
        for (j, &theta) in angles.iter().enumerate() {
            lifted[2 * j] = theta.cos();
            lifted[2 * j + 1] = theta.sin();
        }
        let mut out: Vec<u32> = Vec::new();
        for (plane, table) in self.planes.iter().zip(&self.tables) {
            let sig = signature(plane, &lifted, self.n_bits);
            if let Some(bucket) = table.get(&sig) {
                out.extend_from_slice(bucket);
            }
            // Multi-probe: neighbors at Hamming distance 1 (cheap recall
            // boost for points near a hyperplane).
            for bit in 0..self.n_bits {
                if let Some(bucket) = table.get(&(sig ^ (1 << bit))) {
                    out.extend_from_slice(bucket);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Approximate top-`k` answers for a query: gather candidates from every
    /// DNF branch's arc centers, score only those with the model's distance,
    /// and return the best `k`. Falls back to all entities when the
    /// candidate pool is smaller than `k` (tiny graphs / unlucky hashes).
    pub fn top_k(&self, model: &HalkModel, query: &Query, k: usize) -> Vec<EntityId> {
        let branches = model.embed_query(query);
        let mut pool: Vec<u32> = branches
            .iter()
            .flat_map(|arcs| {
                let centers: Vec<f32> = arcs.iter().map(|a| a.center).collect();
                self.candidates(&centers)
            })
            .collect();
        pool.sort_unstable();
        pool.dedup();
        if pool.len() < k {
            pool = (0..model.n_entities() as u32).collect();
        }
        // Candidates keep their original scoring — the literal Eq. 15
        // distance (`Arc::dist`) — but run through the vectorized kernel's
        // subset path instead of per-entity scalar trig.
        let scorer = crate::scorer::ArcScorer::from_arcs(
            &branches,
            model.cfg.rho,
            model.cfg.eta,
            crate::config::DistanceMode::LiteralEq16,
        );
        let table = model.entity_table();
        let mut scores = Vec::new();
        scorer.score_rows_into(table, &pool, &mut scores);
        crate::scorer::top_k_indices(&scores, k)
            .into_iter()
            .map(|i| EntityId(pool[i as usize]))
            .collect()
    }
}

fn signature(plane: &[f32], lifted: &[f32], n_bits: usize) -> u64 {
    let dim = lifted.len();
    let mut sig = 0u64;
    for b in 0..n_bits {
        let row = &plane[b * dim..(b + 1) * dim];
        let dot: f32 = row.iter().zip(lifted).map(|(&p, &x)| p * x).sum();
        if dot >= 0.0 {
            sig |= 1 << b;
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HalkConfig;
    use halk_kg::{generate, SynthConfig};
    use halk_logic::{Sampler, Structure};

    fn setup() -> (halk_kg::Graph, HalkModel, EntityLsh) {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(61));
        let model = HalkModel::new(&g, HalkConfig::tiny());
        let lsh = EntityLsh::build(&model, 6, 10, 99);
        (g, model, lsh)
    }

    #[test]
    fn buckets_partition_all_entities() {
        let (g, _, lsh) = setup();
        for table in &lsh.tables {
            let total: usize = table.values().map(Vec::len).sum();
            assert_eq!(total, g.n_entities());
        }
        assert_eq!(lsh.n_tables(), 6);
    }

    #[test]
    fn entity_retrieves_itself() {
        let (g, model, lsh) = setup();
        let mut hits = 0;
        let n = 50.min(g.n_entities());
        for e in 0..n {
            let angles: Vec<f32> = (0..model.cfg.dim)
                .map(|j| model.entity_angle(EntityId(e as u32), j))
                .collect();
            if lsh.candidates(&angles).contains(&(e as u32)) {
                hits += 1;
            }
        }
        // The point hashes into its own bucket deterministically.
        assert_eq!(hits, n);
    }

    #[test]
    fn top_k_recall_vs_exact_scan() {
        let (g, model, lsh) = setup();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(62);
        let k = 10;
        let mut recall_sum = 0.0;
        let mut n = 0;
        for gq in sampler.sample_many(Structure::P1, 10, &mut rng) {
            let approx = lsh.top_k(&model, &gq.query, k);
            let scores = model.score_all(&gq.query);
            let mut exact: Vec<u32> = (0..scores.len() as u32).collect();
            exact.sort_by(|&a, &b| {
                scores[a as usize]
                    .partial_cmp(&scores[b as usize])
                    .expect("finite")
            });
            let exact_top: Vec<u32> = exact.into_iter().take(k).collect();
            let hits = approx.iter().filter(|e| exact_top.contains(&e.0)).count();
            recall_sum += hits as f64 / k as f64;
            n += 1;
        }
        let recall = recall_sum / n as f64;
        assert!(recall > 0.5, "LSH top-{k} recall {recall:.2} too low");
    }

    #[test]
    fn small_pools_fall_back_to_scan() {
        let (_, model, _) = setup();
        // A 1-table, wide-signature index produces tiny buckets; top_k must
        // still return k results via the fallback.
        let sparse = EntityLsh::build(&model, 1, 24, 7);
        let q = Query::atom(EntityId(0), halk_kg::RelationId(0));
        let top = sparse.top_k(&model, &q, 15);
        assert_eq!(top.len(), 15);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_query_dim_panics() {
        let (_, _, lsh) = setup();
        let _ = lsh.candidates(&[0.0; 3]);
    }
}
