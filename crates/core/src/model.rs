//! The HaLk model: arc embeddings plus one neural (or closed-form) module
//! per logical operator.
//!
//! Construction follows §III of the paper equation by equation, with the
//! measured CPU-scale adaptations of DESIGN.md §6 (bounded residual
//! corrections over the closed-form seeds, periodic MLP inputs):
//!
//! * **Projection** (Eq. 2–3): rotate by the relation arc, then adjust the
//!   coordinated `(start ‖ end)` pair with two bounded MLP corrections.
//! * **Intersection** (Eq. 10–12): semantic-average centers via attention in
//!   rectangular coordinates, weighted by group-information similarity `z`;
//!   arclengths capped by the minimum input (cardinality constraint) and
//!   shrunk by a DeepSets factor.
//! * **Difference** (Eq. 4–9): the same semantic-average centers but with
//!   learned asymmetry vectors `κ` (first input vs rest); arclengths from
//!   chord-length overlaps `δ_c = 2ρ·sin((A_{1,c}−A_{j,c})/2)` with the
//!   `A_{1,l}`-capped closed form.
//! * **Negation** (Eq. 13–14): closed-form complement seed (center + π,
//!   length `2πρ − A_l`) refined by a non-linear network.
//! * **Union** (§III-F): non-parametric — handled by DNF rewriting upstream;
//!   [`HalkModel::score_all`] takes the minimum distance over branches.
//!
//! Ablation variants HaLk-V1/V2/V3 (Table V) are selected by
//! [`Ablation`] and swap exactly the component the paper ablates.

use crate::arcvar::{chord, clamp, g_squash, ArcVar};
use crate::config::{Ablation, DistanceMode, HalkConfig};
use crate::exec::{ExecConfig, Executor};
use crate::scorer::{ArcScorer, EntityTrig, Precision, SCORE_SLICE};
use crate::shard::{sharded_top_k, ArcShards, ShardedTopK, ShardedTrig};
use halk_geometry::Arc;
use halk_kg::{EntityId, Graph, Grouping, RelationId};
use halk_logic::plan::{PlanBindings, PlanCache, PlanMasks, PlanOp, PlanShape};
use halk_logic::Query;
use halk_nn::{Act, GradBuffer, Mlp, ParamId, ParamStore, Tape, Tensor, Var};
use halk_obs::Deadline;
use halk_par::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The trained state of HaLk: embedding tables, operator networks and the
/// node grouping, all hanging off one [`ParamStore`].
pub struct HalkModel {
    /// Hyper-parameters this model was built with.
    pub cfg: HalkConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    grouping: Grouping,
    n_entities: usize,
    n_relations: usize,

    ent_center: ParamId,
    rel_center: ParamId,
    rel_len: ParamId,

    proj_center: Mlp,
    proj_alpha: Mlp,

    inter_att: Mlp,
    inter_ds_inner: Mlp,
    inter_ds_outer: Mlp,

    diff_att: Mlp,
    diff_kappa_first: ParamId,
    diff_kappa_rest: ParamId,
    diff_ds_inner: Mlp,
    diff_ds_outer: Mlp,

    neg_t1: Mlp,
    neg_t2: Mlp,
    neg_center: Mlp,
    neg_alpha: Mlp,

    /// Persistent per-shard training state: each batch shard owns a tape
    /// (reset, not dropped, between batches so its buffer pool amortizes
    /// every forward allocation) plus a staging [`GradBuffer`]. Shard count
    /// is fixed by batch size, never by thread count, so training is
    /// bit-identical at any parallelism (DESIGN.md §9). Not part of the
    /// saved state — fresh shards are equivalent (see DESIGN.md §8).
    pub(crate) train_shards: Vec<(Tape, GradBuffer)>,
    /// The model's own batch executor (DESIGN.md §15): owns the worker
    /// pool (0 threads = auto via [`halk_par::auto_threads`]), the
    /// compiled-plan cache, and the scoring-cache layer. Like
    /// `train_shards`, derived state: not saved, rebuilt after load.
    exec: Executor,
}

impl HalkModel {
    /// Builds a freshly initialized model for a training graph.
    pub fn new(train_graph: &Graph, cfg: HalkConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.dim;
        let h = cfg.hidden;
        let layers = cfg.mlp_layers;

        let n_entities = train_graph.n_entities();
        let n_relations = train_graph.n_relations();

        let ent_center = store.add(halk_nn::init::uniform_angles(n_entities, d, &mut rng));
        let rel_center = store.add(halk_nn::init::uniform(n_relations, d, -0.5, 0.5, &mut rng));
        let rel_len = store.add(halk_nn::init::uniform(n_relations, d, 0.0, 0.5, &mut rng));

        // HaLk-V3 learns center from the center alone and length from the
        // length alone (NewLook-style independence); the full model uses the
        // coordinated 2d-wide (start ‖ end) input.
        // Operator-network inputs are periodic (cos, sin) features of the
        // start/end points — 4d wide — except HaLk-V3, which reproduces
        // NewLook's independent center (2d trig) / length (d raw) inputs.
        let (proj_c_in, proj_a_in) = if cfg.ablation == Ablation::V3 {
            (2 * d, d)
        } else {
            (4 * d, 4 * d)
        };
        let proj_center = Mlp::new(&mut store, proj_c_in, h, d, layers, Act::Relu, &mut rng);
        let proj_alpha = Mlp::new(&mut store, proj_a_in, h, d, layers, Act::Relu, &mut rng);

        let inter_att = Mlp::new(&mut store, 4 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_ds_inner = Mlp::new(&mut store, 4 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_ds_outer = Mlp::new(&mut store, d, h, d, layers, Act::Relu, &mut rng);

        let diff_att = Mlp::new(&mut store, 4 * d, h, d, layers, Act::Relu, &mut rng);
        let diff_kappa_first = store.add(halk_nn::init::uniform(1, d, 0.5, 1.5, &mut rng));
        let diff_kappa_rest = store.add(halk_nn::init::uniform(1, d, -0.5, 0.5, &mut rng));
        let diff_ds_inner = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let diff_ds_outer = Mlp::new(&mut store, d, h, d, layers, Act::Relu, &mut rng);

        let neg_t1 = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let neg_t2 = Mlp::new(&mut store, d, h, d, layers, Act::Relu, &mut rng);
        let neg_center = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let neg_alpha = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);

        // Residual-correction networks start near the zero function so that
        // the first forward passes are pure rotation / pure complement.
        // Zero final layers: corrections start as exactly the zero function
        // (gradients still flow through the earlier layers), so step 0 is
        // pure rotation / pure complement.
        proj_center.scale_last_layer(&mut store, 0.0);
        proj_alpha.scale_last_layer(&mut store, 0.0);
        neg_center.scale_last_layer(&mut store, 0.0);
        neg_alpha.scale_last_layer(&mut store, 0.0);

        let grouping = Grouping::random(train_graph, cfg.n_groups, &mut rng);

        Self {
            cfg,
            store,
            grouping,
            n_entities,
            n_relations,
            ent_center,
            rel_center,
            rel_len,
            proj_center,
            proj_alpha,
            inter_att,
            inter_ds_inner,
            inter_ds_outer,
            diff_att,
            diff_kappa_first,
            diff_kappa_rest,
            diff_ds_inner,
            diff_ds_outer,
            neg_t1,
            neg_t2,
            neg_center,
            neg_alpha,
            train_shards: Vec::new(),
            exec: Executor::new(Self::exec_config()),
        }
    }

    /// The model-internal executor configuration: auto-threaded, no group
    /// cap (a training batch is one group), full-precision tables, and the
    /// `model_batch` pool label every release has used.
    fn exec_config() -> ExecConfig {
        ExecConfig {
            label: "model_batch",
            ..ExecConfig::default()
        }
    }

    /// Sets the worker-thread count for training and sharded scoring
    /// (0 = auto). Purely a scheduling knob: results are bit-identical at
    /// any setting.
    pub fn set_threads(&mut self, threads: usize) {
        self.exec.set_threads(threads);
    }

    /// The model's batch executor: skeleton grouping, plan cache, scoring
    /// caches and the pool, shared by training and scoring (DESIGN.md §15).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The fork-join pool this model schedules on. The label makes the
    /// model's batch/scoring work distinguishable in pool-stats metrics
    /// (`halk_pool_*_model_batch`).
    pub fn pool(&self) -> Pool {
        self.exec.pool()
    }

    /// Number of entities this model embeds.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Number of relations this model embeds.
    pub fn n_relations(&self) -> usize {
        self.n_relations
    }

    /// The node grouping (needed by the loss's group penalty).
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// The hyper-parameter configuration the model was built with.
    pub fn config(&self) -> &HalkConfig {
        &self.cfg
    }

    /// The underlying parameter store (values + optimizer state) — read
    /// access for snapshot encoding.
    pub fn param_store(&self) -> &ParamStore {
        &self.store
    }

    // -------------------------------------------------------------- plans

    /// The model's compiled-plan cache: one [`PlanShape`] per structure
    /// skeleton, compiled on first sight and shared afterwards (owned by
    /// the model's [`Executor`]).
    pub fn plan_cache(&self) -> &PlanCache {
        self.exec.plan_cache()
    }

    /// Binds one grounded query against a compiled shape: extracts the
    /// anchor/relation table and precomputes the per-slot group masks
    /// (§II-A) that the old recursive `group_mask` recomputed per call.
    pub fn bind(&self, shape: &PlanShape, query: &Query) -> (PlanBindings, PlanMasks) {
        let bindings = PlanBindings::of(query);
        let masks = PlanMasks::compute(shape, &bindings, &self.grouping);
        (bindings, masks)
    }

    // ------------------------------------------------------------ embedding

    /// Embeds a batch of same-shape queries by executing the compiled plan
    /// slot by slot, returning one `B×d` arc embedding per DNF branch root.
    /// DNF and group masks were already resolved at compile/bind time;
    /// shared subtrees embed once per batch instead of once per branch.
    ///
    /// # Panics
    /// If the batch is empty or a binding table does not fit `shape`.
    pub fn embed_plan(
        &self,
        tape: &mut Tape,
        shape: &PlanShape,
        bindings: &[PlanBindings],
        masks: &[PlanMasks],
    ) -> Vec<ArcVar> {
        assert!(!bindings.is_empty(), "empty batch");
        assert_eq!(bindings.len(), masks.len());
        let b = bindings.len();
        let d = self.cfg.dim;
        let mut slots: Vec<ArcVar> = Vec::with_capacity(shape.n_slots());
        for (si, op) in shape.ops().iter().enumerate() {
            let arc = match op {
                PlanOp::Anchor { arg } => {
                    let ids: Vec<u32> = bindings
                        .iter()
                        .map(|bi| bi.anchors[*arg as usize].0)
                        .collect();
                    let center = tape.gather(&self.store, self.ent_center, &ids);
                    // An entity is an arc of length zero (§II-A).
                    let len = tape.constant(b, d, 0.0);
                    ArcVar { center, len }
                }
                PlanOp::Projection { rel, input } => {
                    let rels: Vec<u32> =
                        bindings.iter().map(|bi| bi.rels[*rel as usize].0).collect();
                    self.op_projection(tape, slots[*input as usize], &rels)
                }
                PlanOp::Intersection { inputs } => {
                    let arcs: Vec<ArcVar> = inputs.iter().map(|&i| slots[i as usize]).collect();
                    // Group-similarity weights z_i (Eq. 10), one scalar per
                    // (query, branch), broadcast across dimensions; masks
                    // come precomputed from bind time.
                    let z: Vec<Tensor> = inputs
                        .iter()
                        .map(|&i| {
                            let mut t = Tensor::zeros(b, d);
                            for (row, m) in masks.iter().enumerate() {
                                let z = Grouping::similarity(m.slot[i as usize], m.slot[si]);
                                t.row_mut(row).iter_mut().for_each(|x| *x = z);
                            }
                            t
                        })
                        .collect();
                    self.op_intersection(tape, &arcs, &z)
                }
                PlanOp::Difference { inputs } => {
                    let arcs: Vec<ArcVar> = inputs.iter().map(|&i| slots[i as usize]).collect();
                    self.op_difference(tape, &arcs)
                }
                PlanOp::Negation { input } => self.op_negation(tape, slots[*input as usize]),
            };
            slots.push(arc);
        }
        shape.roots().iter().map(|&r| slots[r as usize]).collect()
    }

    // ------------------------------------------------------------ operators

    /// Projection operator ℙ (Eq. 2–3).
    pub fn op_projection(&self, tape: &mut Tape, input: ArcVar, rels: &[u32]) -> ArcVar {
        let rho = self.cfg.rho;
        let r_c = tape.gather(&self.store, self.rel_center, rels);
        let r_l = tape.gather(&self.store, self.rel_len, rels);
        // Approximate arc by rotation: Ã_c = A_c + A_{r,c}; Ã_l = A_l + A_{r,l}.
        let tilde_c = tape.add(input.center, r_c);
        let tilde_l = tape.add(input.len, r_l);
        let tilde = ArcVar {
            center: tilde_c,
            len: tilde_l,
        };
        let (center_in, alpha_in) = if self.cfg.ablation == Ablation::V3 {
            // NewLook-style independence: center from the center alone
            // (periodic features), length from the length alone.
            let cc = tape.cos(tilde_c);
            let sc = tape.sin(tilde_c);
            let center_in = tape.concat_cols(&[cc, sc]);
            let alpha = tilde.span_angle(tape, rho);
            (center_in, alpha)
        } else {
            let cat = tilde.start_end_features(tape, rho);
            (cat, cat)
        };
        // The networks "adjust the start and end points" (§III-B): bounded
        // residuals on top of the rotation seed, so the geometric regularity
        // of the rotation paradigm is preserved and the MLPs learn the
        // correction. π·tanh is the same range control as g (Eq. 3). With
        // the V3 ablation (NewLook-style projection) center and length are
        // instead learned *absolutely and independently*, which is exactly
        // the independence Table V shows to be inferior.
        let raw_c = self.proj_center.forward(tape, &self.store, center_in);
        let raw_a = self.proj_alpha.forward(tape, &self.store, alpha_in);
        if self.cfg.ablation == Ablation::V3 {
            let center = g_squash(tape, raw_c, self.cfg.lambda);
            let alpha = g_squash(tape, raw_a, self.cfg.lambda);
            let len = tape.scale(alpha, rho);
            return ArcVar { center, len };
        }
        let corr_scaled = tape.scale(raw_c, self.cfg.lambda);
        let corr_t = tape.tanh(corr_scaled);
        let corr = tape.scale(corr_t, std::f32::consts::PI);
        let center = tape.add(tilde_c, corr);
        // Length: rotation seed Ã_α = (A_{h,l} + A_{r,l})/ρ plus a bounded
        // correction, clamped to the legal arc-angle range.
        let tilde_alpha = tilde.span_angle(tape, rho);
        let corr_a_scaled = tape.scale(raw_a, self.cfg.lambda);
        let corr_a_t = tape.tanh(corr_a_scaled);
        let corr_a = tape.scale(corr_a_t, std::f32::consts::PI);
        let alpha_raw = tape.add(tilde_alpha, corr_a);
        let alpha = clamp(tape, alpha_raw, 0.0, std::f32::consts::TAU);
        let len = tape.scale(alpha, rho);
        ArcVar { center, len }
    }

    /// Intersection operator 𝕀 (Eq. 10–12).
    pub fn op_intersection(&self, tape: &mut Tape, arcs: &[ArcVar], z: &[Tensor]) -> ArcVar {
        assert!(arcs.len() >= 2, "intersection needs >= 2 inputs");
        assert_eq!(arcs.len(), z.len());
        let rho = self.cfg.rho;

        // Attention logits z_i ⊙ MLP(A_S ‖ A_E), softmaxed across inputs.
        let logits: Vec<Var> = arcs
            .iter()
            .zip(z)
            .map(|(a, zi)| {
                let cat = a.start_end_features(tape, rho);
                let m = self.inter_att.forward(tape, &self.store, cat);
                let zv = tape.input(zi.clone());
                tape.mul(zv, m)
            })
            .collect();
        let center = self.semantic_average_center(tape, arcs, &logits);

        // Arclengths: min over inputs × sigmoid(DeepSets) (Eq. 11–12).
        let alphas: Vec<Var> = arcs.iter().map(|a| a.span_angle(tape, rho)).collect();
        let mut min_alpha = alphas[0];
        for &a in &alphas[1..] {
            min_alpha = tape.min(min_alpha, a);
        }
        let inner: Vec<Var> = arcs
            .iter()
            .map(|a| {
                let cat = a.start_end_features(tape, rho);
                self.inter_ds_inner.forward(tape, &self.store, cat)
            })
            .collect();
        let mean = self.mean_vars(tape, &inner);
        let outer = self.inter_ds_outer.forward(tape, &self.store, mean);
        let factor = tape.sigmoid(outer);
        let alpha = tape.mul(min_alpha, factor);
        let len = tape.scale(alpha, rho);
        ArcVar { center, len }
    }

    /// Difference operator 𝔻 (Eq. 4–9). `arcs[0]` is the minuend.
    pub fn op_difference(&self, tape: &mut Tape, arcs: &[ArcVar]) -> ArcVar {
        assert!(arcs.len() >= 2, "difference needs >= 2 inputs");
        let rho = self.cfg.rho;

        // Attention with hard-coded asymmetry: κ_first for the minuend,
        // κ_rest for every subtrahend (order-invariant among them, Eq. 7).
        let logits: Vec<Var> = arcs
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let cat = a.start_end_features(tape, rho);
                let m = self.diff_att.forward(tape, &self.store, cat);
                let kappa = if i == 0 {
                    self.diff_kappa_first
                } else {
                    self.diff_kappa_rest
                };
                let kv = tape.param(&self.store, kappa);
                tape.mul_row(m, kv)
            })
            .collect();
        let center = self.semantic_average_center(tape, arcs, &logits);

        // Arclength with cardinality constraint (Eq. 8–9): chord-measured
        // overlaps between the minuend and each subtrahend feed a DeepSets
        // network whose sigmoid scales A_{1,l} down.
        let first = arcs[0];
        let inner: Vec<Var> = arcs[1..]
            .iter()
            .map(|a| {
                let delta_c = if self.cfg.ablation == Ablation::V1 {
                    // NewLook-style raw-value overlap: periodicity-unsafe.
                    tape.sub(first.center, a.center)
                } else {
                    // δ_c = 2ρ·sin((A_{1,c} − A_{j,c})/2), signed chord.
                    let diff = tape.sub(first.center, a.center);
                    let half = tape.scale(diff, 0.5);
                    let s = tape.sin(half);
                    tape.scale(s, 2.0 * rho)
                };
                let delta_l = tape.sub(first.len, a.len);
                let cat = tape.concat_cols(&[delta_c, delta_l]);
                self.diff_ds_inner.forward(tape, &self.store, cat)
            })
            .collect();
        let mean = self.mean_vars(tape, &inner);
        let outer = self.diff_ds_outer.forward(tape, &self.store, mean);
        let factor = tape.sigmoid(outer);
        let len = if self.cfg.ablation == Ablation::V1 {
            // No cardinality constraint: free length in [0, 2πρ].
            tape.scale(factor, std::f32::consts::TAU * rho)
        } else {
            // A_l = A_{1,l} · σ(DeepSets(…)) ⊆ the minuend (Eq. 8).
            tape.mul(first.len, factor)
        };
        ArcVar { center, len }
    }

    /// Negation operator ℕ (Eq. 13–14).
    pub fn op_negation(&self, tape: &mut Tape, input: ArcVar) -> ArcVar {
        let rho = self.cfg.rho;
        // Closed-form complement seed: center + π (mod 2π is implicit in the
        // chord-based distances), length 2πρ − A_l.
        let tilde_c = tape.add_scalar(input.center, std::f32::consts::PI);
        let neg_l = tape.neg(input.len);
        let tilde_l = tape.add_scalar(neg_l, std::f32::consts::TAU * rho);
        if self.cfg.ablation == Ablation::V2 {
            // Linear-transformation negation (the assumption the paper's full
            // model removes).
            return ArcVar {
                center: tilde_c,
                len: tilde_l,
            };
        }
        let tilde_alpha = tape.scale(tilde_l, 1.0 / rho);
        let cc = tape.cos(tilde_c);
        let sc = tape.sin(tilde_c);
        let t1_in = tape.concat_cols(&[cc, sc]);
        let t1 = self.neg_t1.forward(tape, &self.store, t1_in);
        let t2 = self.neg_t2.forward(tape, &self.store, tilde_alpha);
        let cat = tape.concat_cols(&[t1, t2]);
        // Center: complement seed + bounded residual (same rationale as the
        // projection operator — the network corrects the linear complement
        // and the cascading error of earlier operators, §III-E).
        let raw_c = self.neg_center.forward(tape, &self.store, cat);
        let corr_scaled = tape.scale(raw_c, self.cfg.lambda);
        let corr_t = tape.tanh(corr_scaled);
        let corr = tape.scale(corr_t, std::f32::consts::PI);
        let center = tape.add(tilde_c, corr);
        let raw_a = self.neg_alpha.forward(tape, &self.store, cat);
        let corr_a_scaled = tape.scale(raw_a, self.cfg.lambda);
        let corr_a_t = tape.tanh(corr_a_scaled);
        let corr_a = tape.scale(corr_a_t, std::f32::consts::PI);
        let alpha_raw = tape.add(tilde_alpha, corr_a);
        let alpha = clamp(tape, alpha_raw, 0.0, std::f32::consts::TAU);
        let len = tape.scale(alpha, rho);
        ArcVar { center, len }
    }

    /// Semantic-average centers (Eq. 4–6): softmax the per-input logits,
    /// average the unit-circle coordinates, restore the angle with `atan2`
    /// (the `Reg`-regularized arctangent).
    fn semantic_average_center(&self, tape: &mut Tape, arcs: &[ArcVar], logits: &[Var]) -> Var {
        let rho = self.cfg.rho;
        // Numerically stable softmax: subtract the elementwise max of the
        // logits before exponentiating.
        let mut max_logit = logits[0];
        for &l in &logits[1..] {
            max_logit = tape.max(max_logit, l);
        }
        let exps: Vec<Var> = logits
            .iter()
            .map(|&l| {
                let shifted = tape.sub(l, max_logit);
                tape.exp(shifted)
            })
            .collect();
        let mut denom = exps[0];
        for &e in &exps[1..] {
            denom = tape.add(denom, e);
        }
        let mut x_sa: Option<Var> = None;
        let mut y_sa: Option<Var> = None;
        for (a, &e) in arcs.iter().zip(&exps) {
            let w = tape.div(e, denom);
            let cos = tape.cos(a.center);
            let sin = tape.sin(a.center);
            let x = tape.scale(cos, rho);
            let y = tape.scale(sin, rho);
            let wx = tape.mul(w, x);
            let wy = tape.mul(w, y);
            x_sa = Some(match x_sa {
                Some(acc) => tape.add(acc, wx),
                None => wx,
            });
            y_sa = Some(match y_sa {
                Some(acc) => tape.add(acc, wy),
                None => wy,
            });
        }
        tape.atan2(y_sa.expect("nonempty"), x_sa.expect("nonempty"))
    }

    fn mean_vars(&self, tape: &mut Tape, vars: &[Var]) -> Var {
        let mut acc = vars[0];
        for &v in &vars[1..] {
            acc = tape.add(acc, v);
        }
        tape.scale(acc, 1.0 / vars.len() as f32)
    }

    // ------------------------------------------------------------- distance

    /// Differentiable distance `d = ‖d_o‖₁ + η·‖d_i‖₁` (Eq. 15–16) between a
    /// batch of entity point angles (`B×d`) and a batch of arcs, as a `B×1`
    /// column.
    ///
    /// Eq. 16 is implemented literally: `d_o` is the smaller endpoint chord
    /// everywhere (no inside-zeroing), so a point arc reduces exactly to the
    /// RotatE chord distance and positives keep receiving gradient instead
    /// of hiding inside inflated arcs (see `halk_geometry::Arc::outside_dist`
    /// for the measured comparison of the two readings).
    pub fn distance_batch(&self, tape: &mut Tape, arc: ArcVar, points: Var) -> Var {
        let rho = self.cfg.rho;
        let eta = self.cfg.eta;
        let start = arc.start(tape, rho);
        let end = arc.end(tape, rho);

        let chord_s = chord(tape, points, start, rho);
        let chord_e = chord(tape, points, end, rho);
        let d_o_raw = tape.min(chord_s, chord_e);
        let d_o = match self.cfg.distance {
            DistanceMode::LiteralEq16 => d_o_raw,
            DistanceMode::CenterAnchored => {
                let chord_c = chord(tape, points, arc.center, rho);
                tape.min(d_o_raw, chord_c)
            }
            DistanceMode::ZeroedInside => {
                // ConE-style indicator on forward values (the torch.where
                // pattern): gradient flows through the active branch only.
                let pv = tape.value(points).clone();
                let cv = tape.value(arc.center).clone();
                let lv = tape.value(arc.len).clone();
                let mut m = Tensor::zeros(pv.rows, pv.cols);
                for i in 0..m.data.len() {
                    let a = Arc::new(cv.data[i], lv.data[i].max(0.0), rho);
                    m.data[i] = if a.contains_angle(pv.data[i]) {
                        0.0
                    } else {
                        1.0
                    };
                }
                let mask = tape.input(m);
                tape.mul(mask, d_o_raw)
            }
        };

        // Inside distance: chord to the center, capped by the half-arc chord
        // 2ρ·|sin((A_l/2ρ)/2)| (Eq. 16).
        let to_center = chord(tape, points, arc.center, rho);
        let half_angle = tape.scale(arc.len, 1.0 / (2.0 * rho));
        let quarter = tape.scale(half_angle, 0.5);
        let s = tape.sin(quarter);
        let abs = tape.abs(s);
        let cap = tape.scale(abs, 2.0 * rho);
        let d_i = tape.min(to_center, cap);

        let sum_o = tape.sum_cols(d_o);
        let sum_i = tape.sum_cols(d_i);
        let weighted_i = tape.scale(sum_i, eta);
        tape.add(sum_o, weighted_i)
    }

    /// Gathers entity point embeddings for a batch of entity ids.
    pub fn entity_points(&self, tape: &mut Tape, ids: &[u32]) -> Var {
        tape.gather(&self.store, self.ent_center, ids)
    }

    // ------------------------------------------------------------ inference

    /// Embeds a single query through its cached compiled plan and returns
    /// the resulting arc embeddings, one per conjunctive branch. The DNF
    /// rewrite happened once at compile time; shared subtrees embed once
    /// for all branches.
    pub fn embed_query(&self, query: &Query) -> Vec<Vec<Arc>> {
        let shape = self.exec.shape_for(query);
        let (bindings, masks) = self.bind(&shape, query);
        let mut tape = Tape::new();
        let roots = self.embed_plan(
            &mut tape,
            &shape,
            std::slice::from_ref(&bindings),
            std::slice::from_ref(&masks),
        );
        roots
            .iter()
            .map(|arc| {
                let c = tape.value(arc.center);
                let l = tape.value(arc.len);
                (0..self.cfg.dim)
                    .map(|j| Arc::new(c.data[j], l.data[j].max(0.0), self.cfg.rho))
                    .collect()
            })
            .collect()
    }

    /// Compiles a query's DNF branches into the vectorized [`ArcScorer`].
    pub fn scorer_for(&self, query: &Query) -> ArcScorer {
        let branches = self.embed_query(query);
        ArcScorer::from_arcs(&branches, self.cfg.rho, self.cfg.eta, self.cfg.distance)
    }

    /// Precomputed half-angle trig of the current entity table. Valid until
    /// the next training step moves the table; reuse it across queries to
    /// amortize the per-entity trig (the pruning engine does this).
    pub fn entity_trig(&self) -> EntityTrig {
        EntityTrig::new(self.store.value(self.ent_center))
    }

    /// [`HalkModel::entity_trig`] at an explicit storage [`Precision`] —
    /// the serving-side memory-diet knob. `Precision::F32` is bit-identical
    /// to [`HalkModel::entity_trig`]; quantized modes preserve ranks, not
    /// bits (see [`Precision`] and DESIGN.md §14).
    pub fn entity_trig_with(&self, precision: Precision) -> EntityTrig {
        EntityTrig::with_precision(self.store.value(self.ent_center), precision)
    }

    /// Trig of a contiguous row range only — `O(len · dim)` instead of the
    /// full-table sweep. Snapshot decoding uses this to spot-check a stored
    /// trig table against the model it claims to belong to without paying
    /// the full rebuild the snapshot exists to avoid.
    pub fn entity_trig_rows_with(
        &self,
        rows: std::ops::Range<usize>,
        precision: Precision,
    ) -> EntityTrig {
        EntityTrig::from_rows_with(self.store.value(self.ent_center), rows, precision)
    }

    /// Distance from every entity to the query region — the online scoring
    /// path (lower = more likely an answer). Union queries take the minimum
    /// distance across DNF branches (§III-G). Runs on the vectorized
    /// [`ArcScorer`] kernel; [`HalkModel::score_all_scalar`] is the
    /// reference implementation it is tested against.
    pub fn score_all(&self, query: &Query) -> Vec<f32> {
        self.scorer_for(query).score_all(&self.entity_trig())
    }

    /// [`HalkModel::score_all`] against a caller-held [`EntityTrig`],
    /// writing into a reusable output buffer. Batch callers (pruning,
    /// evaluation sweeps) build the trig once per table state.
    pub fn score_all_with(&self, trig: &EntityTrig, query: &Query, out: &mut Vec<f32>) {
        self.scorer_for(query).score_into(trig, out);
    }

    /// Entity-sharded [`HalkModel::score_all_with`]: splits the entity range
    /// into fixed-size slices scored on `pool`'s workers. Slice boundaries
    /// depend only on the entity count — never on the thread count — and
    /// each entity's score is computed independently, so output is
    /// bit-identical to the sequential path at any parallelism.
    pub fn score_all_with_par(
        &self,
        pool: Pool,
        trig: &EntityTrig,
        query: &Query,
        out: &mut Vec<f32>,
    ) {
        let scorer = self.scorer_for(query);
        out.clear();
        out.resize(trig.n_entities(), f32::INFINITY);
        if pool.is_sequential() {
            scorer.score_slice(trig, 0, out);
            return;
        }
        pool.par_chunks_mut(out, SCORE_SLICE, |ci, chunk| {
            scorer.score_slice(trig, ci * SCORE_SLICE, chunk);
        });
    }

    /// [`HalkModel::score_all_with`] under a [`Deadline`], checked at
    /// 1024-row slice boundaries (the same slice size as the parallel
    /// sweep). Returns the number of entity rows scored before the deadline
    /// hit; the scored prefix of `out` is bit-identical to the same rows of
    /// the undeadlined path, and rows past the prefix stay `f32::INFINITY`.
    /// A serving layer uses the prefix for a partial-but-correct top-k with
    /// a `truncated` flag instead of blocking past its budget.
    pub fn score_all_until(
        &self,
        trig: &EntityTrig,
        query: &Query,
        out: &mut Vec<f32>,
        deadline: &Deadline,
    ) -> usize {
        let scorer = self.scorer_for(query);
        out.clear();
        out.resize(trig.n_entities(), f32::INFINITY);
        scorer.score_until(trig, 0, out, SCORE_SLICE, deadline)
    }

    /// Shard-local trig tables for the current entity table under a
    /// balanced `n_shards`-way arc partition. Like
    /// [`HalkModel::entity_trig`], valid until the next training step;
    /// build once per model snapshot and share across queries.
    pub fn entity_shards(&self, n_shards: usize) -> ShardedTrig {
        let table = self.store.value(self.ent_center);
        ShardedTrig::new(table, &ArcShards::new(table.rows, n_shards))
    }

    /// [`HalkModel::entity_shards`] at an explicit storage [`Precision`].
    pub fn entity_shards_with(&self, n_shards: usize, precision: Precision) -> ShardedTrig {
        let table = self.store.value(self.ent_center);
        ShardedTrig::with_precision(table, &ArcShards::new(table.rows, n_shards), precision)
    }

    /// Streaming sharded top-k for one query: per-shard bounded heaps fanned
    /// out over `pool`, merged by rank — never materializing the full score
    /// vector. Returns the top-`k` `(entity, score)` pairs in ascending rank
    /// order plus the rows scored before `deadline` (the union of per-shard
    /// prefixes; `n_entities` when the deadline never fires). The selection
    /// and scores are bit-identical to [`HalkModel::score_all`] followed by
    /// [`crate::top_k_indices`].
    pub fn top_k_sharded(
        &self,
        pool: &Pool,
        sharded: &ShardedTrig,
        query: &Query,
        k: usize,
        deadline: &Deadline,
    ) -> ShardedTopK {
        let scorer = self.scorer_for(query);
        sharded_top_k(
            pool,
            sharded,
            std::slice::from_ref(&scorer),
            &[k],
            &[deadline],
        )
        .pop()
        .expect("one query in, one result out")
    }

    /// Compiles a *group* of same-skeleton queries into per-query
    /// [`ArcScorer`]s through one batched plan embedding — the serving-side
    /// twin of `train_batch`'s shard forward: every query must share
    /// `shape` (enforce via `Arc<PlanShape>` pointer identity upstream),
    /// so the whole group runs one tape pass with `B = queries.len()`
    /// rows. Row `b` of the batch is bit-identical to embedding query `b`
    /// alone ([`HalkModel::embed_query`]): every tape op is row-independent.
    pub fn scorers_for_shape(&self, shape: &PlanShape, queries: &[&Query]) -> Vec<ArcScorer> {
        if queries.is_empty() {
            return Vec::new();
        }
        let (bindings, masks): (Vec<_>, Vec<_>) =
            queries.iter().map(|q| self.bind(shape, q)).unzip();
        let mut tape = Tape::new();
        let roots = self.embed_plan(&mut tape, shape, &bindings, &masks);
        (0..queries.len())
            .map(|b| {
                let branches: Vec<Vec<Arc>> = roots
                    .iter()
                    .map(|arc| {
                        let c = tape.value(arc.center);
                        let l = tape.value(arc.len);
                        (0..self.cfg.dim)
                            .map(|j| Arc::new(c.get(b, j), l.get(b, j).max(0.0), self.cfg.rho))
                            .collect()
                    })
                    .collect();
                ArcScorer::from_arcs(&branches, self.cfg.rho, self.cfg.eta, self.cfg.distance)
            })
            .collect()
    }

    /// Scalar reference scoring: the straightforward entity-major loop over
    /// `halk_geometry::Arc` distances. Kept for equivalence tests and the
    /// perf-regression bench (`bench_hotpath`); use [`HalkModel::score_all`]
    /// everywhere else.
    pub fn score_all_scalar(&self, query: &Query) -> Vec<f32> {
        let branches = self.embed_query(query);
        let table = self.store.value(self.ent_center);
        let eta = self.cfg.eta;
        (0..self.n_entities)
            .map(|e| {
                let point = table.row(e);
                branches
                    .iter()
                    .map(|arcs| {
                        arcs.iter()
                            .zip(point)
                            .map(|(a, &theta)| match self.cfg.distance {
                                DistanceMode::LiteralEq16 => a.dist(theta, eta),
                                DistanceMode::ZeroedInside => {
                                    a.outside_dist_zeroed(theta) + eta * a.inside_dist(theta)
                                }
                                DistanceMode::CenterAnchored => {
                                    let d_o = a
                                        .outside_dist(theta)
                                        .min(halk_geometry::chord(theta, a.center, a.rho));
                                    d_o + eta * a.inside_dist(theta)
                                }
                            })
                            .sum::<f32>()
                    })
                    .fold(f32::INFINITY, f32::min)
            })
            .collect()
    }

    /// Drops the persistent per-shard training state (tapes with their
    /// buffer pools, staged gradient buffers). Only useful to tests
    /// comparing pooled vs unpooled execution; training behavior is
    /// identical either way.
    pub fn reset_train_tape(&mut self) {
        self.train_shards = Vec::new();
    }

    /// Reads the current (inference-time) arc of a single embedded branch —
    /// exposed for diagnostics and the pruning engine.
    pub fn entity_angle(&self, e: EntityId, dim: usize) -> f32 {
        self.store.value(self.ent_center).get(e.index(), dim)
    }

    /// The raw entity angle table (`n_entities × d`, row-major) — the input
    /// to [`EntityTrig::new`] and the subset scoring path.
    pub fn entity_table(&self) -> &Tensor {
        self.store.value(self.ent_center)
    }

    /// Relation arc parameters for diagnostics.
    pub fn relation_arc(&self, r: RelationId, dim: usize) -> (f32, f32) {
        (
            self.store.value(self.rel_center).get(r.index(), dim),
            self.store.value(self.rel_len).get(r.index(), dim),
        )
    }

    // ------------------------------------------------------------ save/load

    /// Saves the model to a directory: `config.json` (hyper-parameters) and
    /// `params.ckpt` (binary parameter + optimizer state). The architecture
    /// and grouping are reconstructed deterministically from the config's
    /// seed at load time, so only parameters need to be stored.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let cfg_json = serde_json::to_string_pretty(&self.cfg)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(dir.join("config.json"), cfg_json)?;
        halk_nn::checkpoint::save_file(&self.store, &dir.join("params.ckpt"))
    }

    /// Loads a model previously written with [`HalkModel::save`]. The same
    /// training graph must be provided: entity/relation counts and the
    /// seeded grouping are derived from it.
    pub fn load(train_graph: &Graph, dir: &std::path::Path) -> std::io::Result<Self> {
        let cfg_json = std::fs::read_to_string(dir.join("config.json"))?;
        let cfg: HalkConfig = serde_json::from_str(&cfg_json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let mut model = HalkModel::new(train_graph, cfg);
        let store = halk_nn::checkpoint::load_file(&dir.join("params.ckpt"))?;
        if store.len() != model.store.len() || store.num_scalars() != model.store.num_scalars() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "checkpoint shape mismatch: {} tensors / {} scalars on disk, \
                     {} / {} expected for this graph+config",
                    store.len(),
                    store.num_scalars(),
                    model.store.len(),
                    model.store.num_scalars()
                ),
            ));
        }
        model.store = store;
        Ok(model)
    }

    /// Rebuilds a model around decoded snapshot state — the fast-boot
    /// constructor behind `halk serve --snapshot`. [`HalkModel::new`] pays
    /// `O(n_entities · d)` seeded RNG draws for the embedding tables plus a
    /// full triple sweep for the grouping; this constructor allocates the
    /// tables zeroed (the decoded `store` replaces every value anyway) and
    /// takes the decoded `grouping` as-is, so its cost is the small
    /// operator-MLP registrations. Parameter registration order and shapes
    /// are identical to `HalkModel::new` on a graph of the same shape —
    /// that invariant is what makes the store swap sound, and it is
    /// enforced structurally by [`ParamStore::same_shapes`].
    pub fn from_parts(
        cfg: HalkConfig,
        n_entities: usize,
        n_relations: usize,
        grouping: Grouping,
        store: ParamStore,
    ) -> std::io::Result<Self> {
        // Shape-only registration: every value in `arch` is replaced by the
        // decoded store, so the layers register zeroed (`Mlp::zeroed` keeps
        // the registration order and shapes in lockstep with `new` without
        // the throwaway RNG draws — `Tensor::zeros` is an `alloc_zeroed`,
        // nearly free even at the entity-table scale).
        let mut arch = ParamStore::new();
        let d = cfg.dim;
        let h = cfg.hidden;
        let layers = cfg.mlp_layers;

        let ent_center = arch.add(Tensor::zeros(n_entities, d));
        let rel_center = arch.add(Tensor::zeros(n_relations, d));
        let rel_len = arch.add(Tensor::zeros(n_relations, d));

        let (proj_c_in, proj_a_in) = if cfg.ablation == Ablation::V3 {
            (2 * d, d)
        } else {
            (4 * d, 4 * d)
        };
        let proj_center = Mlp::zeroed(&mut arch, proj_c_in, h, d, layers, Act::Relu);
        let proj_alpha = Mlp::zeroed(&mut arch, proj_a_in, h, d, layers, Act::Relu);

        let inter_att = Mlp::zeroed(&mut arch, 4 * d, h, d, layers, Act::Relu);
        let inter_ds_inner = Mlp::zeroed(&mut arch, 4 * d, h, d, layers, Act::Relu);
        let inter_ds_outer = Mlp::zeroed(&mut arch, d, h, d, layers, Act::Relu);

        let diff_att = Mlp::zeroed(&mut arch, 4 * d, h, d, layers, Act::Relu);
        let diff_kappa_first = arch.add(Tensor::zeros(1, d));
        let diff_kappa_rest = arch.add(Tensor::zeros(1, d));
        let diff_ds_inner = Mlp::zeroed(&mut arch, 2 * d, h, d, layers, Act::Relu);
        let diff_ds_outer = Mlp::zeroed(&mut arch, d, h, d, layers, Act::Relu);

        let neg_t1 = Mlp::zeroed(&mut arch, 2 * d, h, d, layers, Act::Relu);
        let neg_t2 = Mlp::zeroed(&mut arch, d, h, d, layers, Act::Relu);
        let neg_center = Mlp::zeroed(&mut arch, 2 * d, h, d, layers, Act::Relu);
        let neg_alpha = Mlp::zeroed(&mut arch, 2 * d, h, d, layers, Act::Relu);

        if !arch.same_shapes(&store) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "snapshot parameter store does not fit this graph+config: \
                     {} tensors / {} scalars decoded, {} / {} expected",
                    store.len(),
                    store.num_scalars(),
                    arch.len(),
                    arch.num_scalars()
                ),
            ));
        }
        if grouping.n_entities() != n_entities {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "snapshot grouping covers {} entities, graph has {n_entities}",
                    grouping.n_entities()
                ),
            ));
        }

        Ok(Self {
            cfg,
            store,
            grouping,
            n_entities,
            n_relations,
            ent_center,
            rel_center,
            rel_len,
            proj_center,
            proj_alpha,
            inter_att,
            inter_ds_inner,
            inter_ds_outer,
            diff_att,
            diff_kappa_first,
            diff_kappa_rest,
            diff_ds_inner,
            diff_ds_outer,
            neg_t1,
            neg_t2,
            neg_center,
            neg_alpha,
            train_shards: Vec::new(),
            exec: Executor::new(Self::exec_config()),
        })
    }
}

/// The retained recursive AST interpreter for [`HalkModel`]. No production
/// path calls these; the plan-equivalence tests embed every structure both
/// ways and assert bitwise-identical arcs, scores and masks.
pub mod reference {
    use super::*;
    use halk_logic::to_dnf;

    impl HalkModel {
        /// Recursive group mask `h_U` of a query node (§II-A / Eq. 10) —
        /// the pre-plan form of [`PlanMasks`].
        pub fn group_mask_ast(&self, q: &Query) -> u64 {
            match q {
                Query::Anchor(e) => self.grouping.mask_of(*e),
                Query::Projection { rel, input } => {
                    self.grouping.propagate(self.group_mask_ast(input), *rel)
                }
                Query::Intersection(qs) => qs
                    .iter()
                    .map(|b| self.group_mask_ast(b))
                    .fold(self.grouping.full_mask(), |a, b| a & b),
                Query::Union(qs) => qs
                    .iter()
                    .map(|b| self.group_mask_ast(b))
                    .fold(0, |a, b| a | b),
                Query::Difference(qs) => self.group_mask_ast(&qs[0]),
                // A complement can land in any group.
                Query::Negation(_) => self.grouping.full_mask(),
            }
        }

        /// Recursive batched embedding of same-structure, union-free
        /// queries — the pre-plan form of [`HalkModel::embed_plan`].
        ///
        /// # Panics
        /// If the batch is empty, structurally heterogeneous, or contains
        /// a union (run [`to_dnf`] first — §III-F).
        pub fn embed_batch_ast(&self, tape: &mut Tape, queries: &[&Query]) -> ArcVar {
            assert!(!queries.is_empty(), "empty batch");
            match queries[0] {
                Query::Anchor(_) => {
                    let ids: Vec<u32> = queries
                        .iter()
                        .map(|q| match q {
                            Query::Anchor(e) => e.0,
                            other => panic!(
                                "heterogeneous batch: expected anchor, got {}",
                                other.render()
                            ),
                        })
                        .collect();
                    let center = tape.gather(&self.store, self.ent_center, &ids);
                    // An entity is an arc of length zero (§II-A).
                    let len = tape.constant(ids.len(), self.cfg.dim, 0.0);
                    ArcVar { center, len }
                }
                Query::Projection { .. } => {
                    let mut rels = Vec::with_capacity(queries.len());
                    let mut inputs = Vec::with_capacity(queries.len());
                    for q in queries {
                        match q {
                            Query::Projection { rel, input } => {
                                rels.push(rel.0);
                                inputs.push(&**input);
                            }
                            other => {
                                panic!("heterogeneous batch at projection: {}", other.render())
                            }
                        }
                    }
                    let arc = self.embed_batch_ast(tape, &inputs);
                    self.op_projection(tape, arc, &rels)
                }
                Query::Intersection(branches0) => {
                    let k = branches0.len();
                    let arcs = self.embed_branches_ast(tape, queries, k, |q| match q {
                        Query::Intersection(bs) => bs,
                        other => {
                            panic!("heterogeneous batch at intersection: {}", other.render())
                        }
                    });
                    // Group-similarity weights z_i (Eq. 10), one scalar per
                    // (query, branch), broadcast across dimensions.
                    let z = self.group_weights_ast(queries);
                    self.op_intersection(tape, &arcs, &z)
                }
                Query::Difference(branches0) => {
                    let k = branches0.len();
                    let arcs = self.embed_branches_ast(tape, queries, k, |q| match q {
                        Query::Difference(bs) => bs,
                        other => panic!("heterogeneous batch at difference: {}", other.render()),
                    });
                    self.op_difference(tape, &arcs)
                }
                Query::Negation(_) => {
                    let inners: Vec<&Query> = queries
                        .iter()
                        .map(|q| match q {
                            Query::Negation(inner) => &**inner,
                            other => panic!("heterogeneous batch at negation: {}", other.render()),
                        })
                        .collect();
                    let arc = self.embed_batch_ast(tape, &inners);
                    self.op_negation(tape, arc)
                }
                Query::Union(_) => {
                    panic!("unions must be removed by DNF before embedding (§III-F)")
                }
            }
        }

        fn embed_branches_ast<'q>(
            &self,
            tape: &mut Tape,
            queries: &[&'q Query],
            k: usize,
            get: impl Fn(&'q Query) -> &'q [Query],
        ) -> Vec<ArcVar> {
            (0..k)
                .map(|j| {
                    let branch: Vec<&Query> = queries
                        .iter()
                        .map(|q| {
                            let bs = get(q);
                            assert_eq!(bs.len(), k, "heterogeneous branch arity");
                            &bs[j]
                        })
                        .collect();
                    self.embed_batch_ast(tape, &branch)
                })
                .collect()
        }

        /// `z_i` similarity tensors: for each branch of an intersection
        /// batch, a `B×d` constant with the per-query group similarity.
        fn group_weights_ast(&self, queries: &[&Query]) -> Vec<Tensor> {
            let k = match queries[0] {
                Query::Intersection(bs) => bs.len(),
                _ => unreachable!("group_weights only called for intersections"),
            };
            let b = queries.len();
            let d = self.cfg.dim;
            (0..k)
                .map(|j| {
                    let mut t = Tensor::zeros(b, d);
                    for (i, q) in queries.iter().enumerate() {
                        let (branch_mask, target_mask) = match q {
                            Query::Intersection(bs) => {
                                (self.group_mask_ast(&bs[j]), self.group_mask_ast(q))
                            }
                            _ => unreachable!(),
                        };
                        let z = Grouping::similarity(branch_mask, target_mask);
                        t.row_mut(i).iter_mut().for_each(|x| *x = z);
                    }
                    t
                })
                .collect()
        }

        /// AST-walking [`HalkModel::embed_query`]: DNF per call, one tape
        /// reset per branch, recursive embedding of each branch.
        pub fn embed_query_ast(&self, query: &Query) -> Vec<Vec<Arc>> {
            let mut tape = Tape::new();
            to_dnf(query)
                .iter()
                .map(|branch| {
                    tape.reset();
                    let arc = self.embed_batch_ast(&mut tape, &[branch]);
                    let c = tape.value(arc.center);
                    let l = tape.value(arc.len);
                    (0..self.cfg.dim)
                        .map(|j| Arc::new(c.data[j], l.data[j].max(0.0), self.cfg.rho))
                        .collect()
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{generate, SynthConfig};
    use halk_logic::{Sampler, Structure};

    fn setup() -> (Graph, HalkModel) {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(3));
        let model = HalkModel::new(&g, HalkConfig::tiny());
        (g, model)
    }

    #[test]
    fn embed_anchor_is_zero_length_arc() {
        let (_, model) = setup();
        let q = Query::Anchor(EntityId(5));
        let mut tape = Tape::new();
        let arc = model.embed_batch_ast(&mut tape, &[&q]);
        assert_eq!(tape.value(arc.len).data, vec![0.0; model.cfg.dim]);
        // Center equals the entity embedding.
        let c = tape.value(arc.center).clone();
        for j in 0..model.cfg.dim {
            assert_eq!(c.data[j], model.entity_angle(EntityId(5), j));
        }
    }

    #[test]
    fn all_training_structures_embed() {
        let (g, model) = setup();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        for s in Structure::training() {
            let q = sampler.sample(s, &mut rng).expect("groundable");
            let shape = model.plan_cache().shape_for(&q.query);
            let (bindings, masks) = model.bind(&shape, &q.query);
            let mut tape = Tape::new();
            let roots = model.embed_plan(
                &mut tape,
                &shape,
                std::slice::from_ref(&bindings),
                std::slice::from_ref(&masks),
            );
            assert_eq!(roots.len(), 1, "{s}: training structures are union-free");
            let arc = roots[0];
            let c = tape.value(arc.center);
            let l = tape.value(arc.len);
            assert_eq!((c.rows, c.cols), (1, model.cfg.dim), "{s}");
            assert!(
                c.data.iter().all(|v| v.is_finite()),
                "{s}: non-finite center"
            );
            assert!(
                l.data.iter().all(|v| v.is_finite() && *v >= -1e-4),
                "{s}: bad length"
            );
        }
    }

    #[test]
    fn batched_embedding_matches_individual() {
        let (g, model) = setup();
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let qs = sampler.sample_many(Structure::P2, 3, &mut rng);
        let shape = model.plan_cache().shape_for(&qs[0].query);
        let bound: Vec<_> = qs.iter().map(|q| model.bind(&shape, &q.query)).collect();
        let bindings: Vec<_> = bound.iter().map(|(b, _)| b.clone()).collect();
        let masks: Vec<_> = bound.iter().map(|(_, m)| m.clone()).collect();
        let mut tape = Tape::new();
        let batch = model.embed_plan(&mut tape, &shape, &bindings, &masks)[0];
        let bc = tape.value(batch.center).clone();
        for (i, q) in qs.iter().enumerate() {
            let mut t2 = Tape::new();
            let single = model.embed_plan(
                &mut t2,
                &shape,
                std::slice::from_ref(&bindings[i]),
                std::slice::from_ref(&masks[i]),
            )[0];
            let sc = t2.value(single.center);
            for j in 0..model.cfg.dim {
                assert!(
                    (bc.get(i, j) - sc.get(0, j)).abs() < 1e-5,
                    "row {i} dim {j} differs ({})",
                    q.query.render()
                );
            }
        }
    }

    #[test]
    fn union_queries_require_dnf() {
        let (g, model) = setup();
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(1), RelationId(0)),
        ]);
        // score_all handles unions internally via DNF.
        let scores = model.score_all(&q);
        assert_eq!(scores.len(), g.n_entities());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "DNF")]
    fn embed_batch_rejects_raw_unions() {
        let (_, model) = setup();
        let q = Query::Union(vec![
            Query::atom(EntityId(0), RelationId(0)),
            Query::atom(EntityId(1), RelationId(0)),
        ]);
        let mut tape = Tape::new();
        let _ = model.embed_batch_ast(&mut tape, &[&q]);
    }

    #[test]
    fn negation_v2_is_exact_complement() {
        let (g, mut_cfg) = (setup().0, HalkConfig::tiny().with_ablation(Ablation::V2));
        let model = HalkModel::new(&g, mut_cfg);
        let q = Query::atom(EntityId(2), RelationId(1));
        let qn = q.clone().negate();
        let arcs = model.embed_query(&q);
        let arcs_n = model.embed_query(&qn);
        for (a, an) in arcs[0].iter().zip(&arcs_n[0]) {
            // Lengths tile the circle; centers are antipodal.
            assert!((a.len + an.len - std::f32::consts::TAU).abs() < 1e-4);
            let delta = halk_geometry::angle::abs_delta(a.center, an.center);
            assert!((delta - std::f32::consts::PI).abs() < 1e-4);
        }
    }

    #[test]
    fn score_all_prefers_contained_entities() {
        // Build an artificial arc around entity 0's point: its own distance
        // must be <= that of a far-away synthetic point.
        let (g, model) = setup();
        let q = Query::atom(EntityId(0), RelationId(0));
        let scores = model.score_all(&q);
        assert_eq!(scores.len(), g.n_entities());
        assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn group_mask_projection_reaches_edge_groups() {
        let (g, model) = setup();
        let t = g.triples()[0];
        let q = Query::atom(t.h, t.r);
        let mask = model.group_mask_ast(&q);
        assert!(mask & model.grouping().mask_of(t.t) != 0);
        // The plan-time root mask agrees with the recursive walk.
        let shape = model.plan_cache().shape_for(&q);
        let (_, masks) = model.bind(&shape, &q);
        assert_eq!(masks.root, mask);
    }

    #[test]
    fn group_mask_negation_is_full() {
        let (g, model) = setup();
        let t = g.triples()[0];
        let q = Query::atom(t.h, t.r).negate();
        assert_eq!(model.group_mask_ast(&q), model.grouping().full_mask());
        let shape = model.plan_cache().shape_for(&q);
        let (_, masks) = model.bind(&shape, &q);
        assert_eq!(masks.root, model.grouping().full_mask());
    }

    #[test]
    fn distance_batch_matches_geometry_reference() {
        let (_, model) = setup();
        let mut tape = Tape::new();
        let d = model.cfg.dim;
        let c = tape.constant(1, d, 1.0);
        let l = tape.constant(1, d, 1.0);
        let arc = ArcVar { center: c, len: l };
        let p = tape.constant(1, d, 1.7);
        let dist = model.distance_batch(&mut tape, arc, p);
        let reference: f32 = (0..d)
            .map(|_| Arc::new(1.0, 1.0, model.cfg.rho).dist(1.7, model.cfg.eta))
            .sum();
        assert!((tape.value(dist).item() - reference).abs() < 1e-4);
    }

    #[test]
    fn distance_batch_zero_at_point_arc_match() {
        let (_, model) = setup();
        let mut tape = Tape::new();
        let d = model.cfg.dim;
        // A point arc at the entity's own angle: distance exactly 0.
        let c = tape.constant(1, d, 2.0);
        let l = tape.constant(1, d, 0.0);
        let arc = ArcVar { center: c, len: l };
        let p = tape.constant(1, d, 2.0);
        let dist = model.distance_batch(&mut tape, arc, p);
        assert!(tape.value(dist).item() < 1e-6);
    }

    #[test]
    fn save_load_roundtrip_preserves_scores() {
        let (g, model) = setup();
        // Nudge parameters off their init so the test is not vacuous.
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(77);
        let gq = sampler.sample(Structure::P2, &mut rng).expect("2p");
        let dir = std::env::temp_dir().join("halk_model_ckpt_test");
        let before = model.score_all(&gq.query);
        model.save(&dir).expect("save");
        let restored = HalkModel::load(&g, &dir).expect("load");
        let after = restored.score_all(&gq.query);
        assert_eq!(before, after);
    }

    #[test]
    fn load_rejects_mismatched_graph() {
        let (_g, model) = setup();
        let dir = std::env::temp_dir().join("halk_model_ckpt_test2");
        model.save(&dir).expect("save");
        let other = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(1));
        assert!(HalkModel::load(&other, &dir).is_err());
    }

    #[test]
    fn distance_batch_grows_with_separation() {
        let (_, model) = setup();
        let d = model.cfg.dim;
        let eval = |offset: f32| {
            let mut tape = Tape::new();
            let c = tape.constant(1, d, 1.0);
            let l = tape.constant(1, d, 0.5);
            let arc = ArcVar { center: c, len: l };
            let p = tape.constant(1, d, 1.0 + offset);
            let dist = model.distance_batch(&mut tape, arc, p);
            tape.value(dist).item()
        };
        assert!(eval(0.5) < eval(1.0));
        assert!(eval(1.0) < eval(2.0));
    }
}
