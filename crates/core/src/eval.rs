//! Filtered-ranking evaluation (§IV-A protocol).
//!
//! Test queries are sampled on the *test* graph; their hard answers are the
//! entities answerable only there (not on the validation graph), so a model
//! can only rank them well by generalizing over unseen edges. Easy answers
//! are filtered out of every ranking. Metrics are averaged per structure, as
//! in Tables I–IV.

use crate::exec::{ExecBackend, ExecConfig, Executor, ShapeKey};
use crate::qmodel::{QueryModel, ScoreCache};
use halk_kg::split::DatasetSplit;
use halk_logic::plan::{split_set, PlanBindings};
use halk_logic::{filtered_ranks, MetricsAccumulator, RankMetrics, Sampler, Structure};
use halk_par::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Evaluation result for one (model, structure) cell.
#[derive(Debug, Clone, Copy)]
pub struct EvalCell {
    /// Averaged metrics over the evaluated queries.
    pub metrics: RankMetrics,
    /// Number of queries evaluated.
    pub n_queries: usize,
    /// Total online scoring time (for Fig. 6c / Table VI), summed per query
    /// (CPU time, not wall clock, under a parallel pool).
    pub online_time: Duration,
    /// True when the attempt budget (`n_queries * 20`) ran out before
    /// `n_queries` queries with non-empty hard-answer sets were found.
    pub truncated: bool,
}

/// Attempts sampled ahead per speculative chunk in
/// [`evaluate_structure_pool`]. Sampling stays sequential (one RNG stream);
/// answering and scoring of a chunk fan out across the pool.
const SPEC_CHUNK: usize = 32;

/// Evaluates a model on one structure with `n_queries` sampled test queries,
/// scheduling on the ambient pool ([`Pool::auto`]).
///
/// Queries whose hard-answer set is empty (fully derivable on the validation
/// graph) are rejected and resampled, as the protocol requires.
pub fn evaluate_structure<M: QueryModel + Sync + ?Sized>(
    model: &M,
    split: &DatasetSplit,
    structure: Structure,
    n_queries: usize,
    seed: u64,
) -> EvalCell {
    evaluate_structure_pool(model, split, structure, n_queries, seed, Pool::auto())
}

/// The evaluation surface of the batch executor (DESIGN.md §15): a chunk
/// of speculative candidates is one job list (same structure ⇒ one
/// skeleton group), the group kernel answer-splits and scores queries in
/// parallel on the executor's pool, and the reduce hook's outputs come
/// back in attempt order so the caller's sequential rank folds see exactly
/// the sequential stream.
struct EvalBackend<'a, M: QueryModel + Sync + ?Sized> {
    model: &'a M,
    split: &'a DatasetSplit,
    /// Executor-provisioned scoring cache (shared across structures).
    cache: Option<Arc<ScoreCache>>,
}

impl<M: QueryModel + Sync + ?Sized> ExecBackend for EvalBackend<'_, M> {
    type Job = halk_logic::Query;
    type Out = Option<(Vec<usize>, Duration)>;

    fn key_of(&self, exec: &Executor, job: &Self::Job) -> Option<ShapeKey> {
        Some(ShapeKey::new(exec.shape_for(job)))
    }

    fn exec_group(
        &self,
        exec: &Executor,
        key: Option<&ShapeKey>,
        jobs: &[&Self::Job],
    ) -> Vec<Self::Out> {
        let shape = key.expect("eval jobs always carry a shape").shape();
        // Queries vary wildly in answer-set size, so use the dynamic
        // splitter; it returns results in attempt order regardless.
        exec.pool().par_map_dyn(jobs, |query| {
            let ans = split_set(
                shape,
                &PlanBindings::of(query),
                &self.split.valid,
                &self.split.test,
            );
            if ans.hard.is_empty() {
                return None;
            }
            let t0 = std::time::Instant::now();
            let scores = match &self.cache {
                Some(c) => self.model.score_all_cached(query, c),
                None => self.model.score_all(query),
            };
            let elapsed = t0.elapsed();
            Some((filtered_ranks(&scores, &ans.hard, &ans.easy), elapsed))
        })
    }
}

/// [`evaluate_structure`] on an explicit pool. Bit-identical metrics at any
/// thread count: candidate queries are sampled sequentially in fixed-size
/// chunks (the RNG stream is the sequential one), answer-splitting and
/// scoring of a chunk run in parallel, and results are accepted in attempt
/// order until `n_queries` are in — the same accepted set the sequential
/// loop picks. Samples drawn past the final acceptance are discarded
/// unobserved. Integer ranks are folded into the accumulator sequentially in
/// that same order, so the f64 metric sums associate identically too.
pub fn evaluate_structure_pool<M: QueryModel + Sync + ?Sized>(
    model: &M,
    split: &DatasetSplit,
    structure: Structure,
    n_queries: usize,
    seed: u64,
    pool: Pool,
) -> EvalCell {
    let exec = Executor::new(ExecConfig {
        threads: pool.threads(),
        label: "eval_score",
        ..ExecConfig::default()
    });
    evaluate_structure_exec(model, split, structure, n_queries, seed, &exec)
}

/// [`evaluate_structure_pool`] on an explicit [`Executor`] — the shared
/// batch-executor entry every eval caller routes through (DESIGN.md §15).
/// The executor owns the plan cache and the scoring cache; passing one
/// executor across structures (as [`evaluate_table_pool`] does) builds the
/// model's scoring tables once per parameter state instead of once per
/// structure.
pub fn evaluate_structure_exec<M: QueryModel + Sync + ?Sized>(
    model: &M,
    split: &DatasetSplit,
    structure: Structure,
    n_queries: usize,
    seed: u64,
    exec: &Executor,
) -> EvalCell {
    let _span = halk_obs::span!("eval_structure", || structure.to_string());
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = Sampler::new(&split.test);
    // Resolve the model's scoring cache (e.g. entity-table trig) through
    // the executor's cache layer: built at most once per parameter state,
    // shared across structures. The exact answer splits likewise share one
    // compiled plan per structure skeleton via the executor's plan cache.
    let setup_span = halk_obs::span!("eval_setup");
    let setup_start = std::time::Instant::now();
    let backend = EvalBackend {
        model,
        split,
        cache: exec.score_cache(model),
    };
    halk_obs::histogram!("halk_eval_setup_us").record(setup_start.elapsed().as_micros() as u64);
    drop(setup_span);
    let mut acc = MetricsAccumulator::new();
    let mut online = Duration::ZERO;
    let mut evaluated = 0usize;
    let mut attempts = 0usize;
    let max_attempts = n_queries * 20;

    while evaluated < n_queries && attempts < max_attempts {
        let chunk = SPEC_CHUNK.min(max_attempts - attempts);
        let sample_span = halk_obs::span!("eval_sample");
        let sample_start = std::time::Instant::now();
        let mut candidates = Vec::with_capacity(chunk);
        for _ in 0..chunk {
            attempts += 1;
            if let Some(gq) = sampler.sample(structure, &mut rng) {
                candidates.push(gq.query);
            }
        }
        halk_obs::histogram!("halk_eval_sample_us")
            .record(sample_start.elapsed().as_micros() as u64);
        drop(sample_span);

        // One executor submission per chunk: same structure ⇒ one skeleton
        // group, scored in parallel inside the group kernel.
        let score_span = halk_obs::span!("eval_score");
        let score_start = std::time::Instant::now();
        let scored = exec.submit(&backend, &candidates);
        halk_obs::histogram!("halk_eval_score_us").record(score_start.elapsed().as_micros() as u64);
        drop(score_span);

        let rank_span = halk_obs::span!("eval_rank");
        let rank_start = std::time::Instant::now();
        for (ranks, elapsed) in scored.into_iter().flatten() {
            if evaluated >= n_queries {
                break;
            }
            acc.push_ranks(&ranks);
            online += elapsed;
            evaluated += 1;
        }
        halk_obs::histogram!("halk_eval_rank_us").record(rank_start.elapsed().as_micros() as u64);
        drop(rank_span);
    }

    halk_obs::counter!("halk_eval_attempts_total").add(attempts as u64);
    halk_obs::counter!("halk_eval_queries_total").add(evaluated as u64);
    let truncated = evaluated < n_queries;
    if truncated {
        halk_obs::counter!("halk_eval_truncated_total").inc();
        halk_obs::log!(
            Warn,
            "eval[{structure}]: attempt budget exhausted ({attempts} attempts); \
             evaluated {evaluated}/{n_queries} queries"
        );
    }
    EvalCell {
        metrics: acc.finish(),
        n_queries: evaluated,
        online_time: online,
        truncated,
    }
}

/// Evaluates a model across a list of structures (a table row), skipping
/// structures the model does not support (rendered as `-` in the paper's
/// tables). Structures fan out across the ambient pool.
pub fn evaluate_table<M: QueryModel + Sync + ?Sized>(
    model: &M,
    split: &DatasetSplit,
    structures: &[Structure],
    n_queries: usize,
    seed: u64,
) -> Vec<(Structure, Option<EvalCell>)> {
    evaluate_table_pool(model, split, structures, n_queries, seed, Pool::auto())
}

/// [`evaluate_table`] on an explicit pool: structures are uneven work items,
/// so they go through the dynamic splitter, and each cell evaluates
/// sequentially inside to avoid nested oversubscription. Each cell is
/// bit-identical to its sequential evaluation, so the whole row is too.
///
/// One [`Executor`] is shared by every cell, so the model's scoring cache
/// (HaLk's entity-trig table) is built once for the whole row instead of
/// once per structure — the cells only race for the first build, after
/// which they share the same `Arc`'d table.
pub fn evaluate_table_pool<M: QueryModel + Sync + ?Sized>(
    model: &M,
    split: &DatasetSplit,
    structures: &[Structure],
    n_queries: usize,
    seed: u64,
    pool: Pool,
) -> Vec<(Structure, Option<EvalCell>)> {
    let exec = Executor::new(ExecConfig {
        threads: 1,
        label: "eval_score",
        ..ExecConfig::default()
    });
    let pool = pool.labeled("eval_table");
    pool.par_map_dyn(structures, |&s| {
        if model.supports(s) {
            (
                s,
                Some(evaluate_structure_exec(
                    model, split, s, n_queries, seed, &exec,
                )),
            )
        } else {
            (s, None)
        }
    })
}

/// Average of a metric accessor over the supported cells of a table row.
pub fn row_average(
    row: &[(Structure, Option<EvalCell>)],
    metric: impl Fn(&RankMetrics) -> f64,
) -> f64 {
    let vals: Vec<f64> = row
        .iter()
        .filter_map(|(_, c)| c.as_ref().map(|c| metric(&c.metrics)))
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HalkConfig;
    use crate::model::HalkModel;
    use crate::train::{train_model, TrainConfig};
    use halk_kg::{generate, DatasetSplit, SynthConfig};

    fn setup() -> (DatasetSplit, HalkModel) {
        setup_with(HalkConfig::tiny())
    }

    fn setup_with(cfg: HalkConfig) -> (DatasetSplit, HalkModel) {
        let mut rng = StdRng::seed_from_u64(40);
        let full = generate(&SynthConfig::fb237_like(), &mut rng);
        let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
        let model = HalkModel::new(&split.train, cfg);
        (split, model)
    }

    #[test]
    fn evaluation_produces_valid_metrics() {
        let (split, model) = setup();
        let cell = evaluate_structure(&model, &split, Structure::P1, 5, 1);
        assert!(cell.n_queries > 0);
        let m = cell.metrics;
        assert!((0.0..=1.0).contains(&m.mrr));
        assert!(m.hits1 <= m.hits3 && m.hits3 <= m.hits10);
        assert!(cell.online_time.as_nanos() > 0);
    }

    #[test]
    fn trained_model_beats_untrained_on_seen_queries() {
        // Rank the known train-graph answers of 1p queries (hard = all
        // answers, nothing filtered). Training must massively improve this;
        // full *generalization* quality needs a release-mode budget and is
        // exercised by the experiment harness (crates/bench), not here.
        // The literal Eq. 16 reading memorizes fastest at tiny dimensions
        // (two sharp attractors per dim); the production default
        // (CenterAnchored) needs d >= ~16 to be discriminative, which the
        // release-scale harness uses. This test checks the training loop,
        // not the distance-mode choice — see exp_ablation_distance for that.
        let cfg = HalkConfig::tiny().with_distance(crate::config::DistanceMode::LiteralEq16);
        let (split, mut trained) = setup_with(cfg.clone());
        let untrained = {
            let (_, m) = setup_with(cfg);
            m
        };
        let mut tc = TrainConfig::tiny();
        tc.steps = 1200;
        tc.batch_size = 16;
        train_model(&mut trained, &split.train, &[Structure::P1], &tc).unwrap();

        let rank_on_train = |model: &HalkModel| {
            let sampler = halk_logic::Sampler::new(&split.train);
            let mut rng = StdRng::seed_from_u64(123);
            let mut acc = halk_logic::MetricsAccumulator::new();
            for gq in sampler.sample_many(Structure::P1, 15, &mut rng) {
                let ans = halk_logic::answers(&gq.query, &split.train);
                let hard: Vec<_> = ans.iter().collect();
                let scores = model.score_all(&gq.query);
                acc.push_ranks(&halk_logic::filtered_ranks(&scores, &hard, &[]));
            }
            acc.finish().mrr
        };
        let m_trained = rank_on_train(&trained);
        let m_untrained = rank_on_train(&untrained);
        assert!(
            m_trained > 2.0 * m_untrained,
            "training did not help: {m_trained} vs {m_untrained}"
        );
    }

    #[test]
    fn evaluate_table_marks_unsupported_as_none() {
        struct NoDiff(HalkModel);
        impl QueryModel for NoDiff {
            fn name(&self) -> &'static str {
                "NoDiff"
            }
            fn supports(&self, s: Structure) -> bool {
                !s.has_difference()
            }
            fn train_batch(&mut self, b: &[crate::qmodel::TrainExample]) -> f32 {
                self.0.train_batch(b)
            }
            fn score_all(&self, q: &halk_logic::Query) -> Vec<f32> {
                self.0.score_all(q)
            }
            fn n_entities(&self) -> usize {
                self.0.n_entities()
            }
        }
        let (split, model) = setup();
        let wrapped = NoDiff(model);
        let row = evaluate_table(&wrapped, &split, &[Structure::P1, Structure::D2], 2, 3);
        assert!(row[0].1.is_some());
        assert!(row[1].1.is_none());
        assert!(row_average(&row, |m| m.mrr) >= 0.0);
    }
}
