//! Filtered-ranking evaluation (§IV-A protocol).
//!
//! Test queries are sampled on the *test* graph; their hard answers are the
//! entities answerable only there (not on the validation graph), so a model
//! can only rank them well by generalizing over unseen edges. Easy answers
//! are filtered out of every ranking. Metrics are averaged per structure, as
//! in Tables I–IV.

use crate::qmodel::QueryModel;
use halk_kg::split::DatasetSplit;
use halk_logic::{
    answer_split, filtered_ranks, MetricsAccumulator, RankMetrics, Sampler, Structure,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Evaluation result for one (model, structure) cell.
#[derive(Debug, Clone, Copy)]
pub struct EvalCell {
    /// Averaged metrics over the evaluated queries.
    pub metrics: RankMetrics,
    /// Number of queries evaluated.
    pub n_queries: usize,
    /// Total online scoring time (for Fig. 6c / Table VI).
    pub online_time: Duration,
}

/// Evaluates a model on one structure with `n_queries` sampled test queries.
///
/// Queries whose hard-answer set is empty (fully derivable on the validation
/// graph) are rejected and resampled, as the protocol requires.
pub fn evaluate_structure<M: QueryModel + ?Sized>(
    model: &M,
    split: &DatasetSplit,
    structure: Structure,
    n_queries: usize,
    seed: u64,
) -> EvalCell {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = Sampler::new(&split.test);
    let mut acc = MetricsAccumulator::new();
    let mut online = Duration::ZERO;
    let mut evaluated = 0usize;
    let mut attempts = 0usize;
    let max_attempts = n_queries * 20;

    while evaluated < n_queries && attempts < max_attempts {
        attempts += 1;
        let Some(gq) = sampler.sample(structure, &mut rng) else {
            continue;
        };
        let ans = answer_split(&gq.query, &split.valid, &split.test);
        if ans.hard.is_empty() {
            continue;
        }
        let t0 = std::time::Instant::now();
        let scores = model.score_all(&gq.query);
        online += t0.elapsed();
        let ranks = filtered_ranks(&scores, &ans.hard, &ans.easy);
        acc.push_ranks(&ranks);
        evaluated += 1;
    }

    EvalCell {
        metrics: acc.finish(),
        n_queries: evaluated,
        online_time: online,
    }
}

/// Evaluates a model across a list of structures (a table row), skipping
/// structures the model does not support (rendered as `-` in the paper's
/// tables).
pub fn evaluate_table<M: QueryModel + ?Sized>(
    model: &M,
    split: &DatasetSplit,
    structures: &[Structure],
    n_queries: usize,
    seed: u64,
) -> Vec<(Structure, Option<EvalCell>)> {
    structures
        .iter()
        .map(|&s| {
            if model.supports(s) {
                (
                    s,
                    Some(evaluate_structure(model, split, s, n_queries, seed)),
                )
            } else {
                (s, None)
            }
        })
        .collect()
}

/// Average of a metric accessor over the supported cells of a table row.
pub fn row_average(
    row: &[(Structure, Option<EvalCell>)],
    metric: impl Fn(&RankMetrics) -> f64,
) -> f64 {
    let vals: Vec<f64> = row
        .iter()
        .filter_map(|(_, c)| c.as_ref().map(|c| metric(&c.metrics)))
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HalkConfig;
    use crate::model::HalkModel;
    use crate::train::{train_model, TrainConfig};
    use halk_kg::{generate, DatasetSplit, SynthConfig};

    fn setup() -> (DatasetSplit, HalkModel) {
        setup_with(HalkConfig::tiny())
    }

    fn setup_with(cfg: HalkConfig) -> (DatasetSplit, HalkModel) {
        let mut rng = StdRng::seed_from_u64(40);
        let full = generate(&SynthConfig::fb237_like(), &mut rng);
        let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
        let model = HalkModel::new(&split.train, cfg);
        (split, model)
    }

    #[test]
    fn evaluation_produces_valid_metrics() {
        let (split, model) = setup();
        let cell = evaluate_structure(&model, &split, Structure::P1, 5, 1);
        assert!(cell.n_queries > 0);
        let m = cell.metrics;
        assert!((0.0..=1.0).contains(&m.mrr));
        assert!(m.hits1 <= m.hits3 && m.hits3 <= m.hits10);
        assert!(cell.online_time.as_nanos() > 0);
    }

    #[test]
    fn trained_model_beats_untrained_on_seen_queries() {
        // Rank the known train-graph answers of 1p queries (hard = all
        // answers, nothing filtered). Training must massively improve this;
        // full *generalization* quality needs a release-mode budget and is
        // exercised by the experiment harness (crates/bench), not here.
        // The literal Eq. 16 reading memorizes fastest at tiny dimensions
        // (two sharp attractors per dim); the production default
        // (CenterAnchored) needs d >= ~16 to be discriminative, which the
        // release-scale harness uses. This test checks the training loop,
        // not the distance-mode choice — see exp_ablation_distance for that.
        let cfg = HalkConfig::tiny().with_distance(crate::config::DistanceMode::LiteralEq16);
        let (split, mut trained) = setup_with(cfg.clone());
        let untrained = {
            let (_, m) = setup_with(cfg);
            m
        };
        let mut tc = TrainConfig::tiny();
        tc.steps = 1200;
        tc.batch_size = 16;
        train_model(&mut trained, &split.train, &[Structure::P1], &tc).unwrap();

        let rank_on_train = |model: &HalkModel| {
            let sampler = halk_logic::Sampler::new(&split.train);
            let mut rng = StdRng::seed_from_u64(123);
            let mut acc = halk_logic::MetricsAccumulator::new();
            for gq in sampler.sample_many(Structure::P1, 15, &mut rng) {
                let ans = halk_logic::answers(&gq.query, &split.train);
                let hard: Vec<_> = ans.iter().collect();
                let scores = model.score_all(&gq.query);
                acc.push_ranks(&halk_logic::filtered_ranks(&scores, &hard, &[]));
            }
            acc.finish().mrr
        };
        let m_trained = rank_on_train(&trained);
        let m_untrained = rank_on_train(&untrained);
        assert!(
            m_trained > 2.0 * m_untrained,
            "training did not help: {m_trained} vs {m_untrained}"
        );
    }

    #[test]
    fn evaluate_table_marks_unsupported_as_none() {
        struct NoDiff(HalkModel);
        impl QueryModel for NoDiff {
            fn name(&self) -> &'static str {
                "NoDiff"
            }
            fn supports(&self, s: Structure) -> bool {
                !s.has_difference()
            }
            fn train_batch(&mut self, b: &[crate::qmodel::TrainExample]) -> f32 {
                self.0.train_batch(b)
            }
            fn score_all(&self, q: &halk_logic::Query) -> Vec<f32> {
                self.0.score_all(q)
            }
            fn n_entities(&self) -> usize {
                self.0.n_entities()
            }
        }
        let (split, model) = setup();
        let wrapped = NoDiff(model);
        let row = evaluate_table(&wrapped, &split, &[Structure::P1, Structure::D2], 2, 3);
        assert!(row[0].1.is_some());
        assert!(row[1].1.is_none());
        assert!(row_average(&row, |m| m.mrr) >= 0.0);
    }
}
