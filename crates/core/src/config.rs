//! Hyper-parameters for the HaLk model and its ablation variants.

use serde::{Deserialize, Serialize};

/// Which ablated variant of HaLk to build (Table V of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ablation {
    /// The full model.
    None,
    /// HaLk-V1: NewLook-style raw-value overlap in the difference operator
    /// and no cardinality constraint.
    V1,
    /// HaLk-V2: *linear*-transformation negation (the closed-form complement
    /// only, no corrective neural network).
    V2,
    /// HaLk-V3: NewLook-style projection — center and length learned
    /// independently instead of through the coordinated (start, end) pair.
    V3,
}

/// How to read the outside-distance formula of Eq. 16 (a design choice this
/// reproduction measured; see `exp_ablation_distance` and EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMode {
    /// Eq. 16 taken literally: `d_o` = smaller endpoint chord everywhere.
    /// A point arc degenerates to the RotatE chord distance; positives keep
    /// receiving gradient anywhere on the circle.
    LiteralEq16,
    /// ConE-style reading: `d_o = 0` anywhere on the arc. Lets arcs inflate
    /// to cover positives without organizing the embedding space — trains
    /// an order of magnitude worse at CPU scale.
    ZeroedInside,
    /// Literal endpoints plus the semantic center as a third attractor:
    /// `d_o = min(chord(v, A_S), chord(v, A_E), chord(v, A_c))`. Preserves
    /// the literal reading's training signal while ranking interior answers
    /// (which concentrate at the semantic center) correctly on wide arcs.
    /// The default — measurably strongest at CPU scale (EXPERIMENTS.md).
    CenterAnchored,
}

/// All scale and optimization knobs for one HaLk training run.
///
/// Paper defaults (§IV-A) are `d = 800`, batch 512, 128 negatives on 4×RTX
/// 3090; the CPU-scaled defaults below preserve every ratio that matters for
/// the comparisons (see DESIGN.md §4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HalkConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Hidden width of the operator MLPs.
    pub hidden: usize,
    /// Hidden layers per operator MLP.
    pub mlp_layers: usize,
    /// Circle radius `ρ` (§II-A fixes it; radius learning is future work).
    pub rho: f32,
    /// Scale `λ` of the squashing function `g` (Eq. 3).
    pub lambda: f32,
    /// Margin `γ` of the loss (Eq. 17).
    pub gamma: f32,
    /// Inside-distance down-weight `η` (Eq. 15).
    pub eta: f32,
    /// Group-penalty weight `ξ` (Eq. 17).
    pub xi: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Queries per mini-batch.
    pub batch_size: usize,
    /// Negative samples per positive (`m` in Eq. 17).
    pub negatives: usize,
    /// Number of random node groups (§II-A).
    pub n_groups: usize,
    /// Total optimizer steps.
    pub steps: usize,
    /// RNG seed for initialization and sampling.
    pub seed: u64,
    /// Ablation variant.
    pub ablation: Ablation,
    /// Outside-distance reading of Eq. 16.
    pub distance: DistanceMode,
}

impl Default for HalkConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            hidden: 64,
            mlp_layers: 1,
            rho: 1.0,
            lambda: 1.0,
            gamma: 2.0,
            eta: 0.05,
            xi: 0.5,
            lr: 0.01,
            batch_size: 64,
            negatives: 16,
            n_groups: 32,
            steps: 600,
            seed: 7,
            ablation: Ablation::None,
            distance: DistanceMode::CenterAnchored,
        }
    }
}

impl HalkConfig {
    /// A tiny configuration for unit tests (fast, still end-to-end).
    pub fn tiny() -> Self {
        Self {
            dim: 8,
            hidden: 16,
            steps: 40,
            batch_size: 16,
            negatives: 4,
            n_groups: 8,
            ..Self::default()
        }
    }

    /// Returns a copy with the given ablation enabled.
    pub fn with_ablation(mut self, a: Ablation) -> Self {
        self.ablation = a;
        self
    }

    /// Returns a copy with the given distance mode.
    pub fn with_distance(mut self, d: DistanceMode) -> Self {
        self.distance = d;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = HalkConfig::default();
        assert!(c.dim > 0 && c.hidden >= c.dim);
        assert!(c.eta > 0.0 && c.eta < 1.0, "η must be in (0,1) per Eq. 15");
        assert!(c.gamma > 0.0, "margin must be positive per Eq. 17");
        assert_eq!(c.ablation, Ablation::None);
    }

    #[test]
    fn tiny_is_smaller() {
        let t = HalkConfig::tiny();
        let d = HalkConfig::default();
        assert!(t.dim < d.dim && t.steps < d.steps);
    }

    #[test]
    fn with_ablation_sets_variant() {
        let c = HalkConfig::tiny().with_ablation(Ablation::V2);
        assert_eq!(c.ablation, Ablation::V2);
    }

    #[test]
    fn distance_mode_defaults_to_center_anchored() {
        assert_eq!(HalkConfig::default().distance, DistanceMode::CenterAnchored);
        let c = HalkConfig::tiny().with_distance(DistanceMode::ZeroedInside);
        assert_eq!(c.distance, DistanceMode::ZeroedInside);
    }
}
