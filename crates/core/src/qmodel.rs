//! The [`QueryModel`] abstraction shared by HaLk and every baseline.
//!
//! Tables I–IV and Figures 6b/6c compare four learned methods under one
//! protocol; this trait is that protocol's surface: batched margin-loss
//! training on grounded queries, and distance scoring of every entity
//! against a query. The harness trains and evaluates any `QueryModel`
//! identically, so timing comparisons are apples-to-apples.

use crate::config::HalkConfig;
use crate::exec::{ExecBackend, Executor, ShapeKey};
use crate::model::HalkModel;
use halk_kg::EntityId;
use halk_logic::plan::{PlanBindings, PlanMasks, PlanShape};
use halk_logic::{Query, Structure};
use halk_nn::{GradBuffer, ParamStore, Tape, Var};
use std::sync::{Arc, Mutex};

/// One training example: a grounded query, one positive answer and `m`
/// negative entities (the negative-sampling trick of §III-G).
#[derive(Debug, Clone)]
pub struct TrainExample {
    /// Grounded, union-free query (training structures never contain
    /// unions; §IV-A holds 2u/up out of training).
    pub query: Query,
    /// An entity from the exact answer set.
    pub positive: EntityId,
    /// Entities outside the answer set.
    pub negatives: Vec<EntityId>,
}

/// Examples per training shard. Fixed by data, not by hardware: the shard
/// plan for a batch is identical at every thread count, which is what makes
/// data-parallel training bit-reproducible (DESIGN.md §9).
const TRAIN_SHARD_SIZE: usize = 8;

/// Forward pass of one training shard on its own tape: executes the
/// batch's compiled plan over the shard's binding tables, builds
/// positive/negative distance columns with their group penalties (Eq. 17)
/// and returns the shard-mean margin loss. `m` is the batch-global minimum
/// negative count; `bindings`/`masks` are the shard's slices of the
/// batch-wide bind tables computed once before sharding.
#[allow(clippy::too_many_arguments)] // one parameter per precomputed batch constant
fn shard_forward(
    model: &HalkModel,
    tape: &mut Tape,
    shard: &[TrainExample],
    shape: &PlanShape,
    bindings: &[PlanBindings],
    masks: &[PlanMasks],
    m: usize,
    cfg: &HalkConfig,
) -> Var {
    let roots = model.embed_plan(tape, shape, bindings, masks);
    assert_eq!(roots.len(), 1, "training structures are union-free (§IV-A)");
    let arc = roots[0];

    // Group penalty constants ξ‖Relu(h_v − h_{U_q})‖₁ (Eq. 17). The query
    // mask h_{U_q} is the plan's precomputed root mask.
    let pen = |ids: &[u32]| -> halk_nn::Tensor {
        let data = ids
            .iter()
            .zip(masks)
            .map(|(&e, qm)| {
                cfg.xi
                    * halk_kg::Grouping::relu_l1(model.grouping().mask_of(EntityId(e)), qm.root)
                        as f32
            })
            .collect();
        halk_nn::Tensor::from_vec(ids.len(), 1, data)
    };

    // Positive: d(v‖A_q) and the group penalty.
    let pos_ids: Vec<u32> = shard.iter().map(|ex| ex.positive.0).collect();
    let pos_pen = pen(&pos_ids);
    let pos_points = model.entity_points(tape, &pos_ids);
    let d_pos = model.distance_batch(tape, arc, pos_points);
    let pos_pen_var = tape.input(pos_pen);

    // Negatives: m distance columns with their penalties.
    let mut d_negs = Vec::with_capacity(m);
    let mut neg_pens = Vec::with_capacity(m);
    for j in 0..m {
        let ids: Vec<u32> = shard.iter().map(|ex| ex.negatives[j].0).collect();
        let neg_pen = pen(&ids);
        let points = model.entity_points(tape, &ids);
        d_negs.push(model.distance_batch(tape, arc, points));
        neg_pens.push(tape.input(neg_pen));
    }

    crate::loss::margin_loss(
        tape,
        d_pos,
        Some(pos_pen_var),
        &d_negs,
        Some(&neg_pens),
        cfg.gamma,
    )
}

/// The training surface of the batch executor (DESIGN.md §15): the whole
/// batch is one skeleton group (same-structure by protocol, asserted in
/// [`HalkModel::train_batch`] with the usual `Arc::ptr_eq` guard), and the
/// reduce hook stages gradients — it splits the group into the fixed
/// 8-example shards, runs each shard's forward/backward on its persistent
/// tape via the executor's pool, and parks the per-shard losses and staged
/// [`GradBuffer`]s for the caller's fixed-order fold. Nothing here depends
/// on thread count, which is what keeps training bit-reproducible
/// (DESIGN.md §9).
struct TrainBackend<'a> {
    model: &'a HalkModel,
    batch: &'a [TrainExample],
    shape: Arc<PlanShape>,
    bindings: &'a [PlanBindings],
    masks: &'a [PlanMasks],
    m: usize,
    cfg: &'a HalkConfig,
    n_shards: usize,
    /// The model's persistent `(Tape, GradBuffer)` shard state, taken out
    /// of the model for the duration of the step (forward passes borrow
    /// the model immutably) and reclaimed by the caller afterwards.
    shards: Mutex<Vec<(Tape, GradBuffer)>>,
    /// Per-shard scaled losses, in shard order.
    shard_losses: Mutex<Vec<f32>>,
}

impl ExecBackend for TrainBackend<'_> {
    type Job = usize;
    type Out = ();

    fn key_of(&self, _exec: &Executor, _job: &usize) -> Option<ShapeKey> {
        Some(ShapeKey::new(self.shape.clone()))
    }

    fn exec_group(&self, exec: &Executor, _key: Option<&ShapeKey>, jobs: &[&usize]) -> Vec<()> {
        let b = self.batch.len();
        debug_assert_eq!(jobs.len(), b, "one training group spans the whole batch");
        let mut shards = self.shards.lock().expect("train shards");
        let model = self.model;
        // Shard boundaries depend only on the batch size, never on the
        // thread count, and every shard stages gradients in its own
        // buffer, so any parallelism yields bit-identical results.
        let losses = exec
            .pool()
            .par_map_mut(&mut shards[..self.n_shards], |si, shard| {
                let (tape, buf) = shard;
                let lo = si * TRAIN_SHARD_SIZE;
                let hi = (lo + TRAIN_SHARD_SIZE).min(b);
                tape.reset();
                buf.reset_for(&model.store);
                let loss = shard_forward(
                    model,
                    tape,
                    &self.batch[lo..hi],
                    &self.shape,
                    &self.bindings[lo..hi],
                    &self.masks[lo..hi],
                    self.m,
                    self.cfg,
                );
                // Weight the shard's mean by its share of the batch so the
                // shard-summed loss and gradients form one batch-wide mean.
                let scaled = tape.scale(loss, (hi - lo) as f32 / b as f32);
                tape.backward_into(scaled, buf);
                tape.value(scaled).item()
            });
        *self.shard_losses.lock().expect("train losses") = losses;
        vec![(); jobs.len()]
    }
}

/// Opaque per-table-state scoring cache (see [`QueryModel::score_cache`]).
pub type ScoreCache = Box<dyn std::any::Any + Send + Sync>;

/// A trainable query-answering model.
pub trait QueryModel {
    /// Display name used in the experiment tables.
    fn name(&self) -> &'static str;

    /// Whether the model's operator set covers a structure (ConE/MLPMix
    /// lack difference; NewLook lacks negation — §IV-A).
    fn supports(&self, s: Structure) -> bool;

    /// One optimizer step over a batch of same-structure examples; returns
    /// the batch loss.
    fn train_batch(&mut self, batch: &[TrainExample]) -> f32;

    /// Distance of every entity to the query region (lower = better).
    fn score_all(&self, query: &Query) -> Vec<f32>;

    /// Universe size (length of `score_all` results).
    fn n_entities(&self) -> usize;

    /// Sets the worker-thread count for any internal parallelism
    /// (0 = auto). A scheduling knob only — results must be bit-identical
    /// at every setting. Models without parallel paths ignore it.
    fn set_threads(&mut self, _threads: usize) {}

    /// Builds a reusable scoring cache for the current parameter state
    /// (e.g. precomputed entity-table trig), or `None` if the model has
    /// nothing to amortize. Valid until the next training step.
    fn score_cache(&self) -> Option<ScoreCache> {
        None
    }

    /// [`QueryModel::score_all`] routed through a cache built by
    /// [`QueryModel::score_cache`] on the same parameter state. Must return
    /// bit-identical scores to the uncached path.
    fn score_all_cached(&self, query: &Query, _cache: &ScoreCache) -> Vec<f32> {
        self.score_all(query)
    }

    /// The parameter store backing this model, if it exposes one. Models
    /// that do get generic checkpoint/resume and divergence rollback from
    /// the training loop for free.
    fn param_store(&self) -> Option<&ParamStore> {
        None
    }

    /// Mutable access to the backing parameter store (see [`param_store`]).
    ///
    /// [`param_store`]: QueryModel::param_store
    fn param_store_mut(&mut self) -> Option<&mut ParamStore> {
        None
    }
}

impl QueryModel for HalkModel {
    fn name(&self) -> &'static str {
        "HaLk"
    }

    fn supports(&self, _s: Structure) -> bool {
        // The holistic claim (§I): all five operators in one framework.
        true
    }

    fn train_batch(&mut self, batch: &[TrainExample]) -> f32 {
        assert!(!batch.is_empty());
        let cfg: HalkConfig = self.cfg.clone();
        let b = batch.len();
        let n_shards = b.div_ceil(TRAIN_SHARD_SIZE);

        // Constants fixed over the whole batch so no shard-local choice
        // depends on the split: the minimum negative count m, the compiled
        // shape (one per batch — batches are same-structure) and the
        // per-example bindings with group masks h_{U_q} (Eq. 17).
        let m = batch.iter().map(|ex| ex.negatives.len()).min().unwrap_or(0);
        assert!(m > 0, "training requires at least one negative per example");
        let shape = self.plan_cache().shape_for(&batch[0].query);
        let mut bindings = Vec::with_capacity(b);
        let mut masks = Vec::with_capacity(b);
        for ex in batch {
            assert!(
                Arc::ptr_eq(&shape, &self.plan_cache().shape_for(&ex.query)),
                "heterogeneous batch: {} does not match the batch shape",
                ex.query.render()
            );
            let (bi, mi) = self.bind(&shape, &ex.query);
            bindings.push(bi);
            masks.push(mi);
        }

        // Take the persistent shard state out of the model (forward passes
        // borrow &self), grow it to this batch's shard plan, and put it
        // back at the end so the tape buffer pools survive across steps.
        let mut shards = std::mem::take(&mut self.train_shards);
        while shards.len() < n_shards {
            shards.push((Tape::new(), GradBuffer::new()));
        }

        // Submit the batch through the model's executor as one skeleton
        // group; the backend's reduce hook fans the group into fixed
        // shards and stages per-shard gradients (see [`TrainBackend`]).
        let this: &HalkModel = self;
        let backend = TrainBackend {
            model: this,
            batch,
            shape,
            bindings: &bindings,
            masks: &masks,
            m,
            cfg: &cfg,
            n_shards,
            shards: Mutex::new(shards),
            shard_losses: Mutex::new(Vec::new()),
        };
        let jobs: Vec<usize> = (0..b).collect();
        let _ = this.executor().submit(&backend, &jobs);
        let shards = backend.shards.into_inner().expect("train shards");
        let losses = backend.shard_losses.into_inner().expect("train losses");

        // Fixed-order reduction: shard gradients and losses combine in
        // shard order regardless of which worker produced them.
        self.store.zero_grads();
        for (_, buf) in &shards[..n_shards] {
            buf.add_into(&mut self.store);
        }
        self.store.clip_grad_norm(5.0);
        self.store.adam_step(cfg.lr);
        self.train_shards = shards;
        losses.iter().sum()
    }

    fn score_all(&self, query: &Query) -> Vec<f32> {
        HalkModel::score_all(self, query)
    }

    fn n_entities(&self) -> usize {
        HalkModel::n_entities(self)
    }

    fn set_threads(&mut self, threads: usize) {
        HalkModel::set_threads(self, threads);
    }

    fn score_cache(&self) -> Option<ScoreCache> {
        Some(Box::new(self.entity_trig()))
    }

    fn score_all_cached(&self, query: &Query, cache: &ScoreCache) -> Vec<f32> {
        let trig = cache
            .downcast_ref::<crate::scorer::EntityTrig>()
            .expect("cache built by a different model");
        let mut out = Vec::new();
        self.score_all_with(trig, query, &mut out);
        out
    }

    fn param_store(&self) -> Option<&ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut ParamStore> {
        Some(&mut self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{generate, Graph, SynthConfig};
    use halk_logic::{answers, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Graph, HalkModel) {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(9));
        let model = HalkModel::new(&g, HalkConfig::tiny());
        (g, model)
    }

    fn examples(g: &Graph, s: Structure, n: usize, seed: u64) -> Vec<TrainExample> {
        let sampler = Sampler::new(g);
        let mut rng = StdRng::seed_from_u64(seed);
        sampler
            .sample_many(s, n, &mut rng)
            .into_iter()
            .map(|gq| {
                let ans = answers(&gq.query, g);
                let positive = ans.iter().next().expect("non-empty");
                let negatives = sampler.negatives(&ans, 4, &mut rng);
                TrainExample {
                    query: gq.query,
                    positive,
                    negatives,
                }
            })
            .collect()
    }

    #[test]
    fn train_batch_returns_finite_loss_and_updates_params() {
        let (g, mut model) = setup();
        let batch = examples(&g, Structure::P1, 8, 1);
        let probe = batch[0].positive;
        let before: Vec<f32> = (0..model.cfg.dim)
            .map(|j| model.entity_angle(probe, j))
            .collect();
        let loss = model.train_batch(&batch);
        assert!(loss.is_finite() && loss > 0.0);
        let after: Vec<f32> = (0..model.cfg.dim)
            .map(|j| model.entity_angle(probe, j))
            .collect();
        assert_ne!(before, after, "positive entity embedding did not move");
        assert_eq!(model.store.steps_taken(), 1);
    }

    #[test]
    fn loss_decreases_over_steps_on_fixed_batch() {
        let (g, mut model) = setup();
        let batch = examples(&g, Structure::P1, 16, 2);
        let first = model.train_batch(&batch);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_batch(&batch);
        }
        assert!(
            last < first,
            "loss did not decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn training_improves_positive_over_negative_scores() {
        let (g, mut model) = setup();
        let batch = examples(&g, Structure::P1, 16, 3);
        for _ in 0..60 {
            model.train_batch(&batch);
        }
        // After training, the positive should usually score better (lower)
        // than a random negative for the trained queries.
        let mut wins = 0;
        let mut total = 0;
        for ex in &batch {
            let scores = QueryModel::score_all(&model, &ex.query);
            for n in &ex.negatives {
                total += 1;
                if scores[ex.positive.index()] < scores[n.index()] {
                    wins += 1;
                }
            }
        }
        assert!(
            wins * 3 > total * 2,
            "positives beat negatives only {wins}/{total}"
        );
    }

    #[test]
    fn train_batch_handles_every_training_structure() {
        let (g, mut model) = setup();
        for s in Structure::training() {
            let batch = examples(&g, s, 4, 4);
            assert!(!batch.is_empty(), "{s}: no examples");
            let loss = model.train_batch(&batch);
            assert!(loss.is_finite(), "{s}: loss {loss}");
        }
    }

    #[test]
    fn supports_everything() {
        let (_, model) = setup();
        for s in Structure::all() {
            assert!(model.supports(s));
        }
        assert_eq!(model.name(), "HaLk");
    }
}
