//! Arc-sharded entity space: contiguous row-range shards of the entity
//! circle, each owning its own SoA [`EntityTrig`] slice, scored by a
//! streaming bounded top-k per shard and merged by the coordinator.
//!
//! HaLk answers a query by sweeping *every* entity (Paper §IV), so the
//! naive hot path materializes an `n_entities`-long score vector per
//! query plus an `n_entities`-long index vector for the argsort. The
//! sharded path never materializes either: each shard streams
//! [`crate::scorer::SCORE_SLICE`]-row slices through a 4 KiB stack
//! scratch into a bounded [`TopK`] heap, and the coordinator merges the
//! per-shard heaps (merge-k). Per-worker memory is bounded by the shard's
//! trig table plus `k` heap entries — the prerequisite for the NUMA /
//! multi-process layouts on the roadmap.
//!
//! Bit-identity: shard boundaries are aligned to `SCORE_SLICE` rows, rows
//! are scored independently, and the `(score, index)` ranking is a strict
//! total order (see [`TopK`]), so the merged selection equals the
//! full-vector [`crate::top_k_indices`] reference bit-for-bit for every
//! shard count.

use crate::scorer::{ArcScorer, EntityTrig, Precision, TopK, SCORE_SLICE};
use halk_nn::Tensor;
use halk_obs::metrics;
use halk_obs::Deadline;
use halk_par::Pool;
use std::ops::Range;

/// A partition of `n_entities` contiguous rows into `n_shards` contiguous
/// arcs, balanced in whole [`SCORE_SLICE`] units (each shard gets
/// `total_slices / n` slices, the first `total_slices % n` shards one
/// more). Alignment keeps every shard's internal slice grid identical to
/// the unsharded sweep's, so deadline-truncation points coincide too.
#[derive(Debug, Clone)]
pub struct ArcShards {
    /// `bounds[s]..bounds[s + 1]` is shard `s`'s row range.
    bounds: Vec<usize>,
}

impl ArcShards {
    /// Partitions `n_entities` rows into `n_shards` slice-aligned arcs.
    /// With fewer slices than shards, trailing shards are empty.
    pub fn new(n_entities: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let total_slices = n_entities.div_ceil(SCORE_SLICE);
        let (base, rem) = (total_slices / n_shards, total_slices % n_shards);
        let mut bounds = Vec::with_capacity(n_shards + 1);
        bounds.push(0);
        let mut row = 0;
        for s in 0..n_shards {
            let slices = base + usize::from(s < rem);
            row = (row + slices * SCORE_SLICE).min(n_entities);
            bounds.push(row);
        }
        debug_assert_eq!(*bounds.last().unwrap(), n_entities);
        Self { bounds }
    }

    /// Number of shards (≥ 1; some may be empty).
    pub fn n_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total rows covered.
    pub fn n_entities(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    /// Shard `s`'s row range.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }
}

/// Shard-local trig tables: one SoA [`EntityTrig`] per arc shard, built
/// once per model snapshot and shared read-only by every query. Entry `i`
/// of shard `s` is table row `start(s) + i`, bit-identical to the same
/// row of a whole-table [`EntityTrig::new`].
pub struct ShardedTrig {
    shards: Vec<(usize, EntityTrig)>,
    n_entities: usize,
    dim: usize,
}

impl ShardedTrig {
    /// Precomputes per-shard trig for an angle table under `parts` at full
    /// precision.
    pub fn new(table: &Tensor, parts: &ArcShards) -> Self {
        Self::with_precision(table, parts, Precision::F32)
    }

    /// [`ShardedTrig::new`] at an explicit storage [`Precision`]: every
    /// shard stores its trig slice in the same quantized format, so the
    /// per-shard resident bytes shrink by the precision's width ratio.
    pub fn with_precision(table: &Tensor, parts: &ArcShards, precision: Precision) -> Self {
        assert_eq!(parts.n_entities(), table.rows, "shard/table row mismatch");
        // Table builds are the expensive cold-start event; the warm-start
        // test pins that a serving engine performs them at boot, never on
        // the request path.
        metrics::counter("halk_trig_builds_total").inc();
        let shards = (0..parts.n_shards())
            .map(|s| {
                let r = parts.range(s);
                (r.start, EntityTrig::from_rows_with(table, r, precision))
            })
            .collect();
        Self {
            shards,
            n_entities: table.rows,
            dim: table.cols,
        }
    }

    /// Builds the sharded tables by re-slicing an already-computed
    /// full-precision [`EntityTrig`] instead of paying the sin/cos sweep —
    /// the snapshot fast-boot path. [`EntityTrig::slice_rows`] guarantees
    /// each shard is bit-identical to [`ShardedTrig::with_precision`] on
    /// the angle table the full trig was built from, at every precision.
    pub fn from_table(full: &EntityTrig, parts: &ArcShards, precision: Precision) -> Self {
        assert_eq!(
            parts.n_entities(),
            full.n_entities(),
            "shard/table row mismatch"
        );
        metrics::counter("halk_trig_builds_total").inc();
        let shards = (0..parts.n_shards())
            .map(|s| {
                let r = parts.range(s);
                (r.start, full.slice_rows(r, precision))
            })
            .collect();
        Self {
            shards,
            n_entities: full.n_entities(),
            dim: full.dim(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The storage precision the shards were built at.
    pub fn precision(&self) -> Precision {
        self.shards
            .first()
            .map_or(Precision::F32, |(_, t)| t.precision())
    }

    /// Total bytes resident across all shard trig tables.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|(_, t)| t.resident_bytes()).sum()
    }

    /// Total rows covered.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Shard `s` as `(trig, global_row0)`.
    pub fn shard(&self, s: usize) -> (&EntityTrig, usize) {
        let (start, ref trig) = self.shards[s];
        (trig, start)
    }
}

/// One query's merged result: the top-k `(entity, score)` pairs in
/// ascending rank order plus the number of rows actually scored (the
/// union of per-shard prefixes when a deadline fired; `n_entities` when
/// it did not).
pub type ShardedTopK = (Vec<(u32, f32)>, usize);

/// Scores a *group* of queries against every shard and merges per-shard
/// bounded heaps: query `q` gets the top `ks[q]` entities under scorer
/// `scorers[q]` and deadline `deadlines[q]`. Shards fan out across the
/// pool ([`Pool::par_shards`]); within a shard the sweep is slice-major
/// over the group so one hot trig slice serves every query before moving
/// on — the "one kernel pass per shard" of skeleton batching. Deadlines
/// are checked per query at every slice boundary (exact
/// [`ArcScorer::score_until`] semantics); an expired query stops scoring
/// on all shards while the rest of the group continues.
///
/// The merged selection is bit-identical to running each query alone on
/// one shard with the full-vector [`crate::top_k_indices`] reference.
pub fn sharded_top_k(
    pool: &Pool,
    sharded: &ShardedTrig,
    scorers: &[ArcScorer],
    ks: &[usize],
    deadlines: &[&Deadline],
) -> Vec<ShardedTopK> {
    sharded_top_k_tagged(pool, sharded, scorers, ks, deadlines, None)
}

/// Where a sharded sweep spent its wall time: the parallel per-shard
/// scoring region vs. the coordinator's heap merge. Feeds the per-phase
/// breakdown of serve's slow-query log (DESIGN.md §16).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepTiming {
    /// Wall microseconds of the `par_shards` scoring region.
    pub score_us: u64,
    /// Wall microseconds of the coordinator merge-k.
    pub merge_us: u64,
}

/// [`sharded_top_k`] with an optional trace tag: when tracing is enabled,
/// every shard's sweep opens a `shard_sweep` span whose detail carries the
/// shard index plus `tag` (serve passes the group's `req=...` ids), so a
/// request's hop chain extends into the per-shard workers (DESIGN.md §16).
/// Scoring is unaffected; with tracing off the extra cost is one relaxed
/// load per shard.
pub fn sharded_top_k_tagged(
    pool: &Pool,
    sharded: &ShardedTrig,
    scorers: &[ArcScorer],
    ks: &[usize],
    deadlines: &[&Deadline],
    tag: Option<&str>,
) -> Vec<ShardedTopK> {
    sharded_top_k_timed(pool, sharded, scorers, ks, deadlines, tag).0
}

/// [`sharded_top_k_tagged`] that also reports where the wall time went
/// (score sweep vs. coordinator merge). The timing is observational only —
/// results are bit-identical to the untimed path.
pub fn sharded_top_k_timed(
    pool: &Pool,
    sharded: &ShardedTrig,
    scorers: &[ArcScorer],
    ks: &[usize],
    deadlines: &[&Deadline],
    tag: Option<&str>,
) -> (Vec<ShardedTopK>, SweepTiming) {
    assert_eq!(scorers.len(), ks.len(), "one k per scorer");
    assert_eq!(scorers.len(), deadlines.len(), "one deadline per scorer");
    let nq = scorers.len();
    if nq == 0 {
        return (Vec::new(), SweepTiming::default());
    }

    // Each shard returns its local heaps plus per-query rows scored.
    let t0 = std::time::Instant::now();
    let per_shard = pool.par_shards(sharded.n_shards(), |s| {
        let _sweep = match tag {
            Some(t) if halk_obs::trace::enabled() => {
                halk_obs::trace::span_detail("shard_sweep", || format!("shard={s} {t}"))
            }
            _ => halk_obs::trace::span("shard_sweep"),
        };
        let (trig, row0) = sharded.shard(s);
        let n = trig.n_entities();
        let mut heaps: Vec<TopK> = ks.iter().map(|&k| TopK::new(k)).collect();
        let mut rows = vec![0usize; nq];
        let mut active: Vec<bool> = deadlines.iter().map(|d| !d.expired()).collect();
        let mut scratch = [0.0f32; SCORE_SLICE];
        let mut done = 0;
        while done < n && active.iter().any(|&a| a) {
            let take = SCORE_SLICE.min(n - done);
            for q in 0..nq {
                if !active[q] {
                    continue;
                }
                if deadlines[q].expired() {
                    active[q] = false;
                    continue;
                }
                let out = &mut scratch[..take];
                out.fill(f32::INFINITY); // score_slice min-folds into `out`
                scorers[q].score_slice(trig, done, out);
                for (j, &sc) in out.iter().enumerate() {
                    heaps[q].offer((row0 + done + j) as u32, sc);
                }
                rows[q] += take;
            }
            done += take;
        }
        metrics::histogram("halk_shard_rows_scored").record(rows.iter().sum::<usize>() as u64);
        (heaps, rows)
    });
    metrics::counter("halk_shard_sweeps_total").add(sharded.n_shards() as u64);
    let score_us = t0.elapsed().as_micros() as u64;

    // Coordinator merge-k: absorb every shard's heap for each query.
    // Order-independent — distinct indices make the ranking a strict
    // total order, so the k-smallest set of the union is unique.
    let t1 = std::time::Instant::now();
    let merged: Vec<ShardedTopK> = (0..nq)
        .map(|q| {
            let mut merged = TopK::new(ks[q]);
            let mut scored = 0;
            for (heaps, rows) in &per_shard {
                merged.absorb(&heaps[q]);
                scored += rows[q];
            }
            (merged.into_sorted(), scored)
        })
        .collect();
    let merge_us = t1.elapsed().as_micros() as u64;
    (merged, SweepTiming { score_us, merge_us })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_slice_aligned_and_cover_everything() {
        for (n, s) in [(0, 1), (1, 1), (5000, 4), (8192, 8), (1024, 8), (100, 3)] {
            let parts = ArcShards::new(n, s);
            assert_eq!(parts.n_shards(), s);
            assert_eq!(parts.n_entities(), n);
            let mut row = 0;
            for i in 0..s {
                let r = parts.range(i);
                assert_eq!(r.start, row, "contiguous");
                // Boundaries sit on the slice grid except where the final
                // partial slice clamps them to n_entities.
                assert!(
                    r.start.is_multiple_of(SCORE_SLICE) || r.start == n,
                    "start {} neither slice-aligned nor the clamped end {n}",
                    r.start
                );
                row = r.end;
            }
            assert_eq!(row, n);
        }
    }

    #[test]
    fn shards_balance_in_slice_units() {
        // 8 slices over 3 shards: 3/3/2 slices.
        let n = 8 * SCORE_SLICE;
        let parts = ArcShards::new(n, 3);
        assert_eq!(parts.range(0).len(), 3 * SCORE_SLICE);
        assert_eq!(parts.range(1).len(), 3 * SCORE_SLICE);
        assert_eq!(parts.range(2).len(), 2 * SCORE_SLICE);
    }

    #[test]
    fn more_shards_than_slices_leaves_trailing_empty() {
        let parts = ArcShards::new(SCORE_SLICE + 1, 4);
        assert_eq!(parts.range(0).len(), SCORE_SLICE);
        assert_eq!(parts.range(1).len(), 1);
        assert_eq!(parts.range(2).len(), 0);
        assert_eq!(parts.range(3).len(), 0);
    }
}
