//! Property-based tests for the KG substrate: adjacency consistency,
//! grouping soundness and split nesting on randomly parameterized graphs.

use halk_kg::{generate, DatasetSplit, EntityId, Grouping, RelationId, SynthConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        60usize..200,
        4usize..12,
        3usize..8,
        200usize..900,
        any::<bool>(),
    )
        .prop_map(
            |(n_entities, n_relations, n_types, n_triples, inverse)| SynthConfig {
                n_entities,
                n_relations,
                n_types,
                n_triples,
                pairs_per_relation: 2,
                inverse_twins: inverse,
                hierarchy: false,
                skew: 0.5,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_and_inverse_adjacency_agree(cfg in arb_config(), seed in 0u64..1000) {
        let g = generate(&cfg, &mut StdRng::seed_from_u64(seed));
        for t in g.triples().iter().take(300) {
            prop_assert!(g.neighbors(t.h, t.r).contains(&t.t.0));
            prop_assert!(g.inverse_neighbors(t.t, t.r).contains(&t.h.0));
            prop_assert!(g.has(t.h, t.r, t.t));
        }
    }

    #[test]
    fn neighbor_lists_are_sorted_and_deduped(cfg in arb_config(), seed in 0u64..1000) {
        let g = generate(&cfg, &mut StdRng::seed_from_u64(seed));
        for e in g.entities().take(50) {
            for r in g.relations() {
                let ns = g.neighbors(e, r);
                for w in ns.windows(2) {
                    prop_assert!(w[0] < w[1], "unsorted or duplicated neighbor list");
                }
            }
        }
    }

    #[test]
    fn splits_are_nested_for_any_fraction(
        cfg in arb_config(),
        seed in 0u64..1000,
        train_frac in 0.5f64..0.9,
    ) {
        let g = generate(&cfg, &mut StdRng::seed_from_u64(seed));
        let valid_frac = (1.0 - train_frac) / 2.0;
        let split = DatasetSplit::nested(&g, train_frac, valid_frac, &mut StdRng::seed_from_u64(seed ^ 1));
        prop_assert!(split.is_nested());
        prop_assert!(split.train.n_triples() <= split.valid.n_triples());
        prop_assert!(split.valid.n_triples() <= split.test.n_triples());
        // Spanning core: all entities trainable.
        for e in split.test.entities() {
            prop_assert!(split.train.degree(e) > 0, "entity {e} untrained");
        }
    }

    #[test]
    fn grouping_covers_edges(cfg in arb_config(), seed in 0u64..1000, n_groups in 2usize..32) {
        let g = generate(&cfg, &mut StdRng::seed_from_u64(seed));
        let grouping = Grouping::random(&g, n_groups, &mut StdRng::seed_from_u64(seed ^ 2));
        for t in g.triples().iter().take(200) {
            let reached = grouping.propagate(grouping.mask_of(t.h), t.r);
            prop_assert!(reached & grouping.mask_of(t.t) != 0);
        }
        // Similarity is symmetric and bounded.
        let a = grouping.mask_of(EntityId(0));
        let b = grouping.mask_of(EntityId(1 % g.n_entities() as u32));
        prop_assert_eq!(Grouping::similarity(a, b), Grouping::similarity(b, a));
        prop_assert!(Grouping::similarity(a, b) <= 1.0);
    }

    #[test]
    fn induced_subgraph_monotone(cfg in arb_config(), seed in 0u64..1000) {
        let g = generate(&cfg, &mut StdRng::seed_from_u64(seed));
        let keep: Vec<bool> = (0..g.n_entities()).map(|i| i % 3 != 0).collect();
        let sub = g.induced_subgraph(&keep);
        prop_assert!(sub.is_subgraph_of(&g));
        prop_assert!(sub.n_triples() <= g.n_triples());
        let _ = RelationId(0);
    }
}
