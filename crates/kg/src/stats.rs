//! Descriptive statistics used to validate that the synthetic stand-ins
//! exhibit the dataset "personalities" the paper's comparisons rely on.

use crate::graph::Graph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub n_entities: usize,
    /// `|R|`.
    pub n_relations: usize,
    /// `|T|`.
    pub n_triples: usize,
    /// Average (out+in) degree per entity.
    pub avg_degree: f64,
    /// Maximum entity degree.
    pub max_degree: usize,
    /// Median entity degree.
    pub median_degree: usize,
    /// Fraction of ordered relation pairs `(r, r')` where `r'` contains the
    /// inverse of ≥80% of `r`'s triples — the FB15k leakage indicator.
    pub inverse_leakage: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(g: &Graph) -> Self {
        let mut degs: Vec<usize> = g.entities().map(|e| g.degree(e)).collect();
        degs.sort_unstable();
        let n = degs.len().max(1);
        let avg = degs.iter().sum::<usize>() as f64 / n as f64;

        // Inverse leakage: count relations that have an (approximate)
        // inverse twin somewhere in the relation set.
        let mut leaked = 0usize;
        let mut measured = 0usize;
        for r in g.relations() {
            let triples: Vec<_> = g.triples().iter().filter(|t| t.r == r).collect();
            if triples.len() < 5 {
                continue;
            }
            measured += 1;
            let found_twin = g.relations().any(|r2| {
                if r2 == r {
                    return false;
                }
                let hits = triples.iter().filter(|t| g.has(t.t, r2, t.h)).count();
                hits * 10 >= triples.len() * 8
            });
            if found_twin {
                leaked += 1;
            }
        }

        Self {
            n_entities: g.n_entities(),
            n_relations: g.n_relations(),
            n_triples: g.n_triples(),
            avg_degree: avg,
            max_degree: degs.last().copied().unwrap_or(0),
            median_degree: degs.get(degs.len() / 2).copied().unwrap_or(0),
            inverse_leakage: if measured == 0 {
                0.0
            } else {
                leaked as f64 / measured as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fb15k_like_leaks_fb237_like_does_not() {
        let mut rng = StdRng::seed_from_u64(20);
        let fb = GraphStats::compute(&generate(&SynthConfig::fb15k_like(), &mut rng));
        let fb237 = GraphStats::compute(&generate(&SynthConfig::fb237_like(), &mut rng));
        assert!(
            fb.inverse_leakage > 0.9,
            "fb15k-like leakage {}",
            fb.inverse_leakage
        );
        assert!(
            fb237.inverse_leakage < 0.2,
            "fb237-like leakage {}",
            fb237.inverse_leakage
        );
    }

    #[test]
    fn stats_fields_consistent() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = generate(&SynthConfig::nell_like(), &mut rng);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_entities, g.n_entities());
        assert_eq!(s.n_triples, g.n_triples());
        assert!(s.max_degree >= s.median_degree);
        assert!(s.avg_degree > 0.0);
    }
}
