//! Random node grouping and the relation-based 3-D group adjacency matrix.
//!
//! §II-A of the paper: "we randomly divide all the nodes in KGs into
//! different groups with video-memory-friendly size and record the group
//! ownership of each node by one-hot vectors. In addition, a relation-based
//! 3D adjacency matrix is adopted to track the connectivity between groups
//! based on each predicate." The intersection operator (Eq. 10) and the loss
//! (Eq. 17) consume this coarse-grained signal.
//!
//! With at most 64 groups a group *set* is a `u64` bitmask: entity one-hot
//! vectors are single-bit masks, the multi-hot vectors `h_{U_t} = h_{U_1} ⊙
//! h_{U_2} ⊙ ⋯` are bitwise ANDs, and `‖h_v − h_U‖₁` is a popcount.

use crate::graph::Graph;
use crate::ids::{EntityId, RelationId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Maximum supported number of groups (one `u64` of mask bits).
pub const MAX_GROUPS: usize = 64;

/// A random partition of entities into groups plus the per-relation group
/// connectivity matrix `M_r[i][k]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grouping {
    n_groups: usize,
    group_of: Vec<u8>,
    /// `adj[r.index()][i]` = bitmask of groups `k` with `M_r^{ik} = 1`.
    adj: Vec<Vec<u64>>,
    /// Same for the inverse direction (needed when queries traverse edges
    /// backwards during sampling).
    adj_inv: Vec<Vec<u64>>,
}

impl Grouping {
    /// Randomly partitions the graph's entities into `n_groups` groups and
    /// builds the 3-D adjacency matrix.
    ///
    /// # Panics
    /// If `n_groups` is zero or exceeds [`MAX_GROUPS`].
    pub fn random(graph: &Graph, n_groups: usize, rng: &mut impl Rng) -> Self {
        assert!(
            (1..=MAX_GROUPS).contains(&n_groups),
            "n_groups must be in 1..={MAX_GROUPS}"
        );
        let group_of: Vec<u8> = (0..graph.n_entities())
            .map(|_| rng.gen_range(0..n_groups) as u8)
            .collect();
        let mut adj = vec![vec![0u64; n_groups]; graph.n_relations()];
        let mut adj_inv = vec![vec![0u64; n_groups]; graph.n_relations()];
        for t in graph.triples() {
            let gi = group_of[t.h.index()] as usize;
            let gk = group_of[t.t.index()] as usize;
            adj[t.r.index()][gi] |= 1 << gk;
            adj_inv[t.r.index()][gk] |= 1 << gi;
        }
        Self {
            n_groups,
            group_of,
            adj,
            adj_inv,
        }
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Number of entities partitioned.
    pub fn n_entities(&self) -> usize {
        self.group_of.len()
    }

    /// Raw parts `(n_groups, group_of, adj, adj_inv)` for snapshot
    /// encoding.
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (usize, &[u8], &[Vec<u64>], &[Vec<u64>]) {
        (self.n_groups, &self.group_of, &self.adj, &self.adj_inv)
    }

    /// Rebuilds a grouping from decoded raw parts, validating every
    /// invariant [`Grouping::random`] establishes: the group count is in
    /// `1..=`[`MAX_GROUPS`], every entity's group index is in range, both
    /// adjacency matrices are `n_relations × n_groups`, and no mask sets a
    /// bit at or above `n_groups` — so a corrupted snapshot can never load
    /// as a silently wrong grouping.
    pub fn from_parts(
        n_groups: usize,
        group_of: Vec<u8>,
        adj: Vec<Vec<u64>>,
        adj_inv: Vec<Vec<u64>>,
    ) -> Result<Self, String> {
        if !(1..=MAX_GROUPS).contains(&n_groups) {
            return Err(format!("n_groups {n_groups} outside 1..={MAX_GROUPS}"));
        }
        if let Some(e) = group_of.iter().position(|&g| g as usize >= n_groups) {
            return Err(format!(
                "entity {e} assigned to group {} of {n_groups}",
                group_of[e]
            ));
        }
        if adj.len() != adj_inv.len() {
            return Err(format!(
                "adjacency directions disagree: {} vs {} relations",
                adj.len(),
                adj_inv.len()
            ));
        }
        let legal = if n_groups == MAX_GROUPS {
            u64::MAX
        } else {
            (1u64 << n_groups) - 1
        };
        for (r, (fwd, bwd)) in adj.iter().zip(&adj_inv).enumerate() {
            if fwd.len() != n_groups || bwd.len() != n_groups {
                return Err(format!(
                    "relation {r}: adjacency row is not {n_groups} wide"
                ));
            }
            if fwd.iter().chain(bwd).any(|&m| m & !legal != 0) {
                return Err(format!(
                    "relation {r}: mask sets bits beyond group {n_groups}"
                ));
            }
        }
        Ok(Self {
            n_groups,
            group_of,
            adj,
            adj_inv,
        })
    }

    /// Group index of an entity.
    pub fn group_of(&self, e: EntityId) -> usize {
        self.group_of[e.index()] as usize
    }

    /// One-hot mask `h_v` of an entity.
    #[inline]
    pub fn mask_of(&self, e: EntityId) -> u64 {
        1u64 << self.group_of[e.index()]
    }

    /// Mask with every group bit set — the multi-hot vector of the universal
    /// set (used when a negation makes the reachable groups unbounded).
    pub fn full_mask(&self) -> u64 {
        if self.n_groups == MAX_GROUPS {
            u64::MAX
        } else {
            (1u64 << self.n_groups) - 1
        }
    }

    /// Propagates a group mask through relation `r`: the groups reachable by
    /// one `r`-hop from any group in `mask` (the `M_r` product of §II-A).
    pub fn propagate(&self, mask: u64, r: RelationId) -> u64 {
        let rows = &self.adj[r.index()];
        let mut out = 0u64;
        let mut m = mask;
        while m != 0 {
            let g = m.trailing_zeros() as usize;
            out |= rows[g];
            m &= m - 1;
        }
        out
    }

    /// Propagates a group mask through relation `r` backwards.
    pub fn propagate_inverse(&self, mask: u64, r: RelationId) -> u64 {
        let rows = &self.adj_inv[r.index()];
        let mut out = 0u64;
        let mut m = mask;
        while m != 0 {
            let g = m.trailing_zeros() as usize;
            out |= rows[g];
            m &= m - 1;
        }
        out
    }

    /// `‖h_a − h_b‖₁` for two group masks: the Hamming distance (popcount of
    /// the symmetric difference).
    #[inline]
    pub fn l1_distance(a: u64, b: u64) -> u32 {
        (a ^ b).count_ones()
    }

    /// The similarity weight `z = 1 / (‖h_a − h_b‖₁ + 1)` of Eq. 10.
    #[inline]
    pub fn similarity(a: u64, b: u64) -> f32 {
        1.0 / (Self::l1_distance(a, b) as f32 + 1.0)
    }

    /// The penalty `‖Relu(h_v − h_U)‖₁` of Eq. 17: group bits the entity has
    /// but the query's multi-hot does not (an entity outside every reachable
    /// group is penalized).
    #[inline]
    pub fn relu_l1(entity_mask: u64, query_mask: u64) -> u32 {
        (entity_mask & !query_mask).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Triple;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (Graph, Grouping) {
        let g = Graph::from_triples(
            6,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(1, 0, 2),
                Triple::new(2, 1, 3),
                Triple::new(4, 1, 5),
            ],
        );
        let mut rng = StdRng::seed_from_u64(11);
        let grouping = Grouping::random(&g, 4, &mut rng);
        (g, grouping)
    }

    #[test]
    fn every_entity_gets_a_group() {
        let (g, gr) = toy();
        for e in g.entities() {
            assert!(gr.group_of(e) < gr.n_groups());
            assert_eq!(gr.mask_of(e).count_ones(), 1);
        }
    }

    #[test]
    fn adjacency_reflects_edges() {
        let (g, gr) = toy();
        for t in g.triples() {
            let from = gr.mask_of(t.h);
            let reached = gr.propagate(from, t.r);
            assert!(
                reached & gr.mask_of(t.t) != 0,
                "edge {t:?} missing from group adjacency"
            );
        }
    }

    #[test]
    fn inverse_adjacency_mirrors_forward() {
        let (g, gr) = toy();
        for t in g.triples() {
            let back = gr.propagate_inverse(gr.mask_of(t.t), t.r);
            assert!(back & gr.mask_of(t.h) != 0);
        }
    }

    #[test]
    fn propagate_empty_mask_is_empty() {
        let (_, gr) = toy();
        assert_eq!(gr.propagate(0, RelationId(0)), 0);
    }

    #[test]
    fn full_mask_has_n_bits() {
        let (_, gr) = toy();
        assert_eq!(gr.full_mask().count_ones() as usize, gr.n_groups());
    }

    #[test]
    fn l1_and_similarity() {
        assert_eq!(Grouping::l1_distance(0b1010, 0b1010), 0);
        assert_eq!(Grouping::l1_distance(0b1010, 0b0101), 4);
        assert!((Grouping::similarity(0b1, 0b1) - 1.0).abs() < 1e-6);
        assert!((Grouping::similarity(0b01, 0b10) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn relu_l1_counts_uncovered_bits() {
        // Entity in group 2 (bit 0b100); query mask covers groups 0 and 1.
        assert_eq!(Grouping::relu_l1(0b100, 0b011), 1);
        assert_eq!(Grouping::relu_l1(0b100, 0b111), 0);
    }

    #[test]
    #[should_panic(expected = "n_groups")]
    fn rejects_too_many_groups() {
        let g = Graph::from_triples(1, 1, vec![]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Grouping::random(&g, 65, &mut rng);
    }

    #[test]
    fn parts_roundtrip_preserves_grouping() {
        let (g, gr) = toy();
        let (n, group_of, adj, adj_inv) = gr.parts();
        let gr2 =
            Grouping::from_parts(n, group_of.to_vec(), adj.to_vec(), adj_inv.to_vec()).unwrap();
        assert_eq!(gr2.n_groups(), gr.n_groups());
        assert_eq!(gr2.n_entities(), g.n_entities());
        for e in g.entities() {
            assert_eq!(gr2.mask_of(e), gr.mask_of(e));
        }
        for t in g.triples() {
            assert_eq!(
                gr2.propagate(gr2.mask_of(t.h), t.r),
                gr.propagate(gr.mask_of(t.h), t.r)
            );
        }
    }

    #[test]
    fn from_parts_rejects_corrupt_state() {
        let (_, gr) = toy();
        let (n, group_of, adj, adj_inv) = gr.parts();
        let (group_of, adj, adj_inv) = (group_of.to_vec(), adj.to_vec(), adj_inv.to_vec());

        assert!(Grouping::from_parts(0, group_of.clone(), adj.clone(), adj_inv.clone()).is_err());
        assert!(Grouping::from_parts(65, group_of.clone(), adj.clone(), adj_inv.clone()).is_err());

        let mut bad_group = group_of.clone();
        bad_group[0] = n as u8; // out of range
        assert!(Grouping::from_parts(n, bad_group, adj.clone(), adj_inv.clone()).is_err());

        let mut bad_mask = adj.clone();
        bad_mask[0][0] |= 1 << n; // bit beyond the legal mask
        assert!(Grouping::from_parts(n, group_of.clone(), bad_mask, adj_inv.clone()).is_err());

        let mut ragged = adj.clone();
        ragged[0].pop();
        assert!(Grouping::from_parts(n, group_of, ragged, adj_inv).is_err());
    }
}
