//! Knowledge-graph substrate for the HaLk reproduction.
//!
//! Provides the triple store (`G = {V, R, T}` of §II-A) with per-relation
//! CSR adjacency in both directions, the random node [`groups::Grouping`]
//! with its relation-based 3-D group adjacency matrix, nested
//! train ⊆ valid ⊆ test [`split::DatasetSplit`]s, TSV persistence, and the
//! [`synth`] generators that stand in for FB15k / FB15k-237 / NELL995
//! (substitution rationale in DESIGN.md §4).

pub mod graph;
pub mod groups;
pub mod ids;
pub mod split;
pub mod stats;
pub mod synth;
pub mod tsv;

pub use graph::{Graph, Triple};
pub use groups::Grouping;
pub use ids::{EntityId, RelationId};
pub use split::{Dataset, DatasetSplit};
pub use synth::{generate, SynthConfig};
