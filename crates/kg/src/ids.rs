//! Typed identifiers for entities and relations.
//!
//! Newtypes over `u32` keep the adjacency structures compact (the datasets
//! of §IV-A are far below 4 G entities) while making it impossible to use an
//! entity id where a relation id is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an entity (a node of the knowledge graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of a relation (an edge label / predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationId(pub u32);

impl EntityId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for EntityId {
    fn from(v: u32) -> Self {
        EntityId(v)
    }
}

impl From<u32> for RelationId {
    fn from(v: u32) -> Self {
        RelationId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(RelationId(7).to_string(), "r7");
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(EntityId(1) < EntityId(2));
        assert!(RelationId(0) < RelationId(10));
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(EntityId::from(5u32).index(), 5);
        assert_eq!(RelationId::from(9u32).index(), 9);
    }
}
