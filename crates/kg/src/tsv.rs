//! TSV persistence for graphs — the interchange format the original
//! benchmarks use (`head \t relation \t tail`, one triple per line).

use crate::graph::{Graph, Triple};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes a graph as TSV with a `# entities relations` header comment so the
/// exact shape round-trips even when trailing entities are isolated.
pub fn save(graph: &Graph, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "# {} {}", graph.n_entities(), graph.n_relations())?;
    for t in graph.triples() {
        writeln!(w, "{}\t{}\t{}", t.h.0, t.r.0, t.t.0)?;
    }
    w.flush()
}

/// Reads a graph written by [`save`]. `#`-comment lines other than the shape
/// header are ignored. Malformed lines, a duplicate shape header, or ids
/// exceeding the header-declared entity/relation counts all produce an
/// `InvalidData` error naming the (1-based) line number — a corrupted file
/// never loads as a silently-wrong graph.
pub fn load(path: &Path) -> io::Result<Graph> {
    let f = std::fs::File::open(path)?;
    let reader = io::BufReader::new(f);
    let mut n_entities = 0usize;
    let mut n_relations = 0usize;
    let mut have_header = false;
    let mut triples = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if let (Some(e), Some(r)) = (it.next(), it.next()) {
                // Only a pair of integers counts as a shape header; anything
                // else after `#` is a free-form comment.
                if let (Ok(e), Ok(r)) = (e.parse::<usize>(), r.parse::<usize>()) {
                    if have_header {
                        return Err(bad(lineno, "duplicate shape header"));
                    }
                    n_entities = e;
                    n_relations = r;
                    have_header = true;
                }
            }
            continue;
        }
        let mut it = line.split('\t');
        let (h, r, t) = (
            it.next().ok_or_else(|| bad_line(lineno))?,
            it.next().ok_or_else(|| bad_line(lineno))?,
            it.next().ok_or_else(|| bad_line(lineno))?,
        );
        if it.next().is_some() {
            return Err(bad(lineno, "expected exactly 3 tab-separated fields"));
        }
        let h: u32 = h.parse().map_err(|_| bad_line(lineno))?;
        let r: u32 = r.parse().map_err(|_| bad_line(lineno))?;
        let t: u32 = t.parse().map_err(|_| bad_line(lineno))?;
        if have_header {
            if h as usize >= n_entities || t as usize >= n_entities {
                return Err(bad(
                    lineno,
                    &format!("entity id out of range (header declares {n_entities} entities)"),
                ));
            }
            if r as usize >= n_relations {
                return Err(bad(
                    lineno,
                    &format!("relation id out of range (header declares {n_relations} relations)"),
                ));
            }
        }
        triples.push(Triple::new(h, r, t));
    }
    if !have_header {
        // Infer shape from content for foreign TSV files.
        n_entities = triples
            .iter()
            .map(|t| t.h.0.max(t.t.0) as usize + 1)
            .max()
            .unwrap_or(0);
        n_relations = triples
            .iter()
            .map(|t| t.r.0 as usize + 1)
            .max()
            .unwrap_or(0);
        halk_obs::log!(
            Warn,
            "tsv load: no '# entities/relations' header; inferred shape \
             {n_entities} entities x {n_relations} relations from content"
        );
    }
    Ok(Graph::from_triples(n_entities, n_relations, triples))
}

fn bad_line(lineno: usize) -> io::Error {
    bad(lineno, "malformed TSV")
}

fn bad(lineno: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{what} at line {}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(1));
        let dir = std::env::temp_dir().join("halk_kg_tsv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        save(&g, &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(g.n_entities(), g2.n_entities());
        assert_eq!(g.n_relations(), g2.n_relations());
        assert_eq!(g.triples(), g2.triples());
    }

    #[test]
    fn load_without_header_infers_shape() {
        let dir = std::env::temp_dir().join("halk_kg_tsv_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("raw.tsv");
        std::fs::write(&path, "0\t0\t1\n2\t1\t0\n").unwrap();
        let g = load(&path).unwrap();
        assert_eq!(g.n_entities(), 3);
        assert_eq!(g.n_relations(), 2);
        assert_eq!(g.n_triples(), 2);
    }

    #[test]
    fn malformed_line_errors_with_position() {
        let dir = std::env::temp_dir().join("halk_kg_tsv_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        std::fs::write(&path, "0\t0\t1\nnot a triple\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    fn load_str(name: &str, content: &str) -> io::Result<Graph> {
        let dir = std::env::temp_dir().join("halk_kg_tsv_harden");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        load(&path)
    }

    #[test]
    fn entity_id_beyond_header_is_rejected() {
        let err = load_str("oob_e.tsv", "# 3 2\n0\t0\t1\n0\t1\t7\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("entity id") && msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn relation_id_beyond_header_is_rejected() {
        let err = load_str("oob_r.tsv", "# 3 2\n0\t5\t1\n").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("relation id") && msg.contains("line 2"),
            "{msg}"
        );
    }

    #[test]
    fn duplicate_header_is_rejected() {
        let err = load_str("dup.tsv", "# 3 2\n0\t0\t1\n# 9 9\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("duplicate") && msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn extra_fields_are_rejected() {
        let err = load_str("wide.tsv", "0\t0\t1\t5\n").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("3 tab-separated") && msg.contains("line 1"),
            "{msg}"
        );
    }

    #[test]
    fn freeform_comments_are_ignored() {
        let g = load_str("cmt.tsv", "# generated by halk\n# 2 1\n0\t0\t1\n").unwrap();
        assert_eq!(g.n_entities(), 2);
        assert_eq!(g.n_relations(), 1);
        assert_eq!(g.n_triples(), 1);
    }
}
