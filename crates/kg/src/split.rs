//! Train / validation / test splits with the paper's nesting invariant.
//!
//! §IV-A: "We create three graphs respectively for training, validation and
//! test, which satisfies `G_training ⊆ G_validation ⊆ G_test`." The *test*
//! graph is the full generated graph; validation removes a slice of its
//! triples; training removes another. Queries sampled on the larger graphs
//! thus have "hard" answers that require generalizing over missing edges —
//! the incomplete-KG setting embedding methods are built for.

use crate::graph::{Graph, Triple};
use crate::ids::{EntityId, RelationId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The three nested graphs of the benchmark protocol.
#[derive(Debug, Clone)]
pub struct DatasetSplit {
    /// Training graph (smallest).
    pub train: Graph,
    /// Validation graph (train plus a held-out slice).
    pub valid: Graph,
    /// Test graph (everything).
    pub test: Graph,
}

impl DatasetSplit {
    /// Splits `full` so that `train` keeps `train_frac` of the triples and
    /// `valid` keeps `train_frac + valid_frac` (the remainder appearing only
    /// in `test`).
    ///
    /// A spanning core — one incident triple per entity and one triple per
    /// relation — is always forced into `train`, so every embedding receives
    /// training signal and samplers never hit an untrained id.
    ///
    /// # Panics
    /// If the fractions are not in `(0, 1]` or exceed 1 combined.
    pub fn nested(full: &Graph, train_frac: f64, valid_frac: f64, rng: &mut impl Rng) -> Self {
        assert!(train_frac > 0.0 && train_frac <= 1.0);
        assert!(valid_frac >= 0.0 && train_frac + valid_frac <= 1.0);

        let triples = full.triples().to_vec();
        let n = triples.len();

        // Spanning core: greedily cover entities and relations.
        let mut in_core = vec![false; n];
        let mut entity_covered = vec![false; full.n_entities()];
        let mut relation_covered = vec![false; full.n_relations()];
        for (i, t) in triples.iter().enumerate() {
            let need = !entity_covered[t.h.index()]
                || !entity_covered[t.t.index()]
                || !relation_covered[t.r.index()];
            if need {
                in_core[i] = true;
                entity_covered[t.h.index()] = true;
                entity_covered[t.t.index()] = true;
                relation_covered[t.r.index()] = true;
            }
        }

        let mut rest: Vec<usize> = (0..n).filter(|&i| !in_core[i]).collect();
        rest.shuffle(rng);

        let n_train_target = ((n as f64) * train_frac).round() as usize;
        let core_count = in_core.iter().filter(|&&b| b).count();
        let extra_train = n_train_target.saturating_sub(core_count).min(rest.len());
        let n_valid_extra = ((n as f64) * valid_frac).round() as usize;

        let mut train_triples: Vec<Triple> =
            (0..n).filter(|&i| in_core[i]).map(|i| triples[i]).collect();
        train_triples.extend(rest[..extra_train].iter().map(|&i| triples[i]));

        let mut valid_triples = train_triples.clone();
        let valid_take = n_valid_extra.min(rest.len() - extra_train);
        valid_triples.extend(
            rest[extra_train..extra_train + valid_take]
                .iter()
                .map(|&i| triples[i]),
        );

        let train = Graph::from_triples(full.n_entities(), full.n_relations(), train_triples);
        let valid = Graph::from_triples(full.n_entities(), full.n_relations(), valid_triples);
        Self {
            train,
            valid,
            test: full.clone(),
        }
    }

    /// Checks the `G_train ⊆ G_valid ⊆ G_test` invariant.
    pub fn is_nested(&self) -> bool {
        self.train.is_subgraph_of(&self.valid) && self.valid.is_subgraph_of(&self.test)
    }

    /// Triples in `test` but not `train` — the unseen facts evaluation
    /// queries must generalize over.
    pub fn held_out_triples(&self) -> Vec<Triple> {
        self.test
            .triples()
            .iter()
            .filter(|t| !self.train.has(t.h, t.r, t.t))
            .copied()
            .collect()
    }
}

/// A named dataset: a split plus the label used in the paper's tables.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Table label ("FB15k", "FB237", "NELL").
    pub name: &'static str,
    /// The nested split.
    pub split: DatasetSplit,
}

impl Dataset {
    /// Generates the three benchmark stand-ins with the standard 80/10/10
    /// nesting (see DESIGN.md §4 for the substitution rationale).
    pub fn standard_suite(rng: &mut impl Rng) -> Vec<Dataset> {
        use crate::synth::{generate, SynthConfig};
        [
            ("FB15k", SynthConfig::fb15k_like()),
            ("FB237", SynthConfig::fb237_like()),
            ("NELL", SynthConfig::nell_like()),
        ]
        .into_iter()
        .map(|(name, cfg)| {
            let full = generate(&cfg, rng);
            Dataset {
                name,
                split: DatasetSplit::nested(&full, 0.8, 0.1, rng),
            }
        })
        .collect()
    }
}

/// Ensures ids referenced by queries are valid in all three graphs (they
/// share entity/relation counts by construction; this asserts it).
pub fn assert_aligned(split: &DatasetSplit) {
    assert_eq!(split.train.n_entities(), split.test.n_entities());
    assert_eq!(split.valid.n_entities(), split.test.n_entities());
    assert_eq!(split.train.n_relations(), split.test.n_relations());
    assert_eq!(split.valid.n_relations(), split.test.n_relations());
    let _ = (
        EntityId(0).index(),
        RelationId(0).index(), // typed-id sanity anchor
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn split() -> DatasetSplit {
        let mut rng = StdRng::seed_from_u64(10);
        let full = generate(&SynthConfig::fb237_like(), &mut rng);
        DatasetSplit::nested(&full, 0.8, 0.1, &mut rng)
    }

    #[test]
    fn nesting_invariant_holds() {
        let s = split();
        assert!(s.is_nested());
        assert_aligned(&s);
    }

    #[test]
    fn sizes_monotone() {
        let s = split();
        assert!(s.train.n_triples() < s.valid.n_triples());
        assert!(s.valid.n_triples() < s.test.n_triples());
    }

    #[test]
    fn train_fraction_respected() {
        let s = split();
        let frac = s.train.n_triples() as f64 / s.test.n_triples() as f64;
        assert!((0.75..0.9).contains(&frac), "train frac {frac}");
    }

    #[test]
    fn all_entities_and_relations_trained() {
        let s = split();
        for e in s.test.entities() {
            assert!(s.train.degree(e) > 0, "entity {e} unseen in train");
        }
        for r in s.test.relations() {
            let any = s.train.triples().iter().any(|t| t.r == r);
            assert!(any, "relation {r} unseen in train");
        }
    }

    #[test]
    fn held_out_triples_are_test_only() {
        let s = split();
        let held = s.held_out_triples();
        assert!(!held.is_empty());
        for t in &held {
            assert!(s.test.has(t.h, t.r, t.t));
            assert!(!s.train.has(t.h, t.r, t.t));
        }
    }

    #[test]
    fn standard_suite_has_three_named_datasets() {
        let mut rng = StdRng::seed_from_u64(42);
        let suite = Dataset::standard_suite(&mut rng);
        let names: Vec<_> = suite.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["FB15k", "FB237", "NELL"]);
        for d in &suite {
            assert!(d.split.is_nested(), "{} not nested", d.name);
        }
    }
}
