//! Synthetic knowledge-graph generators standing in for FB15k, FB15k-237
//! and NELL995.
//!
//! The original benchmark dumps are external downloads we substitute (see
//! DESIGN.md §4). What differentiates the three datasets *for the paper's
//! comparisons* is their qualitative structure, which these generators
//! reproduce:
//!
//! * **FB15k-like** — dense, skewed degrees, and ~half of the relations have
//!   an explicit inverse twin whose triples mirror them (the test-leakage
//!   property that makes FB15k "easy");
//! * **FB237-like** — the same generator with inverse twins removed and
//!   lower density (FB15k-237 is exactly FB15k minus near-inverse
//!   relations);
//! * **NELL-like** — sparser, more relations, and entities organized in a
//!   type hierarchy so relations connect type clusters (NELL's ontology).
//!
//! Generation is type-constrained preferential attachment: each entity gets
//! a latent type, each relation a set of compatible (source type, target
//! type) pairs, and triples sample heads/tails from compatible types with
//! Zipf-like weight. All randomness flows from the caller's seeded RNG.

use crate::graph::{Graph, Triple};
use rand::seq::SliceRandom;
use rand::Rng;

/// Tuning knobs for the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of entities `|V|`.
    pub n_entities: usize,
    /// Number of *base* relations (inverse twins, when enabled, double this).
    pub n_relations: usize,
    /// Number of latent entity types (clusters).
    pub n_types: usize,
    /// Target number of distinct triples before inverse duplication.
    pub n_triples: usize,
    /// Compatible (src, dst) type pairs per relation.
    pub pairs_per_relation: usize,
    /// Add an inverse twin relation for every base relation (FB15k leakage).
    pub inverse_twins: bool,
    /// Arrange types in a two-level hierarchy (NELL-style): types share
    /// super-types and relations prefer intra-super-type pairs.
    pub hierarchy: bool,
    /// Preferential-attachment strength in `[0, 1]`; higher = more skew.
    pub skew: f64,
}

impl SynthConfig {
    /// FB15k stand-in: dense, inverse-twin leakage.
    pub fn fb15k_like() -> Self {
        Self {
            n_entities: 800,
            n_relations: 18,
            n_types: 12,
            n_triples: 7000,
            pairs_per_relation: 2,
            inverse_twins: true,
            hierarchy: false,
            skew: 0.7,
        }
    }

    /// FB15k-237 stand-in: FB15k minus inverse relations, sparser.
    pub fn fb237_like() -> Self {
        Self {
            n_entities: 800,
            n_relations: 24,
            n_types: 12,
            n_triples: 5000,
            pairs_per_relation: 2,
            inverse_twins: false,
            hierarchy: false,
            skew: 0.7,
        }
    }

    /// NELL995 stand-in: sparse, many relations, hierarchical types.
    pub fn nell_like() -> Self {
        Self {
            n_entities: 1000,
            n_relations: 40,
            n_types: 20,
            n_triples: 5000,
            pairs_per_relation: 2,
            inverse_twins: false,
            hierarchy: true,
            skew: 0.5,
        }
    }
}

/// Generates a graph from a config. Deterministic given the RNG state.
pub fn generate(cfg: &SynthConfig, rng: &mut impl Rng) -> Graph {
    assert!(cfg.n_types >= 2, "need at least two types");
    assert!(cfg.n_entities >= cfg.n_types, "need entities >= types");

    // --- latent types: round-robin base assignment guarantees non-empty
    // types, then shuffle for randomness.
    let mut type_of: Vec<usize> = (0..cfg.n_entities).map(|i| i % cfg.n_types).collect();
    type_of.shuffle(rng);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_types];
    for (e, &ty) in type_of.iter().enumerate() {
        members[ty].push(e as u32);
    }

    // Two-level hierarchy: types get super-types (4 supers).
    let n_super = 4.min(cfg.n_types);
    let super_of: Vec<usize> = (0..cfg.n_types).map(|t| t % n_super).collect();

    // --- relation signatures.
    let mut signatures: Vec<Vec<(usize, usize)>> = Vec::with_capacity(cfg.n_relations);
    for _ in 0..cfg.n_relations {
        let mut pairs = Vec::with_capacity(cfg.pairs_per_relation);
        for _ in 0..cfg.pairs_per_relation {
            let src = rng.gen_range(0..cfg.n_types);
            let dst = if cfg.hierarchy && rng.gen_bool(0.7) {
                // Prefer a target type under the same super-type.
                let candidates: Vec<usize> = (0..cfg.n_types)
                    .filter(|&t| super_of[t] == super_of[src])
                    .collect();
                *candidates.choose(rng).expect("super-type has members")
            } else {
                rng.gen_range(0..cfg.n_types)
            };
            pairs.push((src, dst));
        }
        signatures.push(pairs);
    }

    // --- preferential-attachment weights: each entity gets a popularity in
    // (0, 1]; sampling mixes uniform and popularity-proportional choice.
    let popularity: Vec<f64> = (0..cfg.n_entities)
        .map(|_| rng.gen_range(0.05f64..1.0).powf(2.0))
        .collect();

    let pick = |pool: &[u32], rng: &mut dyn rand::RngCore, skew: f64| -> u32 {
        debug_assert!(!pool.is_empty());
        if rng.gen_bool(skew) {
            // popularity-weighted: rejection sampling (bounded popularity).
            for _ in 0..16 {
                let cand = pool[rng.gen_range(0..pool.len())];
                if rng.gen_bool(popularity[cand as usize]) {
                    return cand;
                }
            }
        }
        pool[rng.gen_range(0..pool.len())]
    };

    // --- sample triples.
    let mut triples = Vec::with_capacity(cfg.n_triples * 2);
    let mut attempts = 0usize;
    let max_attempts = cfg.n_triples * 20;
    let mut seen = std::collections::HashSet::with_capacity(cfg.n_triples * 2);
    while triples.len() < cfg.n_triples && attempts < max_attempts {
        attempts += 1;
        let r = rng.gen_range(0..cfg.n_relations);
        let &(src_ty, dst_ty) = signatures[r]
            .as_slice()
            .choose(rng)
            .expect("relation has signatures");
        let h = pick(&members[src_ty], rng, cfg.skew);
        let t = pick(&members[dst_ty], rng, cfg.skew);
        if h == t {
            continue;
        }
        if seen.insert((h, r as u32, t)) {
            triples.push(Triple::new(h, r as u32, t));
        }
    }

    // --- inverse twins (FB15k leakage): relation r + n_relations is r⁻¹.
    let total_relations = if cfg.inverse_twins {
        let base: Vec<Triple> = triples.clone();
        for t in base {
            triples.push(Triple::new(t.t.0, t.r.0 + cfg.n_relations as u32, t.h.0));
        }
        cfg.n_relations * 2
    } else {
        cfg.n_relations
    };

    // --- connectivity floor: give every isolated entity one edge so that
    // embeddings are trainable and samplers never dead-end.
    let g0 = Graph::from_triples(cfg.n_entities, total_relations, triples.clone());
    for e in 0..cfg.n_entities {
        if g0.degree(crate::ids::EntityId(e as u32)) == 0 {
            let r = rng.gen_range(0..cfg.n_relations) as u32;
            let other = loop {
                let cand = rng.gen_range(0..cfg.n_entities as u32);
                if cand != e as u32 {
                    break cand;
                }
            };
            triples.push(Triple::new(e as u32, r, other));
            if cfg.inverse_twins {
                triples.push(Triple::new(other, r + cfg.n_relations as u32, e as u32));
            }
        }
    }

    Graph::from_triples(cfg.n_entities, total_relations, triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EntityId, RelationId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fb15k_like_has_inverse_leakage() {
        let cfg = SynthConfig::fb15k_like();
        let g = generate(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(g.n_relations(), cfg.n_relations * 2);
        // Every base triple has its inverse twin.
        let mut checked = 0;
        for t in g.triples().iter().take(500) {
            if t.r.index() < cfg.n_relations {
                let twin = RelationId((t.r.0 as usize + cfg.n_relations) as u32);
                assert!(g.has(t.t, twin, t.h), "missing inverse of {t:?}");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn fb237_like_has_no_inverse_relations() {
        let cfg = SynthConfig::fb237_like();
        let g = generate(&cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(g.n_relations(), cfg.n_relations);
    }

    #[test]
    fn nell_like_is_sparser_than_fb15k_like() {
        let fb = generate(&SynthConfig::fb15k_like(), &mut StdRng::seed_from_u64(3));
        let nell = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(3));
        let fb_density = fb.n_triples() as f64 / fb.n_entities() as f64;
        let nell_density = nell.n_triples() as f64 / nell.n_entities() as f64;
        assert!(
            nell_density < fb_density,
            "nell {nell_density:.1} vs fb {fb_density:.1}"
        );
    }

    #[test]
    fn triple_counts_near_target() {
        let cfg = SynthConfig::fb237_like();
        let g = generate(&cfg, &mut StdRng::seed_from_u64(4));
        assert!(g.n_triples() >= cfg.n_triples * 8 / 10, "{}", g.n_triples());
    }

    #[test]
    fn no_isolated_entities() {
        let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(5));
        for e in g.entities() {
            assert!(g.degree(e) > 0, "entity {e} isolated");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(6));
        let b = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(6));
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn degrees_are_skewed() {
        let g = generate(&SynthConfig::fb15k_like(), &mut StdRng::seed_from_u64(7));
        let mut degs: Vec<usize> = g.entities().map(|e| g.degree(e)).collect();
        degs.sort_unstable();
        let top = degs[degs.len() - 1];
        let median = degs[degs.len() / 2];
        assert!(
            top as f64 > 3.0 * median as f64,
            "top {top} vs median {median}: no skew"
        );
    }

    #[test]
    fn no_self_loops_in_base_relations() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(8));
        // The generator skips h == t except for the connectivity floor,
        // which also avoids self-loops.
        for t in g.triples() {
            assert_ne!(t.h, t.t, "self loop {t:?}");
        }
        let _ = g.neighbors(EntityId(0), RelationId(0));
    }
}
