//! The knowledge-graph triple store.
//!
//! `G = {V, R, T}` of §II-A: entities, relations and fact triples `(h, r, t)`.
//! Storage is one CSR index per relation in each direction, so the two
//! operations everything else is built on — `neighbors(h, r)` for the
//! projection operator's ground truth and `inverse_neighbors(t, r)` for
//! backward query sampling — are contiguous slice lookups, and membership
//! `has(h, r, t)` is a binary search.

use crate::ids::{EntityId, RelationId};
use serde::{Deserialize, Serialize};

/// A fact triple `(head, relation, tail)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject (head) entity.
    pub h: EntityId,
    /// Predicate (relation).
    pub r: RelationId,
    /// Object (tail) entity.
    pub t: EntityId,
}

impl Triple {
    /// Convenience constructor from raw ids.
    pub fn new(h: u32, r: u32, t: u32) -> Self {
        Self {
            h: EntityId(h),
            r: RelationId(r),
            t: EntityId(t),
        }
    }
}

/// Compressed sparse rows over entities: `offsets[e]..offsets[e+1]` indexes
/// the sorted neighbor list of entity `e`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds from `(src, dst)` pairs already strictly sorted by `(src,
    /// dst)` — one counting pass, no sort.
    fn from_sorted_pairs(n_entities: usize, pairs: &[(u32, u32)]) -> Self {
        let mut offsets = vec![0u32; n_entities + 1];
        for &(src, _) in pairs {
            offsets[src as usize + 1] += 1;
        }
        for i in 0..n_entities {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|&(_, dst)| dst).collect();
        Self { offsets, targets }
    }

    /// Builds the transpose of `from_sorted_pairs(pairs)` by stable
    /// counting scatter: for a fixed `dst`, the `src` values arrive in
    /// ascending order, so every transposed row comes out sorted without
    /// sorting.
    fn transpose_sorted_pairs(n_entities: usize, pairs: &[(u32, u32)]) -> Self {
        let mut offsets = vec![0u32; n_entities + 1];
        for &(_, dst) in pairs {
            offsets[dst as usize + 1] += 1;
        }
        for i in 0..n_entities {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; pairs.len()];
        for &(src, dst) in pairs {
            let pos = cursor[dst as usize] as usize;
            targets[pos] = src;
            cursor[dst as usize] += 1;
        }
        Self { offsets, targets }
    }

    #[inline]
    fn neighbors(&self, e: usize) -> &[u32] {
        &self.targets[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }
}

/// An immutable knowledge graph with per-relation forward and inverse
/// adjacency indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    n_entities: usize,
    n_relations: usize,
    triples: Vec<Triple>,
    out: Vec<Csr>,
    inv: Vec<Csr>,
}

impl Graph {
    /// Builds a graph from a triple list. Duplicates are removed; triples
    /// referencing entities/relations beyond the declared counts panic.
    pub fn from_triples(n_entities: usize, n_relations: usize, triples: Vec<Triple>) -> Self {
        let mut tri = triples;
        tri.sort_unstable();
        tri.dedup();
        for t in &tri {
            assert!(
                t.h.index() < n_entities && t.t.index() < n_entities,
                "triple {t:?} references entity out of range (n={n_entities})"
            );
            assert!(
                t.r.index() < n_relations,
                "triple {t:?} references relation out of range (m={n_relations})"
            );
        }
        Self::build_indexes(n_entities, n_relations, tri)
    }

    /// Builds a graph from a triple list that is already strictly sorted
    /// (sorted and deduplicated) — the snapshot boot path. Skips the sort
    /// and returns a typed error instead of panicking, so corrupted input
    /// cannot take the process down: strict order and id ranges are
    /// *checked*, then both adjacency directions are built with counting
    /// passes in `O(|T| + |V|·|R|)`.
    pub fn from_sorted_triples(
        n_entities: usize,
        n_relations: usize,
        triples: Vec<Triple>,
    ) -> Result<Graph, String> {
        if triples.windows(2).any(|w| w[0] >= w[1]) {
            return Err("triple list not strictly sorted".into());
        }
        for t in &triples {
            if t.h.index() >= n_entities || t.t.index() >= n_entities {
                return Err(format!(
                    "triple {t:?} references entity out of range (n={n_entities})"
                ));
            }
            if t.r.index() >= n_relations {
                return Err(format!(
                    "triple {t:?} references relation out of range (m={n_relations})"
                ));
            }
        }
        Ok(Self::build_indexes(n_entities, n_relations, triples))
    }

    /// Index construction for a strictly sorted, in-range triple list.
    ///
    /// One pass buckets `(h, t)` pairs by relation — `(h, r, t)` order
    /// means each bucket comes out sorted by `(h, t)` — then each
    /// direction is a counting build, never a sort. `O(|T| + |V|·|R|)`
    /// total, versus the old per-relation filter sweep's `O(|R|·|T|)`
    /// scan plus `O(|T| log |T|)` re-sorts.
    fn build_indexes(n_entities: usize, n_relations: usize, tri: Vec<Triple>) -> Self {
        let mut counts = vec![0u32; n_relations];
        for t in &tri {
            counts[t.r.index()] += 1;
        }
        let mut buckets: Vec<Vec<(u32, u32)>> = counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for t in &tri {
            buckets[t.r.index()].push((t.h.0, t.t.0));
        }
        let out = buckets
            .iter()
            .map(|pairs| Csr::from_sorted_pairs(n_entities, pairs))
            .collect();
        let inv = buckets
            .iter()
            .map(|pairs| Csr::transpose_sorted_pairs(n_entities, pairs))
            .collect();
        Self {
            n_entities,
            n_relations,
            triples: tri,
            out,
            inv,
        }
    }

    /// Number of entities `|V|`.
    #[inline]
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Number of relations `|R|`.
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.n_relations
    }

    /// Number of distinct triples `|T|`.
    #[inline]
    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// The sorted, deduplicated triple list.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Tails reachable from `h` by relation `r` (sorted).
    #[inline]
    pub fn neighbors(&self, h: EntityId, r: RelationId) -> &[u32] {
        self.out[r.index()].neighbors(h.index())
    }

    /// Heads that reach `t` by relation `r` (sorted).
    #[inline]
    pub fn inverse_neighbors(&self, t: EntityId, r: RelationId) -> &[u32] {
        self.inv[r.index()].neighbors(t.index())
    }

    /// Whether the fact `(h, r, t)` is present.
    pub fn has(&self, h: EntityId, r: RelationId, t: EntityId) -> bool {
        self.neighbors(h, r).binary_search(&t.0).is_ok()
    }

    /// Out-degree of `h` under relation `r`.
    pub fn out_degree(&self, h: EntityId, r: RelationId) -> usize {
        self.neighbors(h, r).len()
    }

    /// Total degree (all relations, both directions) of an entity.
    pub fn degree(&self, e: EntityId) -> usize {
        (0..self.n_relations)
            .map(|r| {
                self.neighbors(e, RelationId(r as u32)).len()
                    + self.inverse_neighbors(e, RelationId(r as u32)).len()
            })
            .sum()
    }

    /// Iterator over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.n_entities as u32).map(EntityId)
    }

    /// Iterator over all relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.n_relations as u32).map(RelationId)
    }

    /// Relations with at least one outgoing edge from `h` — used by the
    /// matching engine's candidate filtering.
    pub fn relations_from(&self, h: EntityId) -> Vec<RelationId> {
        self.relations()
            .filter(|&r| !self.neighbors(h, r).is_empty())
            .collect()
    }

    /// Returns a new graph restricted to the given entity set (edges with
    /// both endpoints inside). Entity ids are preserved, so embeddings and
    /// answers remain comparable — this is the "induced data graph" of the
    /// pruning experiment (§IV-D).
    pub fn induced_subgraph(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.n_entities);
        let tri: Vec<Triple> = self
            .triples
            .iter()
            .filter(|t| keep[t.h.index()] && keep[t.t.index()])
            .copied()
            .collect();
        Graph::from_triples(self.n_entities, self.n_relations, tri)
    }

    /// True when every triple of `self` is also in `other` — the
    /// `G_train ⊆ G_valid ⊆ G_test` invariant of §IV-A.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.triples.iter().all(|t| other.has(t.h, t.r, t.t))
    }

    // ------------------------------------------------------------- snapshot

    /// Relation `r`'s forward CSR arrays `(offsets, targets)` — read access
    /// for snapshot encoding.
    pub fn out_csr(&self, r: usize) -> (&[u32], &[u32]) {
        let c = &self.out[r];
        (&c.offsets, &c.targets)
    }

    /// Relation `r`'s inverse CSR arrays `(offsets, targets)`.
    pub fn inv_csr(&self, r: usize) -> (&[u32], &[u32]) {
        let c = &self.inv[r];
        (&c.offsets, &c.targets)
    }

    /// Rebuilds a graph from raw CSR arrays — the snapshot fast path.
    /// [`Graph::from_triples`] re-derives every per-relation index with an
    /// `O(|R|·|T|)` filter sweep; this constructor takes the indexes as
    /// decoded and instead *validates* them in `O(|T| log deg)`:
    ///
    /// * every CSR has `n_entities + 1` monotone offsets ending at its
    ///   target count, with all targets in range and every neighbor row
    ///   strictly sorted (the binary-search invariant of [`Graph::has`]);
    /// * the triple list is strictly sorted (sorted + deduplicated);
    /// * both directions index exactly the triple list: per-direction
    ///   target counts equal `|T|` and every triple is found in both —
    ///   with strictly sorted rows that makes the edge sets equal, so a
    ///   corrupted file can never load as a silently wrong graph.
    pub fn from_csr_parts(
        n_entities: usize,
        n_relations: usize,
        triples: Vec<Triple>,
        out: Vec<(Vec<u32>, Vec<u32>)>,
        inv: Vec<(Vec<u32>, Vec<u32>)>,
    ) -> Result<Graph, String> {
        if out.len() != n_relations || inv.len() != n_relations {
            return Err(format!(
                "expected {n_relations} CSR pairs per direction, got {} forward / {} inverse",
                out.len(),
                inv.len()
            ));
        }
        let check_csr = |dir: &str, r: usize, offsets: &[u32], targets: &[u32]| {
            if offsets.len() != n_entities + 1 {
                return Err(format!(
                    "{dir} CSR {r}: {} offsets for {n_entities} entities",
                    offsets.len()
                ));
            }
            if offsets[0] != 0 || *offsets.last().unwrap() as usize != targets.len() {
                return Err(format!("{dir} CSR {r}: offset bounds do not frame targets"));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{dir} CSR {r}: offsets not monotone"));
            }
            if targets.iter().any(|&t| t as usize >= n_entities) {
                return Err(format!("{dir} CSR {r}: target entity out of range"));
            }
            // Rows of length 0 or 1 are trivially sorted; skipping them
            // keeps this loop O(offsets + nonzero pairs) instead of paying
            // a slice per entity — the difference between validating and
            // re-sorting dominating snapshot boot.
            for (e, w) in offsets.windows(2).enumerate() {
                if w[1].saturating_sub(w[0]) > 1 {
                    let row = &targets[w[0] as usize..w[1] as usize];
                    if row.windows(2).any(|p| p[0] >= p[1]) {
                        return Err(format!(
                            "{dir} CSR {r}: neighbor row {e} not strictly sorted"
                        ));
                    }
                }
            }
            Ok(())
        };
        let mut total_out = 0usize;
        let mut total_inv = 0usize;
        for r in 0..n_relations {
            check_csr("forward", r, &out[r].0, &out[r].1)?;
            check_csr("inverse", r, &inv[r].0, &inv[r].1)?;
            total_out += out[r].1.len();
            total_inv += inv[r].1.len();
        }
        if triples.windows(2).any(|w| w[0] >= w[1]) {
            return Err("triple list not strictly sorted".into());
        }
        if total_out != triples.len() || total_inv != triples.len() {
            return Err(format!(
                "CSR edge counts ({total_out} forward, {total_inv} inverse) \
                 do not match {} triples",
                triples.len()
            ));
        }
        let graph = Graph {
            n_entities,
            n_relations,
            triples,
            out: out
                .into_iter()
                .map(|(offsets, targets)| Csr { offsets, targets })
                .collect(),
            inv: inv
                .into_iter()
                .map(|(offsets, targets)| Csr { offsets, targets })
                .collect(),
        };
        for t in &graph.triples {
            if t.h.index() >= n_entities || t.t.index() >= n_entities {
                return Err(format!("triple {t:?} references entity out of range"));
            }
            if t.r.index() >= n_relations {
                return Err(format!("triple {t:?} references relation out of range"));
            }
            if !graph.has(t.h, t.r, t.t) {
                return Err(format!("forward CSR missing triple {t:?}"));
            }
            if graph
                .inverse_neighbors(t.t, t.r)
                .binary_search(&t.h.0)
                .is_err()
            {
                return Err(format!("inverse CSR missing triple {t:?}"));
            }
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        // 0 -r0-> 1, 0 -r0-> 2, 1 -r1-> 2, 2 -r0-> 0
        Graph::from_triples(
            3,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 2),
                Triple::new(2, 0, 0),
            ],
        )
    }

    #[test]
    fn neighbors_sorted_and_complete() {
        let g = toy();
        assert_eq!(g.neighbors(EntityId(0), RelationId(0)), &[1, 2]);
        assert_eq!(g.neighbors(EntityId(1), RelationId(0)), &[] as &[u32]);
        assert_eq!(g.neighbors(EntityId(1), RelationId(1)), &[2]);
    }

    #[test]
    fn inverse_neighbors() {
        let g = toy();
        assert_eq!(g.inverse_neighbors(EntityId(2), RelationId(0)), &[0]);
        assert_eq!(g.inverse_neighbors(EntityId(0), RelationId(0)), &[2]);
        assert_eq!(g.inverse_neighbors(EntityId(2), RelationId(1)), &[1]);
    }

    #[test]
    fn has_and_degree() {
        let g = toy();
        assert!(g.has(EntityId(0), RelationId(0), EntityId(1)));
        assert!(!g.has(EntityId(1), RelationId(0), EntityId(0)));
        assert_eq!(g.out_degree(EntityId(0), RelationId(0)), 2);
        assert_eq!(g.degree(EntityId(2)), 3); // in: 0->2, 1->2; out: 2->0
    }

    #[test]
    fn duplicates_removed() {
        let g = Graph::from_triples(
            2,
            1,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 1),
            ],
        );
        assert_eq!(g.n_triples(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_entity() {
        Graph::from_triples(2, 1, vec![Triple::new(0, 0, 5)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = toy();
        let sub = g.induced_subgraph(&[true, false, true]);
        // Only edges among {0, 2} survive.
        assert_eq!(sub.n_triples(), 2);
        assert!(sub.has(EntityId(0), RelationId(0), EntityId(2)));
        assert!(sub.has(EntityId(2), RelationId(0), EntityId(0)));
        assert!(!sub.has(EntityId(0), RelationId(0), EntityId(1)));
    }

    #[test]
    fn subgraph_relation() {
        let g = toy();
        let smaller = Graph::from_triples(3, 2, vec![Triple::new(0, 0, 1)]);
        assert!(smaller.is_subgraph_of(&g));
        assert!(!g.is_subgraph_of(&smaller));
        assert!(g.is_subgraph_of(&g));
    }

    #[test]
    fn relations_from_lists_active_only() {
        let g = toy();
        assert_eq!(g.relations_from(EntityId(1)), vec![RelationId(1)]);
        assert_eq!(g.relations_from(EntityId(0)), vec![RelationId(0)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_triples(4, 2, vec![]);
        assert_eq!(g.n_triples(), 0);
        assert_eq!(g.neighbors(EntityId(3), RelationId(1)), &[] as &[u32]);
    }

    fn csr_parts_of(g: &Graph) -> (Vec<(Vec<u32>, Vec<u32>)>, Vec<(Vec<u32>, Vec<u32>)>) {
        let grab = |f: &dyn Fn(usize) -> (Vec<u32>, Vec<u32>)| {
            (0..g.n_relations()).map(f).collect::<Vec<_>>()
        };
        (
            grab(&|r| {
                let (o, t) = g.out_csr(r);
                (o.to_vec(), t.to_vec())
            }),
            grab(&|r| {
                let (o, t) = g.inv_csr(r);
                (o.to_vec(), t.to_vec())
            }),
        )
    }

    #[test]
    fn csr_parts_roundtrip_rebuilds_identical_graph() {
        let g = toy();
        let (out, inv) = csr_parts_of(&g);
        let g2 = Graph::from_csr_parts(
            g.n_entities(),
            g.n_relations(),
            g.triples().to_vec(),
            out,
            inv,
        )
        .expect("valid parts");
        assert_eq!(g.triples(), g2.triples());
        for r in 0..g.n_relations() {
            assert_eq!(g.out_csr(r), g2.out_csr(r));
            assert_eq!(g.inv_csr(r), g2.inv_csr(r));
        }
        assert!(g2.has(EntityId(0), RelationId(0), EntityId(1)));
    }

    #[test]
    fn csr_parts_reject_inconsistent_indexes() {
        let g = toy();
        let (out, inv) = csr_parts_of(&g);

        // A target edited to a different entity: counts still match, but
        // the triple membership check catches the drift.
        let mut bad = out.clone();
        bad[0].1[0] = 0;
        let err = Graph::from_csr_parts(
            g.n_entities(),
            g.n_relations(),
            g.triples().to_vec(),
            bad,
            inv.clone(),
        )
        .unwrap_err();
        assert!(
            err.contains("missing triple") || err.contains("sorted"),
            "{err}"
        );

        // An out-of-range target.
        let mut oob = out.clone();
        oob[0].1[0] = 99;
        let err = Graph::from_csr_parts(
            g.n_entities(),
            g.n_relations(),
            g.triples().to_vec(),
            oob,
            inv.clone(),
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");

        // Broken offset framing.
        let mut off = out.clone();
        *off[0].0.last_mut().unwrap() += 1;
        let err = Graph::from_csr_parts(
            g.n_entities(),
            g.n_relations(),
            g.triples().to_vec(),
            off,
            inv.clone(),
        )
        .unwrap_err();
        assert!(err.contains("offset"), "{err}");

        // An unsorted triple list.
        let mut tri = g.triples().to_vec();
        tri.swap(0, 1);
        let err =
            Graph::from_csr_parts(g.n_entities(), g.n_relations(), tri, out, inv).unwrap_err();
        assert!(err.contains("sorted"), "{err}");
    }
}
