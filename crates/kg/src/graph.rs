//! The knowledge-graph triple store.
//!
//! `G = {V, R, T}` of §II-A: entities, relations and fact triples `(h, r, t)`.
//! Storage is one CSR index per relation in each direction, so the two
//! operations everything else is built on — `neighbors(h, r)` for the
//! projection operator's ground truth and `inverse_neighbors(t, r)` for
//! backward query sampling — are contiguous slice lookups, and membership
//! `has(h, r, t)` is a binary search.

use crate::ids::{EntityId, RelationId};
use serde::{Deserialize, Serialize};

/// A fact triple `(head, relation, tail)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject (head) entity.
    pub h: EntityId,
    /// Predicate (relation).
    pub r: RelationId,
    /// Object (tail) entity.
    pub t: EntityId,
}

impl Triple {
    /// Convenience constructor from raw ids.
    pub fn new(h: u32, r: u32, t: u32) -> Self {
        Self {
            h: EntityId(h),
            r: RelationId(r),
            t: EntityId(t),
        }
    }
}

/// Compressed sparse rows over entities: `offsets[e]..offsets[e+1]` indexes
/// the sorted neighbor list of entity `e`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    fn build(n_entities: usize, pairs: &mut Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u32; n_entities + 1];
        for &(src, _) in pairs.iter() {
            offsets[src as usize + 1] += 1;
        }
        for i in 0..n_entities {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|&(_, dst)| dst).collect();
        Self { offsets, targets }
    }

    #[inline]
    fn neighbors(&self, e: usize) -> &[u32] {
        &self.targets[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }
}

/// An immutable knowledge graph with per-relation forward and inverse
/// adjacency indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    n_entities: usize,
    n_relations: usize,
    triples: Vec<Triple>,
    out: Vec<Csr>,
    inv: Vec<Csr>,
}

impl Graph {
    /// Builds a graph from a triple list. Duplicates are removed; triples
    /// referencing entities/relations beyond the declared counts panic.
    pub fn from_triples(n_entities: usize, n_relations: usize, triples: Vec<Triple>) -> Self {
        let mut tri = triples;
        tri.sort_unstable();
        tri.dedup();
        for t in &tri {
            assert!(
                t.h.index() < n_entities && t.t.index() < n_entities,
                "triple {t:?} references entity out of range (n={n_entities})"
            );
            assert!(
                t.r.index() < n_relations,
                "triple {t:?} references relation out of range (m={n_relations})"
            );
        }
        let mut out = Vec::with_capacity(n_relations);
        let mut inv = Vec::with_capacity(n_relations);
        for r in 0..n_relations {
            let mut fwd: Vec<(u32, u32)> = tri
                .iter()
                .filter(|t| t.r.index() == r)
                .map(|t| (t.h.0, t.t.0))
                .collect();
            let mut bwd: Vec<(u32, u32)> = fwd.iter().map(|&(h, t)| (t, h)).collect();
            out.push(Csr::build(n_entities, &mut fwd));
            inv.push(Csr::build(n_entities, &mut bwd));
        }
        Self {
            n_entities,
            n_relations,
            triples: tri,
            out,
            inv,
        }
    }

    /// Number of entities `|V|`.
    #[inline]
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Number of relations `|R|`.
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.n_relations
    }

    /// Number of distinct triples `|T|`.
    #[inline]
    pub fn n_triples(&self) -> usize {
        self.triples.len()
    }

    /// The sorted, deduplicated triple list.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Tails reachable from `h` by relation `r` (sorted).
    #[inline]
    pub fn neighbors(&self, h: EntityId, r: RelationId) -> &[u32] {
        self.out[r.index()].neighbors(h.index())
    }

    /// Heads that reach `t` by relation `r` (sorted).
    #[inline]
    pub fn inverse_neighbors(&self, t: EntityId, r: RelationId) -> &[u32] {
        self.inv[r.index()].neighbors(t.index())
    }

    /// Whether the fact `(h, r, t)` is present.
    pub fn has(&self, h: EntityId, r: RelationId, t: EntityId) -> bool {
        self.neighbors(h, r).binary_search(&t.0).is_ok()
    }

    /// Out-degree of `h` under relation `r`.
    pub fn out_degree(&self, h: EntityId, r: RelationId) -> usize {
        self.neighbors(h, r).len()
    }

    /// Total degree (all relations, both directions) of an entity.
    pub fn degree(&self, e: EntityId) -> usize {
        (0..self.n_relations)
            .map(|r| {
                self.neighbors(e, RelationId(r as u32)).len()
                    + self.inverse_neighbors(e, RelationId(r as u32)).len()
            })
            .sum()
    }

    /// Iterator over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.n_entities as u32).map(EntityId)
    }

    /// Iterator over all relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.n_relations as u32).map(RelationId)
    }

    /// Relations with at least one outgoing edge from `h` — used by the
    /// matching engine's candidate filtering.
    pub fn relations_from(&self, h: EntityId) -> Vec<RelationId> {
        self.relations()
            .filter(|&r| !self.neighbors(h, r).is_empty())
            .collect()
    }

    /// Returns a new graph restricted to the given entity set (edges with
    /// both endpoints inside). Entity ids are preserved, so embeddings and
    /// answers remain comparable — this is the "induced data graph" of the
    /// pruning experiment (§IV-D).
    pub fn induced_subgraph(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.n_entities);
        let tri: Vec<Triple> = self
            .triples
            .iter()
            .filter(|t| keep[t.h.index()] && keep[t.t.index()])
            .copied()
            .collect();
        Graph::from_triples(self.n_entities, self.n_relations, tri)
    }

    /// True when every triple of `self` is also in `other` — the
    /// `G_train ⊆ G_valid ⊆ G_test` invariant of §IV-A.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.triples.iter().all(|t| other.has(t.h, t.r, t.t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        // 0 -r0-> 1, 0 -r0-> 2, 1 -r1-> 2, 2 -r0-> 0
        Graph::from_triples(
            3,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 2),
                Triple::new(1, 1, 2),
                Triple::new(2, 0, 0),
            ],
        )
    }

    #[test]
    fn neighbors_sorted_and_complete() {
        let g = toy();
        assert_eq!(g.neighbors(EntityId(0), RelationId(0)), &[1, 2]);
        assert_eq!(g.neighbors(EntityId(1), RelationId(0)), &[] as &[u32]);
        assert_eq!(g.neighbors(EntityId(1), RelationId(1)), &[2]);
    }

    #[test]
    fn inverse_neighbors() {
        let g = toy();
        assert_eq!(g.inverse_neighbors(EntityId(2), RelationId(0)), &[0]);
        assert_eq!(g.inverse_neighbors(EntityId(0), RelationId(0)), &[2]);
        assert_eq!(g.inverse_neighbors(EntityId(2), RelationId(1)), &[1]);
    }

    #[test]
    fn has_and_degree() {
        let g = toy();
        assert!(g.has(EntityId(0), RelationId(0), EntityId(1)));
        assert!(!g.has(EntityId(1), RelationId(0), EntityId(0)));
        assert_eq!(g.out_degree(EntityId(0), RelationId(0)), 2);
        assert_eq!(g.degree(EntityId(2)), 3); // in: 0->2, 1->2; out: 2->0
    }

    #[test]
    fn duplicates_removed() {
        let g = Graph::from_triples(
            2,
            1,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 1),
                Triple::new(0, 0, 1),
            ],
        );
        assert_eq!(g.n_triples(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_entity() {
        Graph::from_triples(2, 1, vec![Triple::new(0, 0, 5)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = toy();
        let sub = g.induced_subgraph(&[true, false, true]);
        // Only edges among {0, 2} survive.
        assert_eq!(sub.n_triples(), 2);
        assert!(sub.has(EntityId(0), RelationId(0), EntityId(2)));
        assert!(sub.has(EntityId(2), RelationId(0), EntityId(0)));
        assert!(!sub.has(EntityId(0), RelationId(0), EntityId(1)));
    }

    #[test]
    fn subgraph_relation() {
        let g = toy();
        let smaller = Graph::from_triples(3, 2, vec![Triple::new(0, 0, 1)]);
        assert!(smaller.is_subgraph_of(&g));
        assert!(!g.is_subgraph_of(&smaller));
        assert!(g.is_subgraph_of(&g));
    }

    #[test]
    fn relations_from_lists_active_only() {
        let g = toy();
        assert_eq!(g.relations_from(EntityId(1)), vec![RelationId(1)]);
        assert_eq!(g.relations_from(EntityId(0)), vec![RelationId(0)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_triples(4, 2, vec![]);
        assert_eq!(g.n_triples(), 0);
        assert_eq!(g.neighbors(EntityId(3), RelationId(1)), &[] as &[u32]);
    }
}
