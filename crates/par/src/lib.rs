//! Dependency-free fork-join parallelism over [`std::thread::scope`].
//!
//! Every parallel stage in the workspace — batch-sharded training, query
//! fan-out in evaluation, entity-sharded scoring — goes through a [`Pool`],
//! a value describing how many worker threads a fork-join region may use.
//! There are no persistent worker threads and no work-stealing deques:
//! scoped threads are spawned per region (a few microseconds, amortized by
//! region bodies that run for milliseconds), which keeps the runtime free of
//! `unsafe`, global state and external crates.
//!
//! Determinism contract: every combinator returns results in **input
//! order**, regardless of the thread count or the dynamic schedule, and
//! `Pool::new(1)` executes the exact sequential loop (no scope, no spawn,
//! no atomics). Callers that reduce the returned values in a fixed order
//! therefore produce bit-identical floats at any thread count — the
//! property the training and evaluation determinism suites pin down (see
//! DESIGN.md §9).
//!
//! Sizing: [`Pool::auto`] resolves, in order, a programmatic override
//! ([`set_threads`], used by `--threads`), the `HALK_THREADS` environment
//! variable, and [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override (0 = unset). Set once by binaries
/// from `--threads`; takes precedence over `HALK_THREADS`.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the automatic pool size for every subsequent [`Pool::auto`]
/// (0 clears the override). Binaries call this from their `--threads` flag.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// Parses a `HALK_THREADS`-style value: a positive integer, else `None`.
fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HALK_THREADS")
            .ok()
            .and_then(|s| parse_threads(&s))
    })
}

/// The thread count [`Pool::auto`] resolves to right now: the
/// [`set_threads`] override, else `HALK_THREADS`, else the machine's
/// available parallelism (1 if that cannot be determined).
pub fn auto_threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A fork-join region's thread budget. Cheap to copy; holds no OS
/// resources (threads are scoped to each combinator call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`auto_threads`].
    pub fn auto() -> Self {
        Self::new(auto_threads())
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool runs everything inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, returning results in input order. Items are
    /// split into one contiguous chunk per worker (static schedule — right
    /// for uniform-cost items). With one thread (or one item) this is a
    /// plain sequential `map` on the calling thread.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(workers);
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| {
                    let f = &f;
                    s.spawn(move || c.iter().map(f).collect::<Vec<R>>())
                })
                .collect();
            per_chunk.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("par_map worker panicked")),
            );
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Like [`Pool::par_map`] but with a dynamic splitter: workers claim
    /// items one at a time off a shared atomic counter, so uneven per-item
    /// costs balance automatically. Results still come back in input order.
    pub fn par_map_dyn<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (f, next) = (&f, &next);
                    s.spawn(move || {
                        let mut claimed = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            claimed.push((i, f(item)));
                        }
                        claimed
                    })
                })
                .collect();
            per_worker.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("par_map_dyn worker panicked")),
            );
        });
        // Scatter the claimed (index, result) pairs back into input order.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    }

    /// Maps `f(index, &mut item)` over `items` in parallel, returning the
    /// results in input order. Each worker owns one contiguous chunk, so
    /// mutable access needs no synchronization. This is the training
    /// shard driver: each shard slot holds a worker-private tape and
    /// gradient buffer.
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let len = items.len();
        let workers = self.threads.min(len);
        if workers <= 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let chunk = len.div_ceil(workers);
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, c)| {
                    let f = &f;
                    s.spawn(move || {
                        c.iter_mut()
                            .enumerate()
                            .map(|(j, item)| f(ci * chunk + j, item))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            per_chunk.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("par_map_mut worker panicked")),
            );
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Runs `f(chunk_index, chunk)` over fixed-size mutable chunks of
    /// `data` in parallel (the last chunk may be short). Chunk boundaries
    /// depend only on `chunk_size`, never on the thread count, so writes
    /// land identically at any parallelism — the entity-sharded scoring
    /// path relies on this.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n_chunks = data.len().div_ceil(chunk_size);
        if self.threads.min(n_chunks) <= 1 {
            for (i, c) in data.chunks_mut(chunk_size).enumerate() {
                f(i, c);
            }
            return;
        }
        let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
        let workers = self.threads.min(chunks.len());
        let per_worker = chunks.len().div_ceil(workers);
        std::thread::scope(|s| {
            while !chunks.is_empty() {
                let group: Vec<(usize, &mut [T])> =
                    chunks.drain(..per_worker.min(chunks.len())).collect();
                let f = &f;
                s.spawn(move || {
                    for (i, c) in group {
                        f(i, c);
                    }
                });
            }
        });
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const THREADS: [usize; 4] = [1, 2, 4, 8];

    #[test]
    fn pool_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::new(1).is_sequential());
        assert!(!Pool::new(2).is_sequential());
    }

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<i64> = (0..97).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * x - 3).collect();
        for t in THREADS {
            let got = Pool::new(t).par_map(&items, |x| x * x - 3);
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn par_map_dyn_preserves_input_order_under_uneven_cost() {
        // Spin long enough on a cost that varies wildly by index so the
        // dynamic schedule actually interleaves claims across workers.
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 7).collect();
        for t in THREADS {
            let got = Pool::new(t).par_map_dyn(&items, |&x| {
                let spins = (x % 13) * 500;
                let mut acc = 0u64;
                for i in 0..spins {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                let _ = acc;
                x * 7
            });
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn par_map_mut_mutates_every_item_with_its_own_index() {
        for t in THREADS {
            let mut items = vec![0usize; 53];
            let returned = Pool::new(t).par_map_mut(&mut items, |i, slot| {
                *slot = i + 1;
                i * 2
            });
            assert_eq!(items, (1..=53).collect::<Vec<_>>(), "threads={t}");
            assert_eq!(
                returned,
                (0..53).map(|i| i * 2).collect::<Vec<_>>(),
                "threads={t}"
            );
        }
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks_with_stable_boundaries() {
        for t in THREADS {
            let mut data = vec![0usize; 41];
            Pool::new(t).par_chunks_mut(&mut data, 8, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ci * 8 + j;
                }
            });
            // Every slot holds its own global index: chunk boundaries are a
            // function of chunk_size alone.
            assert_eq!(data, (0..41).collect::<Vec<_>>(), "threads={t}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(Pool::new(4).par_map(&empty, |x| *x).is_empty());
        assert!(Pool::new(4).par_map_dyn(&empty, |x| *x).is_empty());
        assert_eq!(Pool::new(4).par_map(&[9u32], |x| x + 1), vec![10]);
        let mut one = [5u32];
        Pool::new(4).par_chunks_mut(&mut one, 3, |_, c| c[0] += 1);
        assert_eq!(one, [6]);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn auto_threads_respects_programmatic_override() {
        // The override outranks env and hardware; clearing restores auto.
        set_threads(3);
        assert_eq!(auto_threads(), 3);
        assert_eq!(Pool::auto().threads(), 3);
        set_threads(0);
        assert!(auto_threads() >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The ISSUE-mandated ordering property: the dynamic splitter's
        /// output always matches the sequential map, element for element.
        #[test]
        fn dyn_splitter_output_order_matches_sequential(
            len in 0usize..200,
            seed in 0u64..1000,
            threads in 1usize..9,
        ) {
            let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(seed ^ 0x9e37)).collect();
            let f = |x: &u64| x.wrapping_mul(31).wrapping_add(7);
            let seq: Vec<u64> = items.iter().map(f).collect();
            let par = Pool::new(threads).par_map_dyn(&items, f);
            prop_assert_eq!(par, seq);
        }
    }
}
